# Convenience targets for the repro library.

.PHONY: install test lint lint-diff bench bench-results bench-record \
	bench-check examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

test-output:
	pytest tests/ 2>&1 | tee test_output.txt

# Two layers: a general linter (ruff when available — what CI
# installs — falling back to pyflakes, else a warning) plus
# reprolint, the in-tree AST invariant linter (`repro lint`, needs
# only the repo itself). The overall exit status is the combination
# of whichever linters actually ran.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif command -v pyflakes >/dev/null 2>&1; then \
		pyflakes src tests benchmarks examples; \
	else \
		echo "warning: no general linter found (pip install" \
		     "ruff); running reprolint only"; \
	fi
	PYTHONPATH=src python -m repro lint

# Pre-commit helper: lint only the files changed vs DIFF_REF (the
# whole-program model is still built from the full tree).
DIFF_REF ?= HEAD

lint-diff:
	PYTHONPATH=src python -m repro lint --diff $(DIFF_REF)

bench:
	pytest benchmarks/ --benchmark-only

bench-output:
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Baseline workflow (DESIGN.md §10): `bench-record` appends fresh
# records to the trajectory store — the canonical deployment benches
# plus the CLI reference workload; `bench-check` re-runs the reference
# workload and gates it against the store. Virtual-cost metrics are
# exact-match; the wall budget is generous because the committed
# baselines come from a different machine.
BENCH_STORE ?= benchmarks/baselines

bench-record:
	PYTHONPATH=src REPRO_BENCH_STORE=$(BENCH_STORE) pytest \
		benchmarks/bench_exp1_deployment.py::test_run_deployment \
		benchmarks/bench_exp3_materialization.py::test_table4 \
		--benchmark-only -q
	PYTHONPATH=src REPRO_BENCH_SCALE=test \
		REPRO_BENCH_STORE=$(BENCH_STORE) pytest \
		benchmarks/bench_serving_throughput.py \
		benchmarks/bench_fleet_overhead.py \
		benchmarks/bench_lineage_overhead.py \
		benchmarks/bench_lint_speed.py \
		--benchmark-only -q
	PYTHONPATH=src python -m repro perf record \
		--dataset url --scale test --store $(BENCH_STORE)

bench-check:
	PYTHONPATH=src python -m repro perf check \
		--dataset url --scale test --against $(BENCH_STORE) \
		--wall-budget 4.0
	PYTHONPATH=src REPRO_BENCH_SCALE=test REPRO_BENCH_CHECK=1 \
		REPRO_BENCH_STORE=$(BENCH_STORE) pytest \
		benchmarks/bench_serving_throughput.py \
		benchmarks/bench_fleet_overhead.py \
		benchmarks/bench_lineage_overhead.py \
		benchmarks/bench_lint_speed.py \
		--benchmark-only -q

examples:
	python examples/quickstart.py
	python examples/materialization_analysis.py
	python examples/custom_pipeline_component.py
	python examples/compare_deployment_approaches.py
	python examples/drift_detection.py
	python examples/persistence_and_resume.py
	python examples/url_classification.py
	python examples/serving_rollout.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
