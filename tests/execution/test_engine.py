"""Unit tests for the local execution engine."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.execution.cost import CostModel
from repro.execution.engine import LocalExecutionEngine
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam
from repro.ml.sgd import SGDTrainer
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline


@pytest.fixture
def engine():
    return LocalExecutionEngine(CostModel(transform_cost_per_value=1.0))


@pytest.fixture
def pipeline():
    return Pipeline(
        [
            StandardScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )


@pytest.fixture
def table():
    return Table({"x": [1.0, 2.0, 3.0], "y": [1.0, 2.0, 3.0]})


class TestPipelineExecution:
    def test_online_pass_returns_features(self, engine, pipeline, table):
        features = engine.online_pass(pipeline, table)
        assert features.num_rows == 3
        assert engine.tracker.category("statistics") > 0

    def test_transform_only_no_statistics(self, engine, pipeline, table):
        engine.transform_only(pipeline, table)
        assert engine.tracker.category("statistics") == 0.0
        assert engine.tracker.category("preprocessing") > 0

    def test_wall_clock_accumulates(self, engine, pipeline, table):
        engine.online_pass(pipeline, table)
        assert engine.wall.elapsed > 0


class TestTrainingExecution:
    def test_train_step(self, engine, rng):
        model = LinearRegression(num_features=2)
        trainer = SGDTrainer(model, Adam(0.05))
        x = rng.standard_normal((10, 2))
        y = rng.standard_normal(10)
        engine.train_step(trainer, x, y)
        assert model.updates_applied == 1
        assert engine.tracker.category("training") > 0

    def test_train_full(self, engine, rng):
        model = LinearRegression(num_features=2)
        trainer = SGDTrainer(model, Adam(0.05))
        x = rng.standard_normal((50, 2))
        y = x @ np.array([1.0, 2.0])
        result = engine.train_full(
            trainer, x, y, max_iterations=2000, tolerance=1e-8, seed=0
        )
        assert result.converged


class TestPredictionAndIO:
    def test_predict_charges(self, engine, rng):
        model = LinearRegression(num_features=2)
        predictions = engine.predict(model, rng.standard_normal((5, 2)))
        assert predictions.shape == (5,)
        assert engine.tracker.category("prediction") > 0

    def test_read_chunk_charges_disk(self, engine):
        engine.read_chunk(values=100, label="retrain_read")
        assert engine.tracker.category("disk_io") > 0
        assert "retrain_read" in engine.tracker.breakdown().by_label

    def test_total_cost_aggregates(self, engine, pipeline, table):
        engine.online_pass(pipeline, table)
        engine.read_chunk(10, "x")
        assert engine.total_cost() == pytest.approx(
            engine.tracker.total()
        )


class TestAccountingConsistency:
    """Wall-clock and cost accounting must cover the same work.

    Regression guard: ``predict`` used to charge its prediction cost
    *outside* the wall-timer block, so wall-vs-cost comparisons saw
    prediction work in one clock but not the other. Every compute
    method must issue its tracker charges while the wall timer runs.
    """

    @pytest.mark.filterwarnings(
        "ignore::repro.exceptions.ConvergenceWarning"
    )
    def test_charges_issued_inside_wall_timer(
        self, engine, pipeline, table, rng
    ):
        observed = []
        tracker = engine.tracker
        for name in (
            "charge_transform",
            "charge_statistics",
            "charge_training",
            "charge_prediction",
        ):
            original = getattr(tracker, name)

            def wrapper(*args, _original=original, _name=name, **kwargs):
                observed.append((_name, engine.wall.running))
                return _original(*args, **kwargs)

            setattr(tracker, name, wrapper)

        model = LinearRegression(num_features=2)
        trainer = SGDTrainer(model, Adam(0.05))
        x = rng.standard_normal((10, 2))
        y = rng.standard_normal(10)
        engine.online_pass(pipeline, table)
        engine.transform_only(pipeline, table)
        engine.serve_transform(pipeline, table)
        engine.train_step(trainer, x, y)
        engine.train_full(trainer, x, y, max_iterations=3, seed=0)
        engine.predict(model, x)

        charged = {name for name, __ in observed}
        assert {
            "charge_transform",
            "charge_statistics",
            "charge_training",
            "charge_prediction",
        } <= charged
        outside = [name for name, running in observed if not running]
        assert outside == []

    def test_reset_zeroes_both_clocks(self, engine, pipeline, table):
        engine.online_pass(pipeline, table)
        assert engine.total_cost() > 0
        assert engine.wall.elapsed > 0
        engine.reset()
        assert engine.total_cost() == 0.0
        assert engine.wall.elapsed == 0.0
        # The engine stays usable after a reset.
        engine.online_pass(pipeline, table)
        assert engine.total_cost() > 0
