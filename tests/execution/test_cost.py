"""Unit tests for the cost model and tracker."""

import pytest

from repro.exceptions import ValidationError
from repro.execution.cost import CostModel, CostTracker


class TestCostModel:
    def test_defaults_non_negative(self):
        model = CostModel()
        assert model.transform_cost_per_value >= 0
        assert model.disk_seek_cost_per_chunk >= 0

    def test_custom_prices(self):
        model = CostModel(transform_cost_per_value=2.0)
        assert model.transform_cost_per_value == 2.0

    def test_negative_price_rejected(self):
        with pytest.raises(ValidationError):
            CostModel(training_cost_per_value=-1.0)

    def test_frozen(self):
        model = CostModel()
        with pytest.raises(AttributeError):
            model.transform_cost_per_value = 9.0


class TestCostTracker:
    def test_charges_accumulate_by_category(self):
        tracker = CostTracker(CostModel(transform_cost_per_value=1.0))
        tracker.charge_transform(3, "scaler")
        tracker.charge_transform(2, "hasher")
        assert tracker.category("preprocessing") == 5.0
        assert tracker.total() == 5.0

    def test_all_categories(self):
        model = CostModel(
            transform_cost_per_value=1.0,
            statistics_cost_per_value=1.0,
            training_cost_per_value=1.0,
            prediction_cost_per_value=1.0,
            disk_read_cost_per_value=1.0,
            disk_seek_cost_per_chunk=10.0,
        )
        tracker = CostTracker(model)
        tracker.charge_transform(1, "t")
        tracker.charge_statistics(1, "s")
        tracker.charge_training(1, "g")
        tracker.charge_prediction(1, "p")
        tracker.charge_disk_read(1, chunks=2, label="d")
        breakdown = tracker.breakdown()
        assert breakdown.by_category["preprocessing"] == 1.0
        assert breakdown.by_category["statistics"] == 1.0
        assert breakdown.by_category["training"] == 1.0
        assert breakdown.by_category["prediction"] == 1.0
        assert breakdown.by_category["disk_io"] == 21.0
        assert breakdown.total == 25.0

    def test_labels_tracked_independently(self):
        tracker = CostTracker(
            CostModel(
                transform_cost_per_value=1.0,
                statistics_cost_per_value=1.0,
            )
        )
        tracker.charge_transform(1, "a")
        tracker.charge_statistics(1, "a")
        assert tracker.breakdown().by_label["a"] == pytest.approx(2.0)

    def test_unknown_category_reads_zero(self):
        assert CostTracker().category("training") == 0.0

    def test_reset(self):
        tracker = CostTracker()
        tracker.charge_transform(100, "x")
        tracker.reset()
        assert tracker.total() == 0.0

    def test_breakdown_is_snapshot(self):
        tracker = CostTracker(CostModel(transform_cost_per_value=1.0))
        tracker.charge_transform(1, "x")
        snapshot = tracker.breakdown()
        tracker.charge_transform(1, "x")
        assert snapshot.by_category["preprocessing"] == 1.0

    def test_disk_read_seek_component(self):
        model = CostModel(
            disk_read_cost_per_value=0.0, disk_seek_cost_per_chunk=0.5
        )
        tracker = CostTracker(model)
        tracker.charge_disk_read(10_000, chunks=4, label="reads")
        assert tracker.category("disk_io") == pytest.approx(2.0)
