"""The examples must at least import cleanly (full runs are manual).

Each example guards its work behind ``if __name__ == "__main__"``, so
importing it exercises every import statement and module-level
definition without paying for a deployment run.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=lambda p: p.stem
)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), (
            f"{path.name} must expose a main() entry point"
        )
    finally:
        sys.modules.pop(spec.name, None)


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLE_FILES}
    assert {
        "quickstart",
        "compare_deployment_approaches",
        "url_classification",
        "custom_pipeline_component",
        "materialization_analysis",
        "drift_detection",
        "persistence_and_resume",
        "serving_rollout",
    } <= names
