"""Unit tests for the mini-batch SGD trainer."""

import warnings

import numpy as np
import pytest

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.execution.cost import CostTracker
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam, ConstantLR
from repro.ml.sgd import SGDTrainer

# Several tests intentionally stop training at an iteration cap.
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def make_problem(rng, rows=100, dim=3):
    x = rng.standard_normal((rows, dim))
    w = np.array([1.0, -2.0, 0.5])
    y = x @ w + 0.25
    return x, y


class TestStep:
    def test_single_step_updates_model(self, rng):
        x, y = make_problem(rng)
        model = LinearRegression(num_features=3)
        trainer = SGDTrainer(model, ConstantLR(0.01))
        before = model.params_vector()
        objective = trainer.step(x, y)
        assert objective > 0
        assert not np.array_equal(model.params_vector(), before)
        assert model.updates_applied == 1

    def test_step_charges_tracker(self, rng):
        x, y = make_problem(rng)
        model = LinearRegression(num_features=3)
        trainer = SGDTrainer(model, ConstantLR(0.01))
        tracker = CostTracker()
        trainer.step(x, y, tracker)
        assert tracker.category("training") > 0

    def test_conditional_independence(self, rng):
        """Two interleaved-step runs with the same (model, optimizer)
        state produce the same next step — §3.3's argument."""
        x, y = make_problem(rng)
        model_a = LinearRegression(num_features=3)
        trainer_a = SGDTrainer(model_a, Adam(0.05))
        trainer_a.step(x[:50], y[:50])
        state_model = model_a.state_dict()
        state_opt = trainer_a.optimizer.state_dict()

        # Resume later on a fresh pair of objects.
        model_b = LinearRegression(num_features=3)
        model_b.load_state_dict(state_model)
        optimizer_b = Adam(0.05)
        optimizer_b.load_state_dict(state_opt)
        trainer_b = SGDTrainer(model_b, optimizer_b)

        trainer_a.step(x[50:], y[50:])
        trainer_b.step(x[50:], y[50:])
        assert model_b.params_vector() == pytest.approx(
            model_a.params_vector()
        )


class TestTrain:
    def test_full_batch_converges(self, rng):
        x, y = make_problem(rng)
        model = LinearRegression(num_features=3)
        trainer = SGDTrainer(model, Adam(0.05))
        result = trainer.train(
            x, y, max_iterations=3000, tolerance=1e-8, seed=0
        )
        assert result.converged
        assert result.final_objective < 0.01
        assert len(result.objective_history) == result.iterations

    def test_minibatch_mode(self, rng):
        x, y = make_problem(rng)
        model = LinearRegression(num_features=3)
        trainer = SGDTrainer(model, Adam(0.05))
        result = trainer.train(
            x, y, batch_size=10, max_iterations=50,
            tolerance=0.0, seed=0,
        )
        assert result.iterations == 50

    def test_batch_size_larger_than_data_uses_full_batch(self, rng):
        x, y = make_problem(rng, rows=20)
        model = LinearRegression(num_features=3)
        trainer = SGDTrainer(model, Adam(0.05))
        result = trainer.train(
            x, y, batch_size=500, max_iterations=5,
            tolerance=0.0, seed=0,
        )
        assert result.iterations == 5

    def test_warns_on_non_convergence(self, rng):
        x, y = make_problem(rng)
        model = LinearRegression(num_features=3)
        trainer = SGDTrainer(model, ConstantLR(0.001))
        with pytest.warns(ConvergenceWarning):
            result = trainer.train(
                x, y, max_iterations=3, tolerance=1e-12, seed=0
            )
        assert not result.converged
        assert result.iterations == 3

    def test_deterministic_given_seed(self, rng):
        x, y = make_problem(rng)
        results = []
        for __ in range(2):
            model = LinearRegression(num_features=3)
            trainer = SGDTrainer(model, Adam(0.05))
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                trainer.train(
                    x, y, batch_size=16, max_iterations=40,
                    tolerance=0.0, seed=123,
                )
            results.append(model.params_vector())
        assert results[0] == pytest.approx(results[1])

    def test_validation(self, rng):
        x, y = make_problem(rng)
        model = LinearRegression(num_features=3)
        trainer = SGDTrainer(model, Adam(0.05))
        with pytest.raises(ValidationError):
            trainer.train(x, y[:-1])
        with pytest.raises(ValidationError):
            trainer.train(np.empty((0, 3)), np.empty(0))
        with pytest.raises(ValidationError):
            trainer.train(x, y, batch_size=0)
        with pytest.raises(ValidationError):
            trainer.train(x, y, max_iterations=0)
