"""Batched inference is bit-identical to per-block inference.

The micro-batching front end stacks many requests' feature blocks and
runs one vectorized ``predict``. That is only legal because every
inference kernel in :mod:`repro.ml` scores a row independently of its
neighbours — these tests pin that contract, byte for byte, across
every model type and across varied block sizes (single rows, odd
splits, the whole pool at once).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.ml.batch import (
    predict_batch,
    predict_batch_pairs,
    split_rows,
    stack_matrices,
)
from repro.ml.models import (
    LinearRegression,
    LinearSVM,
    LogisticRegression,
    MatrixFactorization,
    OnlineKMeans,
)

DIM = 11
SPLITS = ([1], [3, 5, 2, 4], [1, 1, 1, 1, 1, 1], [6, 8])


def dense_blocks(rng, counts, dim=DIM):
    return [rng.standard_normal((n, dim)) for n in counts]


def assert_blocks_identical(model, blocks):
    batched = predict_batch(model, blocks)
    assert len(batched) == len(blocks)
    for block, result in zip(blocks, batched):
        alone = model.predict(block)
        assert result.tobytes() == alone.tobytes()


class TestLinearModels:
    @pytest.mark.parametrize("counts", SPLITS)
    def test_linear_regression_dense(self, rng, counts):
        """Regression guard for the BLAS gemv hazard: dense scores
        must not depend on how many rows share the predict call."""
        model = LinearRegression(num_features=DIM)
        model.weights = rng.standard_normal(DIM)
        model.intercept = 0.25
        assert_blocks_identical(model, dense_blocks(rng, counts))

    @pytest.mark.parametrize("counts", SPLITS)
    def test_logistic_regression_dense(self, rng, counts):
        model = LogisticRegression(num_features=DIM)
        model.weights = rng.standard_normal(DIM)
        model.intercept = -0.1
        assert_blocks_identical(model, dense_blocks(rng, counts))

    @pytest.mark.parametrize("counts", SPLITS)
    def test_svm_sparse(self, rng, counts):
        model = LinearSVM(num_features=DIM)
        model.weights = rng.standard_normal(DIM)
        blocks = [
            sp.random(
                n, DIM, density=0.4, format="csr", random_state=7 + i
            )
            for i, n in enumerate(counts)
        ]
        assert_blocks_identical(model, blocks)

    def test_dense_scores_invariant_to_batch_size(self, rng):
        """The same row scored in a 1-row call and inside a 200-row
        call must produce the same bytes (gemv kernels block over
        rows; the per-row reduction must not)."""
        model = LinearRegression(num_features=DIM)
        model.weights = rng.standard_normal(DIM)
        big = rng.standard_normal((200, DIM))
        whole = model.predict(big)
        for i in (0, 7, 63, 199):
            alone = model.predict(big[i: i + 1])
            assert alone.tobytes() == whole[i: i + 1].tobytes()


class TestOnlineKMeans:
    def test_cluster_assignments_identical(self, rng):
        model = OnlineKMeans(num_clusters=4, num_features=3, seed=5)
        model.partial_fit(rng.standard_normal((80, 3)))
        blocks = [rng.standard_normal((n, 3)) for n in (2, 5, 1, 9)]
        assert_blocks_identical(model, blocks)


class TestMatrixFactorization:
    def test_pair_scores_identical(self, rng):
        model = MatrixFactorization(
            num_users=30, num_items=20, num_factors=4, seed=9
        )
        pairs = [
            (
                rng.integers(0, 30, size=n),
                rng.integers(0, 20, size=n),
            )
            for n in (1, 6, 3)
        ]
        batched = predict_batch_pairs(model, pairs)
        for (users, items), result in zip(pairs, batched):
            alone = model.predict(users, items)
            assert result.tobytes() == alone.tobytes()

    def test_empty_pairs_rejected(self):
        model = MatrixFactorization(num_users=2, num_items=2)
        with pytest.raises(ValidationError, match="at least one"):
            predict_batch_pairs(model, [])


class TestStackSplit:
    def test_stack_preserves_rows(self, rng):
        blocks = dense_blocks(rng, [2, 3])
        stacked = stack_matrices(blocks)
        assert stacked.shape == (5, DIM)
        assert stacked[2:].tobytes() == blocks[1].tobytes()

    def test_single_block_passthrough(self, rng):
        block = rng.standard_normal((4, DIM))
        assert stack_matrices([block]) is block

    def test_mixed_sparse_dense_rejected(self, rng):
        dense = rng.standard_normal((2, DIM))
        sparse = sp.random(2, DIM, density=0.5, format="csr")
        with pytest.raises(ValidationError, match="mix"):
            stack_matrices([dense, sparse])

    def test_empty_stack_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            stack_matrices([])

    def test_split_roundtrip(self, rng):
        stacked = rng.standard_normal(10)
        parts = split_rows(stacked, [4, 6])
        assert np.array_equal(np.concatenate(parts), stacked)

    def test_split_count_mismatch(self, rng):
        with pytest.raises(ValidationError, match="cannot split"):
            split_rows(rng.standard_normal(5), [2, 2])
