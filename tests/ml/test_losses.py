"""Unit tests for loss functions and their gradients."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.losses import (
    HingeLoss,
    LogisticLoss,
    SquaredLoss,
    sigmoid,
)

ALL_LOSSES = [SquaredLoss(), HingeLoss(), LogisticLoss()]


def numerical_dvalue(loss, decision, targets, eps=1e-6):
    """Central-difference derivative of the mean loss wrt decision."""
    grads = np.zeros_like(decision)
    for i in range(len(decision)):
        up = decision.copy()
        up[i] += eps
        down = decision.copy()
        down[i] -= eps
        grads[i] = (
            (loss.value(up, targets) - loss.value(down, targets))
            / (2 * eps)
            * len(decision)
        )
    return grads


class TestSquaredLoss:
    def test_value(self):
        loss = SquaredLoss()
        z = np.array([1.0, 2.0])
        y = np.array([0.0, 2.0])
        assert loss.value(z, y) == pytest.approx(0.25)

    def test_gradient_matches_numerical(self, rng):
        loss = SquaredLoss()
        z = rng.standard_normal(10)
        y = rng.standard_normal(10)
        assert loss.dvalue(z, y) == pytest.approx(
            numerical_dvalue(loss, z, y), abs=1e-4
        )

    def test_zero_at_perfect_fit(self):
        loss = SquaredLoss()
        y = np.array([1.0, -2.0])
        assert loss.value(y, y) == 0.0


class TestHingeLoss:
    def test_zero_beyond_margin(self):
        loss = HingeLoss()
        z = np.array([2.0, -2.0])
        y = np.array([1.0, -1.0])
        assert loss.value(z, y) == 0.0
        assert np.all(loss.dvalue(z, y) == 0.0)

    def test_linear_inside_margin(self):
        loss = HingeLoss()
        z = np.array([0.0])
        y = np.array([1.0])
        assert loss.value(z, y) == pytest.approx(1.0)
        assert loss.dvalue(z, y)[0] == -1.0

    def test_misclassified_grows(self):
        loss = HingeLoss()
        y = np.array([1.0])
        assert loss.value(np.array([-3.0]), y) == pytest.approx(4.0)

    def test_gradient_matches_numerical_off_kink(self, rng):
        loss = HingeLoss()
        y = rng.choice([-1.0, 1.0], 10)
        # Stay away from the hinge kink at margin == 1.
        z = y * (1.0 + rng.uniform(0.1, 2.0, 10) * rng.choice([-1, 1], 10))
        z = np.where(np.abs(1 - y * z) < 0.05, z + 0.2, z)
        assert loss.dvalue(z, y) == pytest.approx(
            numerical_dvalue(loss, z, y), abs=1e-4
        )


class TestLogisticLoss:
    def test_value_at_zero_decision(self):
        loss = LogisticLoss()
        z = np.array([0.0])
        y = np.array([1.0])
        assert loss.value(z, y) == pytest.approx(np.log(2.0))

    def test_gradient_matches_numerical(self, rng):
        loss = LogisticLoss()
        z = rng.standard_normal(10) * 2
        y = rng.choice([-1.0, 1.0], 10)
        assert loss.dvalue(z, y) == pytest.approx(
            numerical_dvalue(loss, z, y), abs=1e-4
        )

    def test_extreme_margins_stable(self):
        loss = LogisticLoss()
        z = np.array([1000.0, -1000.0])
        y = np.array([1.0, -1.0])
        assert loss.value(z, y) == pytest.approx(0.0, abs=1e-9)
        assert np.all(np.isfinite(loss.dvalue(z, y)))

    def test_extreme_wrong_margins_stable(self):
        loss = LogisticLoss()
        z = np.array([-1000.0])
        y = np.array([1.0])
        assert np.isfinite(loss.value(z, y))
        assert loss.dvalue(z, y)[0] == pytest.approx(-1.0)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5

    def test_extremes(self):
        values = sigmoid(np.array([-800.0, 800.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(1.0, abs=1e-12)

    def test_symmetry(self, rng):
        x = rng.standard_normal(20)
        assert sigmoid(x) + sigmoid(-x) == pytest.approx(np.ones(20))


class TestValidation:
    @pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
    def test_shape_mismatch(self, loss):
        with pytest.raises(ValidationError):
            loss.value(np.ones(3), np.ones(2))

    @pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
    def test_empty_batch(self, loss):
        with pytest.raises(ValidationError):
            loss.value(np.array([]), np.array([]))

    def test_classification_flags(self):
        assert not SquaredLoss.is_classification
        assert HingeLoss.is_classification
        assert LogisticLoss.is_classification
