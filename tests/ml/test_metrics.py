"""Unit tests for metrics and the prequential tracker."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.metrics import (
    PrequentialTracker,
    accuracy,
    mean_absolute_error,
    mean_squared_error,
    misclassification_rate,
    rmsle,
    rmsle_from_log,
)


class TestPointMetrics:
    def test_misclassification_rate(self):
        y = np.array([1.0, -1.0, 1.0, 1.0])
        p = np.array([1.0, 1.0, 1.0, -1.0])
        assert misclassification_rate(y, p) == 0.5
        assert accuracy(y, p) == 0.5

    def test_perfect_predictions(self):
        y = np.array([1.0, -1.0])
        assert misclassification_rate(y, y) == 0.0
        assert accuracy(y, y) == 1.0

    def test_mse_and_mae(self):
        y = np.array([0.0, 2.0])
        p = np.array([1.0, 0.0])
        assert mean_squared_error(y, p) == pytest.approx(2.5)
        assert mean_absolute_error(y, p) == pytest.approx(1.5)

    def test_rmsle_basics(self):
        y = np.array([np.e - 1.0])
        p = np.array([0.0])
        assert rmsle(y, p) == pytest.approx(1.0)

    def test_rmsle_clips_negative_predictions(self):
        y = np.array([0.0])
        p = np.array([-5.0])
        assert rmsle(y, p) == 0.0

    def test_rmsle_rejects_negative_targets(self):
        with pytest.raises(ValidationError):
            rmsle(np.array([-1.0]), np.array([1.0]))

    def test_rmsle_from_log_is_rmse(self):
        log_y = np.array([1.0, 2.0])
        log_p = np.array([2.0, 2.0])
        assert rmsle_from_log(log_y, log_p) == pytest.approx(
            np.sqrt(0.5)
        )

    def test_consistency_between_rmsle_forms(self, rng):
        y = np.abs(rng.standard_normal(30)) * 100
        p = np.abs(rng.standard_normal(30)) * 100
        assert rmsle(y, p) == pytest.approx(
            rmsle_from_log(np.log1p(y), np.log1p(p))
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            misclassification_rate(np.ones(2), np.ones(3))

    def test_empty_arrays(self):
        with pytest.raises(ValidationError):
            mean_squared_error(np.array([]), np.array([]))


class TestPrequentialTracker:
    def test_rate_accumulates(self):
        tracker = PrequentialTracker(kind="rate")
        tracker.add_chunk(error_sum=2, count=10)   # 0.2
        tracker.add_chunk(error_sum=0, count=10)   # 2/20
        assert tracker.value() == pytest.approx(0.1)
        assert tracker.history == pytest.approx([0.2, 0.1])

    def test_rmse_accumulates(self):
        tracker = PrequentialTracker(kind="rmse")
        tracker.add_chunk(error_sum=4.0, count=4)  # mse 1
        assert tracker.value() == pytest.approx(1.0)
        tracker.add_chunk(error_sum=0.0, count=4)  # mse 0.5
        assert tracker.value() == pytest.approx(np.sqrt(0.5))

    def test_average_over_time(self):
        tracker = PrequentialTracker()
        tracker.add_chunk(2, 10)
        tracker.add_chunk(0, 10)
        assert tracker.average_over_time() == pytest.approx(0.15)

    def test_empty_values(self):
        tracker = PrequentialTracker()
        assert tracker.value() == 0.0
        assert tracker.average_over_time() == 0.0

    def test_invalid_kind(self):
        with pytest.raises(ValidationError):
            PrequentialTracker(kind="auc")

    def test_invalid_chunks(self):
        tracker = PrequentialTracker()
        with pytest.raises(ValidationError):
            tracker.add_chunk(1, 0)
        with pytest.raises(ValidationError):
            tracker.add_chunk(-1, 5)
