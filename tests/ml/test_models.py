"""Unit tests for the linear SGD models."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.ml.losses import SquaredLoss
from repro.ml.models import (
    LinearRegression,
    LinearSVM,
    LogisticRegression,
)
from repro.ml.optim import Adam, ConstantLR
from repro.ml.regularizers import L2
from repro.ml.sgd import SGDTrainer

# Several tests intentionally stop training at an iteration cap.
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def linear_data(rng, rows=200, dim=4, noise=0.05):
    x = rng.standard_normal((rows, dim))
    w = rng.standard_normal(dim)
    y = x @ w + 0.5 + noise * rng.standard_normal(rows)
    return x, y, w


def classification_data(rng, rows=300, dim=5):
    x = rng.standard_normal((rows, dim))
    w = rng.standard_normal(dim)
    y = np.where(x @ w + 0.2 >= 0, 1.0, -1.0)
    return x, y


class TestLinearRegression:
    def test_learns_linear_concept(self, rng):
        x, y, w = linear_data(rng)
        model = LinearRegression(num_features=4)
        trainer = SGDTrainer(model, Adam(0.05))
        trainer.train(x, y, max_iterations=2000, tolerance=1e-8, seed=0)
        assert model.weights == pytest.approx(w, abs=0.05)
        assert model.intercept == pytest.approx(0.5, abs=0.05)

    def test_predict_equals_decision(self, rng):
        model = LinearRegression(num_features=3)
        model.weights = rng.standard_normal(3)
        x = rng.standard_normal((5, 3))
        assert np.array_equal(
            model.predict(x), model.decision_function(x)
        )

    def test_no_intercept(self, rng):
        model = LinearRegression(num_features=2, fit_intercept=False)
        assert model.num_params == 2
        grad, __ = model.gradient(
            rng.standard_normal((4, 2)), rng.standard_normal(4)
        )
        assert grad.shape == (2,)


class TestClassifiers:
    @pytest.mark.parametrize(
        "model_cls", [LinearSVM, LogisticRegression]
    )
    def test_learns_separable_concept(self, model_cls, rng):
        x, y = classification_data(rng)
        model = model_cls(num_features=5, regularizer=L2(1e-4))
        trainer = SGDTrainer(model, Adam(0.05))
        trainer.train(x, y, max_iterations=1500, tolerance=1e-9, seed=0)
        accuracy = float(np.mean(model.predict(x) == y))
        assert accuracy > 0.95

    @pytest.mark.parametrize(
        "model_cls", [LinearSVM, LogisticRegression]
    )
    def test_predictions_are_pm_one(self, model_cls, rng):
        model = model_cls(num_features=3)
        predictions = model.predict(rng.standard_normal((10, 3)))
        assert set(np.unique(predictions)) <= {-1.0, 1.0}

    def test_logistic_proba_in_unit_interval(self, rng):
        model = LogisticRegression(num_features=3)
        model.weights = rng.standard_normal(3)
        proba = model.predict_proba(rng.standard_normal((20, 3)))
        assert np.all((proba >= 0) & (proba <= 1))

    def test_svm_margins(self, rng):
        model = LinearSVM(num_features=2)
        model.weights = np.array([1.0, 0.0])
        x = np.array([[2.0, 0.0]])
        assert model.margins(x, np.array([1.0]))[0] == pytest.approx(2.0)
        assert model.margins(x, np.array([-1.0]))[0] == pytest.approx(
            -2.0
        )


class TestSparseSupport:
    def test_sparse_dense_agreement(self, rng):
        dense = rng.standard_normal((20, 6))
        dense[dense < 0.5] = 0.0
        sparse = sp.csr_matrix(dense)
        model = LinearSVM(num_features=6)
        model.weights = rng.standard_normal(6)
        model.intercept = 0.3
        assert model.decision_function(sparse) == pytest.approx(
            model.decision_function(dense)
        )
        grad_sparse, __ = model.gradient(sparse, np.ones(20))
        grad_dense, __ = model.gradient(dense, np.ones(20))
        assert grad_sparse == pytest.approx(grad_dense)

    def test_trains_on_sparse(self, rng):
        x, y = classification_data(rng, rows=200, dim=8)
        x[np.abs(x) < 0.3] = 0.0
        sparse = sp.csr_matrix(x)
        model = LinearSVM(num_features=8)
        trainer = SGDTrainer(model, Adam(0.05))
        trainer.train(
            sparse, y, max_iterations=800, tolerance=1e-9, seed=0
        )
        assert float(np.mean(model.predict(sparse) == y)) > 0.9


class TestGradient:
    def test_gradient_matches_numerical(self, rng):
        model = LinearRegression(num_features=3, regularizer=L2(0.1))
        model.weights = rng.standard_normal(3)
        model.intercept = 0.2
        x = rng.standard_normal((15, 3))
        y = rng.standard_normal(15)
        grad, __ = model.gradient(x, y)
        eps = 1e-6
        packed = model.params_vector()
        for i in range(len(packed)):
            up, down = packed.copy(), packed.copy()
            up[i] += eps
            down[i] -= eps
            model.set_params_vector(up)
            f_up = model.objective(x, y)
            model.set_params_vector(down)
            f_down = model.objective(x, y)
            model.set_params_vector(packed)
            assert grad[i] == pytest.approx(
                (f_up - f_down) / (2 * eps), abs=1e-4
            )

    def test_objective_includes_penalty(self, rng):
        model = LinearRegression(num_features=2, regularizer=L2(1.0))
        model.weights = np.array([1.0, 1.0])
        x = np.zeros((3, 2))
        y = np.zeros(3)
        assert model.objective(x, y) == pytest.approx(1.0)

    def test_regularizer_not_applied_to_intercept(self):
        model = LinearRegression(num_features=1, regularizer=L2(10.0))
        model.weights = np.array([0.0])
        model.intercept = 100.0
        x = np.array([[0.0]])
        y = np.array([100.0])
        grad, __ = model.gradient(x, y)
        # Loss gradient on intercept is 0 at perfect fit; reg must not
        # add anything.
        assert grad[-1] == 0.0


class TestParameterPacking:
    def test_roundtrip(self, rng):
        model = LinearSVM(num_features=4)
        packed = rng.standard_normal(5)
        model.set_params_vector(packed)
        assert model.params_vector() == pytest.approx(packed)
        assert model.intercept == pytest.approx(packed[-1])

    def test_wrong_size_rejected(self):
        model = LinearSVM(num_features=4)
        with pytest.raises(ValidationError):
            model.set_params_vector(np.zeros(3))

    def test_params_vector_is_copy(self):
        model = LinearSVM(num_features=2)
        packed = model.params_vector()
        packed[0] = 99.0
        assert model.weights[0] == 0.0


class TestStateAndCloning:
    def test_state_dict_roundtrip(self, rng):
        model = LinearRegression(num_features=3)
        model.weights = rng.standard_normal(3)
        model.intercept = 1.5
        model.updates_applied = 7
        clone = LinearRegression(num_features=3)
        clone.load_state_dict(model.state_dict())
        assert clone.weights == pytest.approx(model.weights)
        assert clone.intercept == model.intercept
        assert clone.updates_applied == 7

    def test_state_dict_wrong_dim_rejected(self):
        model = LinearRegression(num_features=3)
        other = LinearRegression(num_features=4)
        with pytest.raises(ValidationError):
            model.load_state_dict(other.state_dict())

    def test_clone_is_untrained(self, rng):
        model = LinearSVM(num_features=2, regularizer=L2(0.5))
        model.weights = rng.standard_normal(2)
        model.updates_applied = 3
        duplicate = model.clone()
        assert np.all(duplicate.weights == 0)
        assert duplicate.updates_applied == 0
        assert duplicate.regularizer.strength == 0.5

    def test_reset(self, rng):
        model = LinearSVM(num_features=2)
        model.weights = rng.standard_normal(2)
        model.reset()
        assert np.all(model.weights == 0)


class TestValidation:
    def test_feature_width_checked(self, rng):
        model = LinearRegression(num_features=3)
        with pytest.raises(ValidationError, match="columns"):
            model.decision_function(rng.standard_normal((2, 4)))

    def test_1d_features_rejected(self):
        model = LinearRegression(num_features=3)
        with pytest.raises(ValidationError, match="2-D"):
            model.decision_function(np.zeros(3))

    def test_invalid_num_features(self):
        with pytest.raises(ValidationError):
            LinearRegression(num_features=0)

    def test_default_loss_wiring(self):
        assert isinstance(LinearRegression(1).loss, SquaredLoss)
