"""Unit tests for SGD matrix factorization."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.models import MatrixFactorization


def synthetic_ratings(rng, num_users=30, num_items=20, factors=3,
                      observed=400):
    true_p = rng.normal(0, 1, (num_users, factors))
    true_q = rng.normal(0, 1, (num_items, factors))
    users = rng.integers(0, num_users, observed)
    items = rng.integers(0, num_items, observed)
    ratings = (
        3.0
        + np.sum(true_p[users] * true_q[items], axis=1)
        + 0.05 * rng.standard_normal(observed)
    )
    return users, items, ratings


class TestTraining:
    def test_fit_reduces_mse(self, rng):
        users, items, ratings = synthetic_ratings(rng)
        model = MatrixFactorization(
            num_users=30, num_items=20, num_factors=3,
            learning_rate=0.02, seed=0,
        )
        before = model.mse(users, items, ratings)
        history = model.fit(
            users, items, ratings, epochs=40, shuffle_seed=1
        )
        after = model.mse(users, items, ratings)
        assert after < before * 0.2
        # Per-epoch training error trends downward.
        assert history[-1] < history[0]

    def test_learns_global_bias(self, rng):
        """All-constant ratings: the global bias must absorb them."""
        users = rng.integers(0, 10, 200)
        items = rng.integers(0, 10, 200)
        ratings = np.full(200, 4.0)
        model = MatrixFactorization(
            10, 10, num_factors=2, learning_rate=0.05,
            init_scale=0.01, seed=0,
        )
        model.fit(users, items, ratings, epochs=30, shuffle_seed=0)
        assert model.mse(users, items, ratings) < 0.01

    def test_step_returns_pre_update_mse(self, rng):
        users, items, ratings = synthetic_ratings(rng, observed=50)
        model = MatrixFactorization(30, 20, num_factors=3, seed=0)
        reported = model.step(users, items, ratings)
        assert reported > 0
        assert model.updates_applied == 50

    def test_incremental_training_continues(self, rng):
        """Training in two halves matches one pass over both halves
        (same order): the update is purely sequential."""
        users, items, ratings = synthetic_ratings(rng, observed=100)
        whole = MatrixFactorization(30, 20, num_factors=3, seed=5)
        whole.step(users, items, ratings)
        split = MatrixFactorization(30, 20, num_factors=3, seed=5)
        split.step(users[:50], items[:50], ratings[:50])
        split.step(users[50:], items[50:], ratings[50:])
        assert np.allclose(whole.user_factors, split.user_factors)
        assert whole.global_bias == pytest.approx(split.global_bias)


class TestPrediction:
    def test_prediction_shape(self, rng):
        model = MatrixFactorization(5, 5, num_factors=2, seed=0)
        predictions = model.predict(
            np.array([0, 1, 2]), np.array([4, 3, 2])
        )
        assert predictions.shape == (3,)

    def test_out_of_range_ids_rejected(self):
        model = MatrixFactorization(5, 5)
        with pytest.raises(ValidationError):
            model.predict(np.array([5]), np.array([0]))
        with pytest.raises(ValidationError):
            model.predict(np.array([0]), np.array([-1]))


class TestStateAndValidation:
    def test_state_roundtrip(self, rng):
        users, items, ratings = synthetic_ratings(rng, observed=80)
        model = MatrixFactorization(30, 20, num_factors=3, seed=2)
        model.step(users, items, ratings)
        clone = MatrixFactorization(30, 20, num_factors=3, seed=99)
        clone.load_state_dict(model.state_dict())
        probe_u = np.array([1, 2, 3])
        probe_i = np.array([4, 5, 6])
        assert np.allclose(
            model.predict(probe_u, probe_i),
            clone.predict(probe_u, probe_i),
        )

    def test_state_shape_checked(self):
        small = MatrixFactorization(3, 3, num_factors=2)
        large = MatrixFactorization(4, 3, num_factors=2)
        with pytest.raises(ValidationError):
            large.load_state_dict(small.state_dict())

    def test_invalid_inputs(self, rng):
        model = MatrixFactorization(5, 5)
        with pytest.raises(ValidationError):
            model.step(np.array([0]), np.array([0, 1]), np.array([1.0]))
        with pytest.raises(ValidationError):
            model.step(
                np.array([0]), np.array([0]), np.array([1.0, 2.0])
            )
        with pytest.raises(ValidationError):
            model.step(np.array([], dtype=int),
                       np.array([], dtype=int), np.array([]))
        with pytest.raises(ValidationError):
            model.fit(
                np.array([0]), np.array([0]), np.array([1.0]),
                epochs=0,
            )

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            MatrixFactorization(0, 5)
        with pytest.raises(ValidationError):
            MatrixFactorization(5, 5, learning_rate=0.0)
        with pytest.raises(ValidationError):
            MatrixFactorization(5, 5, regularization=-1.0)
