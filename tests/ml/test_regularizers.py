"""Unit tests for regularizers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.regularizers import L1, L2, NoRegularizer


class TestL2:
    def test_penalty(self):
        reg = L2(0.1)
        w = np.array([3.0, 4.0])
        assert reg.penalty(w) == pytest.approx(0.5 * 0.1 * 25.0)

    def test_gradient(self):
        reg = L2(0.5)
        w = np.array([2.0, -2.0])
        assert np.array_equal(reg.gradient(w), [1.0, -1.0])

    def test_zero_strength(self):
        reg = L2(0.0)
        assert reg.penalty(np.ones(3)) == 0.0

    def test_negative_strength_rejected(self):
        with pytest.raises(ValidationError):
            L2(-0.1)


class TestL1:
    def test_penalty(self):
        reg = L1(0.1)
        assert reg.penalty(np.array([3.0, -4.0])) == pytest.approx(0.7)

    def test_subgradient_sign(self):
        reg = L1(1.0)
        grad = reg.gradient(np.array([2.0, -3.0, 0.0]))
        assert np.array_equal(grad, [1.0, -1.0, 0.0])

    def test_negative_strength_rejected(self):
        with pytest.raises(ValidationError):
            L1(-1.0)


class TestNoRegularizer:
    def test_penalty_zero(self):
        assert NoRegularizer().penalty(np.ones(5)) == 0.0

    def test_gradient_zero(self):
        grad = NoRegularizer().gradient(np.ones(5))
        assert np.array_equal(grad, np.zeros(5))
