"""Unit tests for the SGD update rules."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.optim import (
    AdaDelta,
    AdaGrad,
    Adam,
    ConstantLR,
    InverseScalingLR,
    Momentum,
    RMSProp,
    make_optimizer,
)

ALL_OPTIMIZERS = [
    ConstantLR(0.1),
    InverseScalingLR(0.1),
    Momentum(0.1),
    AdaGrad(0.1),
    RMSProp(0.1),
    AdaDelta(),
    Adam(0.1),
]


def quadratic_descent(optimizer, start=5.0, steps=400):
    """Minimise f(x) = x² with the optimizer; return the trajectory."""
    params = np.array([start])
    trajectory = [start]
    for __ in range(steps):
        grad = 2.0 * params
        params = optimizer.step(params, grad)
        trajectory.append(float(params[0]))
    return trajectory


class TestUpdateRules:
    def test_constant_lr_step(self):
        optimizer = ConstantLR(0.5)
        new = optimizer.step(np.array([1.0]), np.array([2.0]))
        assert new[0] == 0.0

    def test_inverse_scaling_decays(self):
        optimizer = InverseScalingLR(1.0, power=1.0)
        first = optimizer.current_learning_rate()
        optimizer.step(np.array([0.0]), np.array([1.0]))
        second = optimizer.current_learning_rate()
        assert first == 1.0
        assert second == 0.5

    def test_momentum_accumulates_velocity(self):
        optimizer = Momentum(learning_rate=0.1, beta=0.9)
        params = np.array([0.0])
        grad = np.array([1.0])
        p1 = optimizer.step(params, grad)
        p2 = optimizer.step(p1, grad)
        # Second step is larger: velocity builds up.
        assert abs(p2[0] - p1[0]) > abs(p1[0] - params[0])

    def test_adagrad_shrinks_steps(self):
        optimizer = AdaGrad(0.5)
        params = np.array([0.0])
        grad = np.array([1.0])
        p1 = optimizer.step(params, grad)
        p2 = optimizer.step(p1, grad)
        assert abs(p2[0] - p1[0]) < abs(p1[0] - params[0])

    def test_rmsprop_step_bounded_by_lr(self):
        optimizer = RMSProp(learning_rate=0.1)
        params = np.array([0.0])
        # Huge gradient: per-coordinate normalisation caps the step.
        new = optimizer.step(params, np.array([1e6]))
        assert abs(new[0]) < 0.4

    def test_adam_first_step_is_lr_sized(self):
        """Bias correction makes Adam's first step ≈ lr * sign(g)."""
        optimizer = Adam(learning_rate=0.1)
        new = optimizer.step(np.array([0.0]), np.array([123.0]))
        assert new[0] == pytest.approx(-0.1, rel=1e-3)

    def test_adadelta_needs_no_learning_rate(self):
        optimizer = AdaDelta()
        new = optimizer.step(np.array([1.0]), np.array([1.0]))
        assert new[0] != 1.0

    @pytest.mark.parametrize(
        ("optimizer", "steps"),
        [
            (ConstantLR(0.1), 800),
            (InverseScalingLR(0.1), 800),
            (Momentum(0.1), 800),
            # AdaGrad's effective rate decays ~1/sqrt(t); give it a
            # larger base rate. AdaDelta starts slowly by design; give
            # it more iterations.
            (AdaGrad(0.5), 800),
            (RMSProp(0.1), 800),
            (AdaDelta(), 3000),
            (Adam(0.1), 800),
        ],
        ids=lambda value: getattr(value, "name", value),
    )
    def test_converges_on_quadratic(self, optimizer, steps):
        trajectory = quadratic_descent(optimizer.clone(), steps=steps)
        assert abs(trajectory[-1]) < abs(trajectory[0])
        assert abs(trajectory[-1]) < 0.5

    @pytest.mark.parametrize(
        "optimizer", ALL_OPTIMIZERS, ids=lambda o: o.name
    )
    def test_per_coordinate_independence(self, optimizer):
        """A zero-gradient coordinate must not move."""
        optimizer = optimizer.clone()
        params = np.array([1.0, 1.0])
        new = optimizer.step(params, np.array([1.0, 0.0]))
        assert new[1] == 1.0
        assert new[0] != 1.0

    def test_input_not_mutated(self):
        params = np.array([1.0, 2.0])
        Adam(0.1).step(params, np.array([1.0, 1.0]))
        assert np.array_equal(params, [1.0, 2.0])


class TestStateManagement:
    def test_state_dict_roundtrip(self):
        source = Adam(0.1)
        for __ in range(5):
            source.step(np.array([1.0]), np.array([0.5]))
        clone = Adam(0.1)
        clone.load_state_dict(source.state_dict())
        a = source.step(np.array([1.0]), np.array([0.5]))
        b = clone.step(np.array([1.0]), np.array([0.5]))
        assert a == pytest.approx(b)

    def test_state_dict_is_deep_copy(self):
        optimizer = Momentum(0.1)
        optimizer.step(np.array([0.0]), np.array([1.0]))
        snapshot = optimizer.state_dict()
        optimizer.step(np.array([0.0]), np.array([1.0]))
        restored = Momentum(0.1)
        restored.load_state_dict(snapshot)
        # The snapshot reflects one step, not two.
        a = restored.step(np.array([0.0]), np.array([1.0]))
        fresh = Momentum(0.1)
        fresh.step(np.array([0.0]), np.array([1.0]))
        b = fresh.step(np.array([0.0]), np.array([1.0]))
        assert a == pytest.approx(b)

    def test_malformed_state_rejected(self):
        with pytest.raises(ValidationError):
            Adam(0.1).load_state_dict({"bogus": 1})

    def test_reset(self):
        optimizer = Adam(0.1)
        optimizer.step(np.array([0.0]), np.array([1.0]))
        optimizer.reset()
        new = optimizer.step(np.array([0.0]), np.array([123.0]))
        assert new[0] == pytest.approx(-0.1, rel=1e-3)

    def test_clone_has_same_hyperparameters_fresh_state(self):
        optimizer = RMSProp(learning_rate=0.25, rho=0.8)
        optimizer.step(np.array([0.0]), np.array([1.0]))
        duplicate = optimizer.clone()
        assert duplicate.learning_rate == 0.25
        assert duplicate.rho == 0.8
        assert duplicate._state == {}

    def test_dim_locked_after_first_step(self):
        optimizer = ConstantLR(0.1)
        optimizer.step(np.zeros(3), np.zeros(3))
        with pytest.raises(ValidationError, match="sized"):
            optimizer.step(np.zeros(4), np.zeros(4))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ConstantLR(0.1).step(np.zeros(3), np.zeros(2))


class TestMakeOptimizer:
    def test_all_names(self):
        for name in (
            "constant",
            "inverse_scaling",
            "momentum",
            "adagrad",
            "rmsprop",
            "adadelta",
            "adam",
        ):
            assert make_optimizer(name).name == name

    def test_kwargs_forwarded(self):
        optimizer = make_optimizer("adam", learning_rate=0.42)
        assert optimizer.learning_rate == 0.42

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            make_optimizer("sgdtron")

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            Adam(learning_rate=-1.0)
        with pytest.raises(ValidationError):
            RMSProp(rho=1.5)
        with pytest.raises(ValidationError):
            Momentum(beta=-0.1)
