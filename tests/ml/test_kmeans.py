"""Unit tests for online k-means."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.models import OnlineKMeans


def three_blobs(rng, per_blob=100, spread=0.15):
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]])
    points = np.vstack(
        [
            center + spread * rng.standard_normal((per_blob, 2))
            for center in centers
        ]
    )
    labels = np.repeat(np.arange(3), per_blob)
    order = rng.permutation(len(points))
    return points[order], labels[order], centers


class TestClustering:
    def test_recovers_well_separated_blobs(self, rng):
        points, __, centers = three_blobs(rng)
        model = OnlineKMeans(num_clusters=3, num_features=2, seed=0)
        model.partial_fit(points)
        for center in centers:
            distances = np.linalg.norm(
                model.centroids - center, axis=1
            )
            assert distances.min() < 0.5

    def test_inertia_reasonable_after_fit(self, rng):
        points, __, __ = three_blobs(rng, spread=0.1)
        model = OnlineKMeans(num_clusters=3, num_features=2, seed=0)
        model.partial_fit(points)
        # Inertia ~ spread² when clusters are found, ~25 when not.
        assert model.inertia(points) < 1.0

    def test_predict_assigns_consistent_clusters(self, rng):
        points, labels, __ = three_blobs(rng)
        model = OnlineKMeans(num_clusters=3, num_features=2, seed=0)
        model.partial_fit(points)
        assigned = model.predict(points)
        for blob in range(3):
            blob_assignments = assigned[labels == blob]
            majority = np.bincount(blob_assignments).max()
            assert majority / len(blob_assignments) > 0.9

    def test_centroid_is_running_mean(self, rng):
        """The 1/count step makes each centroid the mean of its
        assigned points — verify on a single-cluster stream."""
        points = rng.standard_normal((50, 2)) + 10.0
        model = OnlineKMeans(num_clusters=1, num_features=2, seed=0)
        model.partial_fit(points)
        assert model.centroids[0] == pytest.approx(
            points.mean(axis=0)
        )

    def test_incremental_equals_batch(self, rng):
        points = rng.standard_normal((60, 3))
        whole = OnlineKMeans(2, 3, seed=7)
        whole.partial_fit(points)
        split = OnlineKMeans(2, 3, seed=7)
        split.partial_fit(points[:25])
        split.partial_fit(points[25:])
        assert np.allclose(whole.centroids, split.centroids)


class TestSeeding:
    def test_not_fitted_until_buffer_full(self):
        model = OnlineKMeans(
            num_clusters=2, num_features=1, seed_size=5, seed=0
        )
        model.partial_fit(np.array([[1.0], [2.0], [3.0]]))
        assert not model.is_fitted
        with pytest.raises(NotFittedError):
            model.predict(np.array([[1.0]]))
        model.partial_fit(np.array([[4.0], [5.0]]))
        assert model.is_fitted

    def test_seed_size_floor(self):
        with pytest.raises(ValidationError):
            OnlineKMeans(num_clusters=3, num_features=1, seed_size=2)

    def test_degenerate_identical_points(self):
        model = OnlineKMeans(
            num_clusters=2, num_features=1, seed_size=4, seed=0
        )
        model.partial_fit(np.full((6, 1), 3.0))
        assert model.is_fitted
        assert model.inertia(np.full((2, 1), 3.0)) == pytest.approx(0.0)

    def test_kmeans_plus_plus_spreads_centroids(self, rng):
        """With two distant blobs and k=2, the two centroids must
        land in different blobs (the failure mode of naive seeding)."""
        points = np.vstack(
            [
                rng.standard_normal((50, 2)) * 0.1,
                rng.standard_normal((50, 2)) * 0.1 + 100.0,
            ]
        )
        rng.shuffle(points)
        model = OnlineKMeans(2, 2, seed=1)
        model.partial_fit(points)
        gap = np.linalg.norm(model.centroids[0] - model.centroids[1])
        assert gap > 50.0


class TestStateAndValidation:
    def test_state_roundtrip(self, rng):
        points, __, __ = three_blobs(rng)
        model = OnlineKMeans(3, 2, seed=0)
        model.partial_fit(points)
        clone = OnlineKMeans(3, 2, seed=9)
        clone.load_state_dict(model.state_dict())
        probe = rng.standard_normal((10, 2))
        assert np.array_equal(
            model.predict(probe), clone.predict(probe)
        )

    def test_state_roundtrip_mid_buffer(self):
        model = OnlineKMeans(2, 1, seed_size=10, seed=0)
        model.partial_fit(np.array([[1.0], [2.0]]))
        clone = OnlineKMeans(2, 1, seed_size=10, seed=0)
        clone.load_state_dict(model.state_dict())
        remaining = np.arange(8, dtype=np.float64)[:, None]
        model.partial_fit(remaining)
        clone.partial_fit(remaining)
        assert np.allclose(model.centroids, clone.centroids)

    def test_state_shape_checked(self):
        model = OnlineKMeans(3, 2)
        other = OnlineKMeans(2, 2, seed_size=2, seed=0)
        other.partial_fit(np.array([[0.0, 0.0], [1.0, 1.0]]))
        with pytest.raises(ValidationError):
            model.load_state_dict(other.state_dict())

    def test_bad_shapes_rejected(self):
        model = OnlineKMeans(2, 3)
        with pytest.raises(ValidationError):
            model.partial_fit(np.zeros((4, 2)))
        with pytest.raises(ValidationError):
            OnlineKMeans(0, 1)
