"""Tests for the drift detectors and the drift-aware deployment."""

import numpy as np
import pytest

from repro.driftdetect import (
    DDM,
    DriftAwareContinuousDeployment,
    DriftState,
    PageHinkley,
    WindowComparisonDetector,
)
from repro.exceptions import ValidationError

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)

ALL_DETECTORS = [
    lambda: DDM(minimum_observations=30),
    lambda: PageHinkley(threshold=2.0, minimum_observations=30),
    lambda: WindowComparisonDetector(window_size=25, ratio=0.3),
]


def feed(detector, errors):
    return [detector.update(e) for e in errors]


class TestDDM:
    def test_detects_error_surge(self):
        detector = DDM()
        states = feed(detector, [0.0] * 200 + [1.0] * 80)
        assert DriftState.DRIFT in states
        assert detector.drifts_detected >= 1

    def test_warning_precedes_drift(self):
        rng = np.random.default_rng(0)
        detector = DDM()
        stable = (rng.random(300) < 0.1).astype(float)
        degraded = (rng.random(200) < 0.5).astype(float)
        states = feed(detector, np.concatenate([stable, degraded]))
        drift_at = states.index(DriftState.DRIFT)
        assert DriftState.WARNING in states[:drift_at]

    def test_stable_stream_rarely_alarms(self):
        """DDM's early p_min estimates can false-alarm once on a
        stationary stream (a known property of the method); it must
        not alarm repeatedly."""
        rng = np.random.default_rng(1)
        detector = DDM()
        feed(detector, (rng.random(500) < 0.2).astype(float))
        assert detector.drifts_detected <= 1

    def test_non_binary_rejected(self):
        with pytest.raises(ValidationError):
            DDM().update(0.5)

    def test_error_rate_accessor(self):
        detector = DDM()
        feed(detector, [1.0, 0.0, 1.0, 1.0])
        assert detector.error_rate == pytest.approx(0.75)

    def test_invalid_levels(self):
        with pytest.raises(ValidationError):
            DDM(warning_level=3.0, drift_level=2.0)


class TestPageHinkley:
    def test_detects_mean_shift(self):
        detector = PageHinkley(threshold=2.0)
        states = feed(detector, [0.1] * 100 + [0.8] * 60)
        assert DriftState.DRIFT in states

    def test_tolerates_noise_below_delta(self):
        rng = np.random.default_rng(2)
        detector = PageHinkley(delta=0.05, threshold=5.0)
        noise = 0.2 + rng.normal(0, 0.01, 800)
        states = feed(detector, noise)
        assert DriftState.DRIFT not in states

    def test_statistic_accessor(self):
        detector = PageHinkley()
        assert detector.statistic == 0.0
        feed(detector, [0.1] * 50)
        assert detector.statistic >= 0.0

    def test_works_on_regression_residuals(self):
        detector = PageHinkley(threshold=3.0)
        small = [0.05] * 100
        large = [2.5] * 40
        states = feed(detector, small + large)
        assert DriftState.DRIFT in states


class TestWindowComparison:
    def test_detects_degradation(self):
        detector = WindowComparisonDetector(window_size=20, ratio=0.2)
        states = feed(detector, [0.1] * 40 + [0.3] * 30)
        assert DriftState.DRIFT in states

    def test_reference_mean(self):
        detector = WindowComparisonDetector(window_size=5)
        feed(detector, [0.2] * 5)
        assert detector.reference_mean == pytest.approx(0.2)

    def test_stable_within_ratio(self):
        detector = WindowComparisonDetector(window_size=20, ratio=0.5)
        states = feed(detector, [0.2] * 40 + [0.25] * 40)
        assert DriftState.DRIFT not in states


class TestDetectorContract:
    @pytest.mark.parametrize(
        "factory", ALL_DETECTORS,
        ids=["ddm", "page_hinkley", "window"],
    )
    def test_self_reset_after_drift(self, factory):
        detector = factory()
        surge = [0.0] * 200 + [1.0] * 100
        feed(detector, surge)
        first_drifts = detector.drifts_detected
        assert first_drifts >= 1
        # After the reset, a fresh surge is detected again.
        feed(detector, surge)
        assert detector.drifts_detected > first_drifts

    @pytest.mark.parametrize(
        "factory", ALL_DETECTORS,
        ids=["ddm", "page_hinkley", "window"],
    )
    def test_update_many_reports_worst(self, factory):
        detector = factory()
        state = detector.update_many([0.0] * 200 + [1.0] * 100)
        assert state is DriftState.DRIFT

    def test_observation_counters(self):
        detector = PageHinkley()
        detector.update_many([0.1] * 10)
        assert detector.observations == 10


class TestDriftAwareDeployment:
    def _make(self, detector, bursts=1):
        from repro.core.config import ContinuousConfig, ScheduleConfig
        from repro.data.table import Table
        from repro.ml.models import LinearRegression
        from repro.ml.optim import Adam
        from repro.pipeline.components.assembler import FeatureAssembler
        from repro.pipeline.components.scaler import StandardScaler
        from repro.pipeline.pipeline import Pipeline

        pipeline = Pipeline(
            [
                StandardScaler(["x"], name="scaler"),
                FeatureAssembler(["x"], "y", name="assembler"),
            ]
        )
        deployment = DriftAwareContinuousDeployment(
            pipeline,
            LinearRegression(num_features=1),
            Adam(0.05),
            detector=detector,
            bursts_per_drift=bursts,
            config=ContinuousConfig(
                sample_size_chunks=3,
                schedule=ScheduleConfig(interval_chunks=1000),
            ),
            metric="regression",
            seed=0,
        )
        rng = np.random.default_rng(9)
        x = rng.standard_normal(60)
        deployment.initial_fit(
            [Table({"x": x, "y": 3.0 * x})],
            max_iterations=400,
            tolerance=1e-8,
        )
        return deployment

    @staticmethod
    def _shifting_stream(num_chunks=40, shift_at=20):
        from repro.data.table import Table

        rng = np.random.default_rng(4)
        for index in range(num_chunks):
            x = rng.standard_normal(12)
            slope = 3.0 if index < shift_at else -3.0
            yield Table({"x": x, "y": slope * x})

    def test_burst_fires_on_drift(self):
        detector = PageHinkley(threshold=2.0, minimum_observations=30)
        deployment = self._make(detector)
        result = deployment.run(self._shifting_stream())
        assert result.counters["drifts_detected"] >= 1
        # The schedule (interval 1000) never fires: every proactive
        # training came from a drift burst.
        assert (
            result.counters["proactive_trainings"]
            == result.counters["drifts_detected"]
            * deployment.bursts_per_drift
        )
        assert deployment.drift_chunks[0] >= 20

    def test_no_drift_no_burst(self):
        from repro.data.table import Table

        detector = PageHinkley(threshold=50.0)
        deployment = self._make(detector)
        rng = np.random.default_rng(5)
        stream = (
            Table(
                {
                    "x": rng.standard_normal(12),
                    "y": 3.0 * rng.standard_normal(12),
                }
            )
            for __ in range(10)
        )
        # Stream is noisy but threshold is enormous.
        result = deployment.run(self._shifting_stream(10, shift_at=99))
        assert result.counters["drifts_detected"] == 0

    def test_invalid_bursts(self):
        with pytest.raises(ValueError):
            self._make(PageHinkley(), bursts=0)


class TestBurstMechanics:
    def _deployment(self, **kwargs):
        import numpy as np

        from repro.core.config import ContinuousConfig, ScheduleConfig
        from repro.data.table import Table
        from repro.ml.models import LinearRegression
        from repro.ml.optim import Adam
        from repro.pipeline.components.assembler import FeatureAssembler
        from repro.pipeline.components.scaler import StandardScaler
        from repro.pipeline.pipeline import Pipeline

        pipeline = Pipeline(
            [
                StandardScaler(["x"], name="scaler"),
                FeatureAssembler(["x"], "y", name="assembler"),
            ]
        )
        deployment = DriftAwareContinuousDeployment(
            pipeline,
            LinearRegression(num_features=1),
            Adam(0.05),
            detector=kwargs.pop(
                "detector", PageHinkley(threshold=2.0,
                                        minimum_observations=30)
            ),
            config=ContinuousConfig(
                sample_size_chunks=2,
                schedule=ScheduleConfig(interval_chunks=1000),
            ),
            metric="regression",
            seed=0,
            **kwargs,
        )
        rng = np.random.default_rng(9)
        x = rng.standard_normal(60)
        deployment.initial_fit(
            [Table({"x": x, "y": 3.0 * x})],
            max_iterations=100,
            tolerance=1e-6,
        )
        return deployment

    @staticmethod
    def _stream(num_chunks=40, shift_at=15):
        import numpy as np

        from repro.data.table import Table

        rng = np.random.default_rng(4)
        for index in range(num_chunks):
            x = rng.standard_normal(12)
            slope = 3.0 if index < shift_at else -3.0
            yield Table({"x": x, "y": slope * x})

    def test_regular_sampler_restored_after_burst(self):
        from repro.data.sampling import TimeBasedSampler

        deployment = self._deployment(burst_delay_chunks=2)
        regular = deployment.platform.data_manager.sampler
        deployment.run(self._stream())
        assert deployment.platform.data_manager.sampler is regular

    def test_burst_delay_defers_response(self):
        deployment = self._deployment(
            burst_delay_chunks=5, bursts_per_drift=2
        )
        result = deployment.run(self._stream())
        assert result.counters["drifts_detected"] >= 1
        # All proactive trainings came from bursts (schedule is 1000).
        assert result.counters["proactive_trainings"] % 2 == 0

    def test_no_duplicate_detection_during_countdown(self):
        """While a burst countdown is pending, further DRIFT signals
        must not queue additional bursts."""
        deployment = self._deployment(
            burst_delay_chunks=10, bursts_per_drift=1
        )
        result = deployment.run(self._stream(num_chunks=30))
        assert result.counters["drifts_detected"] <= 2

    def test_invalid_burst_parameters(self):
        with pytest.raises(ValueError):
            self._deployment(burst_window=0)
        with pytest.raises(ValueError):
            self._deployment(burst_delay_chunks=-1)


class TestDetectorStateRoundTrip:
    @pytest.mark.parametrize(
        "factory", ALL_DETECTORS,
        ids=["ddm", "page_hinkley", "window"],
    )
    def test_restored_detector_continues_identically(self, factory):
        """Snapshot mid-stream, restore into a fresh detector, and the
        remaining verdicts match the uninterrupted detector's."""
        rng = np.random.default_rng(11)
        prefix = (rng.random(120) < 0.08).astype(float)
        suffix = np.concatenate(
            [(rng.random(60) < 0.08).astype(float), np.ones(90)]
        )

        reference = factory()
        feed(reference, prefix)
        state = reference.state_dict()
        tail_states = feed(reference, suffix)
        assert DriftState.DRIFT in tail_states  # the surge registers

        resumed = factory()
        resumed.load_state_dict(state)
        assert feed(resumed, suffix) == tail_states
        assert resumed.observations == reference.observations
        assert resumed.drifts_detected == reference.drifts_detected

    @pytest.mark.parametrize(
        "factory", ALL_DETECTORS,
        ids=["ddm", "page_hinkley", "window"],
    )
    def test_state_dict_round_trips_exactly(self, factory):
        import pickle

        detector = factory()
        feed(detector, [0.0, 1.0, 0.0, 0.0, 1.0] * 20)
        state = detector.state_dict()
        restored = factory()
        restored.load_state_dict(state)
        assert pickle.dumps(restored.state_dict()) == pickle.dumps(
            state
        )

    def test_lifetime_counters_survive(self):
        detector = DDM(minimum_observations=30)
        feed(detector, [0.0] * 200 + [1.0] * 100)
        assert detector.drifts_detected >= 1
        restored = DDM(minimum_observations=30)
        restored.load_state_dict(detector.state_dict())
        assert restored.drifts_detected == detector.drifts_detected
        assert restored.observations == detector.observations
