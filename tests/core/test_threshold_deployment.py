"""Tests for the Velox-style threshold-retraining deployment."""

import numpy as np
import pytest

from repro.core.config import PeriodicalConfig
from repro.core.deployment import ThresholdRetrainingDeployment
from repro.data.table import Table
from repro.exceptions import ValidationError
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def make_parts():
    pipeline = Pipeline(
        [
            StandardScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )
    return pipeline, LinearRegression(num_features=1), Adam(0.05)


def shifting_stream(num_chunks=30, rows=10, shift_at=15, seed=0):
    """y = 3x before the shift, y = -3x after — a hard drift."""
    rng = np.random.default_rng(seed)
    for index in range(num_chunks):
        x = rng.standard_normal(rows)
        slope = 3.0 if index < shift_at else -3.0
        yield Table({"x": x, "y": slope * x})


def stable_stream(num_chunks=30, rows=10, seed=0):
    rng = np.random.default_rng(seed)
    for __ in range(num_chunks):
        x = rng.standard_normal(rows)
        yield Table({"x": x, "y": 3.0 * x})


def initial_tables(seed=99):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(80)
    return [Table({"x": x, "y": 3.0 * x})]


def make_deployment(**kwargs):
    pipeline, model, optimizer = make_parts()
    defaults = dict(
        tolerance_ratio=0.5,
        window_chunks=4,
        cooldown_chunks=4,
        # Online Adam steps make the per-chunk MSE oscillate in the
        # 0.005-0.04 band; the concept shift pushes it to ~36. The
        # absolute floor separates the two regimes.
        min_absolute_delta=0.05,
        config=PeriodicalConfig(max_epoch_iterations=100),
        metric="regression",
        seed=0,
    )
    defaults.update(kwargs)
    return ThresholdRetrainingDeployment(
        pipeline, model, optimizer, **defaults
    )


class TestTriggering:
    def test_retrains_after_concept_shift(self):
        deployment = make_deployment()
        deployment.initial_fit(
            initial_tables(), max_iterations=500, tolerance=1e-8
        )
        result = deployment.run(shifting_stream())
        assert result.counters["retrainings"] >= 1
        # The first retraining happens after the shift at chunk 15.
        assert deployment.retrain_chunks[0] >= 15

    def test_stable_stream_never_retrains(self):
        deployment = make_deployment()
        deployment.initial_fit(
            initial_tables(), max_iterations=500, tolerance=1e-8
        )
        result = deployment.run(stable_stream())
        assert result.counters["retrainings"] == 0

    def test_cooldown_limits_retrain_frequency(self):
        deployment = make_deployment(cooldown_chunks=100)
        deployment.initial_fit(
            initial_tables(), max_iterations=500, tolerance=1e-8
        )
        result = deployment.run(shifting_stream())
        assert result.counters["retrainings"] == 0

    def test_windowed_error_accessor(self):
        deployment = make_deployment()
        assert deployment.windowed_error() == 0.0


class TestReporting:
    def test_result_counters(self):
        deployment = make_deployment()
        deployment.initial_fit(
            initial_tables(), max_iterations=100, tolerance=1e-6
        )
        result = deployment.run(shifting_stream(num_chunks=20))
        assert result.approach == "threshold"
        assert result.counters["online_updates"] == 20
        assert result.chunks_processed == 20

    def test_history_available_for_retraining(self):
        deployment = make_deployment()
        deployment.initial_fit(
            initial_tables(), max_iterations=100, tolerance=1e-6
        )
        deployment.run(shifting_stream(num_chunks=10))
        # 1 initial table + 10 chunks stored as raw history.
        assert deployment.data_manager.storage.num_raw == 11


class TestValidation:
    def test_invalid_parameters(self):
        pipeline, model, optimizer = make_parts()
        with pytest.raises(ValidationError):
            ThresholdRetrainingDeployment(
                pipeline, model, optimizer, tolerance_ratio=0.0
            )
        with pytest.raises(ValidationError):
            ThresholdRetrainingDeployment(
                pipeline, model, optimizer, window_chunks=0
            )
        with pytest.raises(ValidationError):
            ThresholdRetrainingDeployment(
                pipeline, model, optimizer, cooldown_chunks=-1
            )
