"""Tests for deployment-bundle persistence."""

import numpy as np
import pytest

from repro.datasets.taxi import TaxiStreamGenerator, make_taxi_pipeline
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.ml.models import LinearRegression, LinearSVM
from repro.ml.optim import Adam, RMSProp
from repro.ml.sgd import SGDTrainer
from repro.persistence import (
    DeploymentBundle,
    PersistenceError,
    atomic_write_bytes,
    bundle_checksum,
    load_bundle,
    save_bundle,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def fitted_url_parts():
    generator = URLStreamGenerator(
        num_chunks=3, rows_per_chunk=20, seed=4
    )
    pipeline = make_url_pipeline(hash_features=128)
    model = LinearSVM(num_features=128)
    optimizer = Adam(0.05)
    trainer = SGDTrainer(model, optimizer)
    for chunk in generator.stream():
        features = pipeline.update_transform_to_features(chunk)
        trainer.step(features.matrix, features.labels)
    return generator, pipeline, model, optimizer


class TestRoundtrip:
    def test_url_bundle_roundtrip(self, tmp_path):
        generator, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "deployment.bundle", pipeline, model, optimizer
        )
        restored = load_bundle(path)

        # The restored pipeline+model must serve identically.
        probe = generator.chunk(1)
        original = pipeline.transform_to_features(probe)
        resumed = restored.pipeline.transform_to_features(probe)
        assert np.allclose(
            original.matrix.toarray(), resumed.matrix.toarray()
        )
        assert np.allclose(
            model.predict(original.matrix),
            restored.model.predict(resumed.matrix),
        )

    def test_resumed_training_is_identical(self, tmp_path):
        """The §3.3 property end-to-end: save, restore, and the next
        SGD step matches the never-interrupted run exactly."""
        generator, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "d.bundle", pipeline, model, optimizer
        )
        restored = load_bundle(path)

        next_chunk = generator.chunk(2)
        features = pipeline.transform_to_features(next_chunk)
        SGDTrainer(model, optimizer).step(
            features.matrix, features.labels
        )
        restored_features = restored.pipeline.transform_to_features(
            next_chunk
        )
        SGDTrainer(restored.model, restored.optimizer).step(
            restored_features.matrix, restored_features.labels
        )
        assert restored.model.params_vector() == pytest.approx(
            model.params_vector()
        )

    def test_taxi_bundle_roundtrip(self, tmp_path):
        generator = TaxiStreamGenerator(
            num_chunks=2, rows_per_chunk=30, seed=1
        )
        pipeline = make_taxi_pipeline()
        model = LinearRegression(num_features=11)
        optimizer = RMSProp(0.05)
        features = pipeline.update_transform_to_features(
            generator.chunk(0)
        )
        SGDTrainer(model, optimizer).step(
            features.matrix, features.labels
        )
        path = save_bundle(
            tmp_path / "taxi.bundle", pipeline, model, optimizer
        )
        restored = load_bundle(path)
        probe = generator.chunk(1)
        assert np.allclose(
            pipeline.transform_to_features(probe).matrix,
            restored.pipeline.transform_to_features(probe).matrix,
        )


class TestIntegrity:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not_a_bundle"
        path.write_bytes(b"hello world")
        with pytest.raises(PersistenceError, match="magic"):
            load_bundle(path)

    def test_corruption_detected(self, tmp_path):
        __, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "d.bundle", pipeline, model, optimizer
        )
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError, match="checksum"):
            load_bundle(path)

    def test_truncation_detected(self, tmp_path):
        __, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "d.bundle", pipeline, model, optimizer
        )
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(PersistenceError):
            load_bundle(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            load_bundle(tmp_path / "nope.bundle")

    def test_version_mismatch_names_both_versions_and_path(
        self, tmp_path, monkeypatch
    ):
        """A bundle from another library version must fail with an
        error naming the written-by version, the current version, and
        the offending file."""
        import repro
        import repro.persistence as persistence

        __, pipeline, model, optimizer = fitted_url_parts()
        path = tmp_path / "old.bundle"
        monkeypatch.setattr(
            persistence, "_library_version", lambda: "0.1.0"
        )
        save_bundle(path, pipeline, model, optimizer)
        monkeypatch.undo()

        with pytest.raises(PersistenceError) as excinfo:
            load_bundle(path)
        message = str(excinfo.value)
        assert "0.1.0" in message
        assert repro.__version__ in message
        assert str(path) in message


class TestAtomicWrites:
    def test_atomic_write_roundtrip(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "blob", b"payload")
        assert path.read_bytes() == b"payload"
        assert list(tmp_path.iterdir()) == [path]

    def test_kill_before_rename_keeps_previous_bundle(
        self, tmp_path, monkeypatch
    ):
        """A save killed between staging and rename must leave the
        previous bundle intact and loadable — never a truncation."""
        import os

        __, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "d.bundle", pipeline, model, optimizer
        )
        expected = model.params_vector().copy()
        before = path.read_bytes()

        def killed(*args, **kwargs):
            raise OSError("killed mid-write")

        monkeypatch.setattr(os, "replace", killed)
        model.weights[:] = 0.0
        with pytest.raises(OSError, match="killed"):
            save_bundle(path, pipeline, model, optimizer)
        monkeypatch.undo()

        # The destination still holds the pre-crash bytes, the staged
        # temp file is gone, and the old state restores cleanly.
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]
        restored = load_bundle(path)
        assert restored.model.params_vector() == pytest.approx(expected)

    def test_kill_during_flush_leaves_no_partial_file(
        self, tmp_path, monkeypatch
    ):
        import os

        def killed(fd):
            raise OSError("killed mid-fsync")

        monkeypatch.setattr(os, "fsync", killed)
        target = tmp_path / "fresh.bundle"
        with pytest.raises(OSError, match="killed"):
            atomic_write_bytes(target, b"half-written")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_accepts_str_and_path_uniformly(self, tmp_path):
        __, pipeline, model, optimizer = fitted_url_parts()
        as_str = str(tmp_path / "s.bundle")
        returned = save_bundle(as_str, pipeline, model, optimizer)
        assert str(returned) == as_str
        # load/bundle_checksum accept both spellings interchangeably.
        from_str = load_bundle(as_str)
        from_path = load_bundle(returned)
        assert (
            from_str.model.params_vector()
            == pytest.approx(from_path.model.params_vector())
        )
        assert bundle_checksum(as_str) == bundle_checksum(returned)


class TestBundleValidation:
    def test_bundle_type_validation(self):
        __, pipeline, model, optimizer = fitted_url_parts()
        with pytest.raises(PersistenceError):
            DeploymentBundle(
                pipeline="not a pipeline",
                model=model,
                optimizer=optimizer,
            )
        with pytest.raises(PersistenceError):
            DeploymentBundle(
                pipeline=pipeline, model=None, optimizer=optimizer
            )


class TestStaleTmpSweep:
    def test_stray_tmp_swept_on_next_save(self, tmp_path):
        """A writer killed mid-save leaves a staging file behind; the
        next successful save to the same destination removes it."""
        __, pipeline, model, optimizer = fitted_url_parts()
        target = tmp_path / "d.bundle"
        stray = tmp_path / "d.bundle.12345.tmp"
        stray.write_bytes(b"orphaned staging bytes")
        unrelated = tmp_path / "other.bundle.99.tmp"
        unrelated.write_bytes(b"someone else's staging file")

        save_bundle(target, pipeline, model, optimizer)

        assert not stray.exists()
        assert unrelated.exists()  # other destinations untouched
        assert load_bundle(target).model is not None

    def test_sweep_helper_returns_removed(self, tmp_path):
        from repro.persistence import sweep_stale_tmp

        target = tmp_path / "x.bundle"
        stale = [
            tmp_path / "x.bundle.1.tmp",
            tmp_path / "x.bundle.2.tmp",
        ]
        for path in stale:
            path.write_bytes(b"stale")
        removed = sweep_stale_tmp(target)
        assert sorted(removed) == sorted(stale)
        assert sweep_stale_tmp(target) == []


class TestSelectPrunable:
    def test_drops_all_but_newest_k(self):
        from repro.persistence import select_prunable

        items = ["a", "b", "c", "d", "e"]
        assert select_prunable(items, 2) == ["a", "b", "c"]
        assert select_prunable(items, 5) == []
        assert select_prunable(items, 9) == []
        assert select_prunable(items, 0) == items
        assert select_prunable([], 3) == []

    def test_negative_keep_rejected(self):
        from repro.persistence import select_prunable

        with pytest.raises(PersistenceError, match="keep"):
            select_prunable(["a"], -1)


class TestAdaptiveOptimizerRecovery:
    def test_accumulators_restore_bit_identical_step(self, tmp_path):
        """Adam's per-weight moment accumulators survive the bundle
        round-trip and the next SGD step matches bit for bit."""
        import pickle

        generator, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "adaptive.bundle", pipeline, model, optimizer
        )
        restored = load_bundle(path)
        assert pickle.dumps(restored.optimizer.state_dict()) == (
            pickle.dumps(optimizer.state_dict())
        )

        next_chunk = generator.chunk(2)
        features = pipeline.transform_to_features(next_chunk)
        SGDTrainer(model, optimizer).step(
            features.matrix, features.labels
        )
        restored_features = restored.pipeline.transform_to_features(
            next_chunk
        )
        SGDTrainer(restored.model, restored.optimizer).step(
            restored_features.matrix, restored_features.labels
        )
        assert (
            restored.model.params_vector().tobytes()
            == model.params_vector().tobytes()
        )
        # a second step stays locked too (the accumulators keep pace)
        SGDTrainer(model, optimizer).step(
            features.matrix, features.labels
        )
        SGDTrainer(restored.model, restored.optimizer).step(
            restored_features.matrix, restored_features.labels
        )
        assert (
            restored.model.params_vector().tobytes()
            == model.params_vector().tobytes()
        )
