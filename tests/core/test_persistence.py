"""Tests for deployment-bundle persistence."""

import numpy as np
import pytest

from repro.datasets.taxi import TaxiStreamGenerator, make_taxi_pipeline
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.ml.models import LinearRegression, LinearSVM
from repro.ml.optim import Adam, RMSProp
from repro.ml.sgd import SGDTrainer
from repro.persistence import (
    DeploymentBundle,
    PersistenceError,
    load_bundle,
    save_bundle,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def fitted_url_parts():
    generator = URLStreamGenerator(
        num_chunks=3, rows_per_chunk=20, seed=4
    )
    pipeline = make_url_pipeline(hash_features=128)
    model = LinearSVM(num_features=128)
    optimizer = Adam(0.05)
    trainer = SGDTrainer(model, optimizer)
    for chunk in generator.stream():
        features = pipeline.update_transform_to_features(chunk)
        trainer.step(features.matrix, features.labels)
    return generator, pipeline, model, optimizer


class TestRoundtrip:
    def test_url_bundle_roundtrip(self, tmp_path):
        generator, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "deployment.bundle", pipeline, model, optimizer
        )
        restored = load_bundle(path)

        # The restored pipeline+model must serve identically.
        probe = generator.chunk(1)
        original = pipeline.transform_to_features(probe)
        resumed = restored.pipeline.transform_to_features(probe)
        assert np.allclose(
            original.matrix.toarray(), resumed.matrix.toarray()
        )
        assert np.allclose(
            model.predict(original.matrix),
            restored.model.predict(resumed.matrix),
        )

    def test_resumed_training_is_identical(self, tmp_path):
        """The §3.3 property end-to-end: save, restore, and the next
        SGD step matches the never-interrupted run exactly."""
        generator, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "d.bundle", pipeline, model, optimizer
        )
        restored = load_bundle(path)

        next_chunk = generator.chunk(2)
        features = pipeline.transform_to_features(next_chunk)
        SGDTrainer(model, optimizer).step(
            features.matrix, features.labels
        )
        restored_features = restored.pipeline.transform_to_features(
            next_chunk
        )
        SGDTrainer(restored.model, restored.optimizer).step(
            restored_features.matrix, restored_features.labels
        )
        assert restored.model.params_vector() == pytest.approx(
            model.params_vector()
        )

    def test_taxi_bundle_roundtrip(self, tmp_path):
        generator = TaxiStreamGenerator(
            num_chunks=2, rows_per_chunk=30, seed=1
        )
        pipeline = make_taxi_pipeline()
        model = LinearRegression(num_features=11)
        optimizer = RMSProp(0.05)
        features = pipeline.update_transform_to_features(
            generator.chunk(0)
        )
        SGDTrainer(model, optimizer).step(
            features.matrix, features.labels
        )
        path = save_bundle(
            tmp_path / "taxi.bundle", pipeline, model, optimizer
        )
        restored = load_bundle(path)
        probe = generator.chunk(1)
        assert np.allclose(
            pipeline.transform_to_features(probe).matrix,
            restored.pipeline.transform_to_features(probe).matrix,
        )


class TestIntegrity:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not_a_bundle"
        path.write_bytes(b"hello world")
        with pytest.raises(PersistenceError, match="magic"):
            load_bundle(path)

    def test_corruption_detected(self, tmp_path):
        __, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "d.bundle", pipeline, model, optimizer
        )
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError, match="checksum"):
            load_bundle(path)

    def test_truncation_detected(self, tmp_path):
        __, pipeline, model, optimizer = fitted_url_parts()
        path = save_bundle(
            tmp_path / "d.bundle", pipeline, model, optimizer
        )
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(PersistenceError):
            load_bundle(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            load_bundle(tmp_path / "nope.bundle")

    def test_bundle_type_validation(self):
        __, pipeline, model, optimizer = fitted_url_parts()
        with pytest.raises(PersistenceError):
            DeploymentBundle(
                pipeline="not a pipeline",
                model=model,
                optimizer=optimizer,
            )
        with pytest.raises(PersistenceError):
            DeploymentBundle(
                pipeline=pipeline, model=None, optimizer=optimizer
            )
