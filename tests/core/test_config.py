"""Unit tests for the deployment configuration dataclasses."""

import pytest

from repro.core.config import (
    ContinuousConfig,
    OnlineConfig,
    PeriodicalConfig,
    ScheduleConfig,
)
from repro.exceptions import ValidationError


class TestScheduleConfig:
    def test_defaults(self):
        config = ScheduleConfig()
        assert config.kind == "static"
        assert config.interval_chunks == 5

    def test_invalid_kind(self):
        with pytest.raises(ValidationError):
            ScheduleConfig(kind="cron")

    def test_invalid_interval(self):
        with pytest.raises(ValidationError):
            ScheduleConfig(interval_chunks=0)


class TestPeriodicalConfig:
    def test_defaults(self):
        config = PeriodicalConfig()
        assert config.warm_start
        assert config.batch_size is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retrain_every_chunks": 0},
            {"max_epoch_iterations": 0},
            {"batch_size": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValidationError):
            PeriodicalConfig(**kwargs)


class TestContinuousConfig:
    def test_defaults(self):
        config = ContinuousConfig()
        assert config.online_statistics
        assert config.online_update
        assert config.max_materialized_chunks is None

    def test_window_sampler_requires_size(self):
        with pytest.raises(ValidationError, match="window_size"):
            ContinuousConfig(sampler="window")
        ContinuousConfig(sampler="window", window_size=10)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_size_chunks": 0},
            {"sampler": "stratified"},
            {"max_materialized_chunks": -1},
            {"online_batch_rows": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValidationError):
            ContinuousConfig(**kwargs)

    def test_frozen(self):
        config = ContinuousConfig()
        with pytest.raises(AttributeError):
            config.sampler = "uniform"


class TestOnlineConfig:
    def test_defaults(self):
        assert not OnlineConfig().store_history
