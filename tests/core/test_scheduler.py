"""Unit tests for the proactive-training schedulers."""

import pytest

from repro.core.scheduler import DynamicScheduler, StaticScheduler
from repro.exceptions import SchedulingError


class TestStaticScheduler:
    def test_every_k_chunks(self):
        scheduler = StaticScheduler(interval_chunks=3)
        decisions = [
            scheduler.should_train(i, now=0.0) for i in range(9)
        ]
        assert decisions == [
            False, False, True,
            False, False, True,
            False, False, True,
        ]

    def test_interval_one_fires_always(self):
        scheduler = StaticScheduler(interval_chunks=1)
        assert all(
            scheduler.should_train(i, now=0.0) for i in range(5)
        )

    def test_negative_chunk_index_rejected(self):
        with pytest.raises(SchedulingError):
            StaticScheduler(2).should_train(-1, now=0.0)

    def test_invalid_interval(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            StaticScheduler(0)

    def test_records_are_noops(self):
        scheduler = StaticScheduler(2)
        scheduler.record_training(0.0, 1.0)
        scheduler.record_predictions(5, 0.1)


class TestDynamicScheduler:
    def test_initial_interval_respected(self):
        scheduler = DynamicScheduler(slack=2.0, initial_interval=5.0)
        assert not scheduler.should_train(0, now=0.0)
        assert not scheduler.should_train(1, now=4.9)
        assert scheduler.should_train(2, now=5.0)

    def test_formula_six(self):
        """T' = S * T * pr * pl after a training completes."""
        scheduler = DynamicScheduler(slack=2.0, initial_interval=1.0)
        scheduler.should_train(0, now=0.0)  # anchors the clock
        # 100 queries in 10 virtual seconds: pr = 10/s, pl = 0.1 s.
        scheduler.record_predictions(count=100, duration=10.0)
        # A training of duration 3 ends at t = 13.
        scheduler.record_training(started_at=10.0, duration=3.0)
        expected_interval = 2.0 * 3.0 * 10.0 * 0.1  # = 6
        assert scheduler.next_training_time == pytest.approx(
            13.0 + expected_interval
        )
        assert not scheduler.should_train(5, now=18.9)
        assert scheduler.should_train(6, now=19.0)

    def test_larger_slack_longer_interval(self):
        intervals = []
        for slack in (1.0, 4.0):
            scheduler = DynamicScheduler(slack=slack)
            scheduler.should_train(0, now=0.0)
            scheduler.record_predictions(10, 1.0)
            scheduler.record_training(started_at=1.0, duration=1.0)
            intervals.append(scheduler.next_training_time)
        assert intervals[1] > intervals[0]

    def test_no_prediction_traffic_falls_back(self):
        scheduler = DynamicScheduler(slack=2.0, initial_interval=2.0)
        scheduler.should_train(0, now=0.0)
        scheduler.record_training(started_at=0.0, duration=1.0)
        # pr*pl = 0 -> falls back to the initial interval.
        assert scheduler.next_training_time == pytest.approx(3.0)

    def test_rate_and_latency_accessors(self):
        scheduler = DynamicScheduler()
        assert scheduler.prediction_rate() == 0.0
        assert scheduler.prediction_latency() == 0.0
        scheduler.record_predictions(20, 4.0)
        assert scheduler.prediction_rate() == pytest.approx(5.0)
        assert scheduler.prediction_latency() == pytest.approx(0.2)

    def test_slack_below_one_rejected(self):
        with pytest.raises(SchedulingError, match="slack"):
            DynamicScheduler(slack=0.5)

    def test_invalid_records(self):
        scheduler = DynamicScheduler()
        with pytest.raises(SchedulingError):
            scheduler.record_training(0.0, -1.0)
        with pytest.raises(SchedulingError):
            scheduler.record_predictions(-1, 0.0)


class TestDynamicSchedulerEdgeCases:
    def test_clock_origin_anchors_on_first_query(self):
        """The first should_train call anchors the virtual clock, so a
        deployment starting at a non-zero cost baseline still waits a
        full initial interval."""
        scheduler = DynamicScheduler(slack=2.0, initial_interval=3.0)
        assert not scheduler.should_train(0, now=100.0)
        assert not scheduler.should_train(1, now=102.9)
        assert scheduler.should_train(2, now=103.0)

    def test_consecutive_trainings_reschedule(self):
        scheduler = DynamicScheduler(slack=1.0, initial_interval=1.0)
        scheduler.should_train(0, now=0.0)
        scheduler.record_predictions(10, 2.0)  # pr=5, pl=0.2
        scheduler.record_training(started_at=1.0, duration=2.0)
        first_next = scheduler.next_training_time
        scheduler.record_training(
            started_at=first_next, duration=4.0
        )
        # Longer training -> proportionally later next slot.
        assert scheduler.next_training_time > first_next + 4.0

    def test_zero_duration_training_uses_fallback(self):
        scheduler = DynamicScheduler(slack=2.0, initial_interval=7.0)
        scheduler.should_train(0, now=0.0)
        scheduler.record_predictions(10, 1.0)
        scheduler.record_training(started_at=5.0, duration=0.0)
        assert scheduler.next_training_time == pytest.approx(12.0)
