"""Unit tests for the proactive-training schedulers."""

import pytest

from repro.core.scheduler import DynamicScheduler, StaticScheduler
from repro.exceptions import SchedulingError


class TestStaticScheduler:
    def test_every_k_chunks(self):
        scheduler = StaticScheduler(interval_chunks=3)
        decisions = [
            scheduler.should_train(i, now=0.0) for i in range(9)
        ]
        assert decisions == [
            False, False, True,
            False, False, True,
            False, False, True,
        ]

    def test_interval_one_fires_always(self):
        scheduler = StaticScheduler(interval_chunks=1)
        assert all(
            scheduler.should_train(i, now=0.0) for i in range(5)
        )

    def test_negative_chunk_index_rejected(self):
        with pytest.raises(SchedulingError):
            StaticScheduler(2).should_train(-1, now=0.0)

    def test_invalid_interval(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            StaticScheduler(0)

    def test_records_are_noops(self):
        scheduler = StaticScheduler(2)
        scheduler.record_training(0.0, 1.0)
        scheduler.record_predictions(5, 0.1)


class TestDynamicScheduler:
    def test_initial_interval_respected(self):
        scheduler = DynamicScheduler(slack=2.0, initial_interval=5.0)
        assert not scheduler.should_train(0, now=0.0)
        assert not scheduler.should_train(1, now=4.9)
        assert scheduler.should_train(2, now=5.0)

    def test_formula_six(self):
        """T' = S * T * pr * pl after a training completes."""
        scheduler = DynamicScheduler(slack=2.0, initial_interval=1.0)
        scheduler.should_train(0, now=0.0)  # anchors the clock
        # 100 queries in 10 virtual seconds: pr = 10/s, pl = 0.1 s.
        scheduler.record_predictions(count=100, duration=10.0)
        # A training of duration 3 ends at t = 13.
        scheduler.record_training(started_at=10.0, duration=3.0)
        expected_interval = 2.0 * 3.0 * 10.0 * 0.1  # = 6
        assert scheduler.next_training_time == pytest.approx(
            13.0 + expected_interval
        )
        assert not scheduler.should_train(5, now=18.9)
        assert scheduler.should_train(6, now=19.0)

    def test_larger_slack_longer_interval(self):
        intervals = []
        for slack in (1.0, 4.0):
            scheduler = DynamicScheduler(slack=slack)
            scheduler.should_train(0, now=0.0)
            scheduler.record_predictions(10, 1.0)
            scheduler.record_training(started_at=1.0, duration=1.0)
            intervals.append(scheduler.next_training_time)
        assert intervals[1] > intervals[0]

    def test_no_prediction_traffic_falls_back(self):
        scheduler = DynamicScheduler(slack=2.0, initial_interval=2.0)
        scheduler.should_train(0, now=0.0)
        scheduler.record_training(started_at=0.0, duration=1.0)
        # pr*pl = 0 -> falls back to the initial interval.
        assert scheduler.next_training_time == pytest.approx(3.0)

    def test_rate_and_latency_accessors(self):
        scheduler = DynamicScheduler()
        assert scheduler.prediction_rate() == 0.0
        assert scheduler.prediction_latency() == 0.0
        scheduler.record_predictions(20, 4.0)
        assert scheduler.prediction_rate() == pytest.approx(5.0)
        assert scheduler.prediction_latency() == pytest.approx(0.2)

    def test_slack_below_one_rejected(self):
        with pytest.raises(SchedulingError, match="slack"):
            DynamicScheduler(slack=0.5)

    def test_invalid_records(self):
        scheduler = DynamicScheduler()
        with pytest.raises(SchedulingError):
            scheduler.record_training(0.0, -1.0)
        with pytest.raises(SchedulingError):
            scheduler.record_predictions(-1, 0.0)


class TestDynamicSchedulerEdgeCases:
    def test_clock_origin_anchors_on_first_query(self):
        """The first should_train call anchors the virtual clock, so a
        deployment starting at a non-zero cost baseline still waits a
        full initial interval."""
        scheduler = DynamicScheduler(slack=2.0, initial_interval=3.0)
        assert not scheduler.should_train(0, now=100.0)
        assert not scheduler.should_train(1, now=102.9)
        assert scheduler.should_train(2, now=103.0)

    def test_consecutive_trainings_reschedule(self):
        scheduler = DynamicScheduler(slack=1.0, initial_interval=1.0)
        scheduler.should_train(0, now=0.0)
        scheduler.record_predictions(10, 2.0)  # pr=5, pl=0.2
        scheduler.record_training(started_at=1.0, duration=2.0)
        first_next = scheduler.next_training_time
        scheduler.record_training(
            started_at=first_next, duration=4.0
        )
        # Longer training -> proportionally later next slot.
        assert scheduler.next_training_time > first_next + 4.0

    def test_zero_duration_training_uses_fallback(self):
        scheduler = DynamicScheduler(slack=2.0, initial_interval=7.0)
        scheduler.should_train(0, now=0.0)
        scheduler.record_predictions(10, 1.0)
        scheduler.record_training(started_at=5.0, duration=0.0)
        assert scheduler.next_training_time == pytest.approx(12.0)


class TestDynamicSchedulerBurstyLoad:
    """record_predictions / record_training interaction under uneven
    query traffic."""

    def test_rate_times_latency_is_scale_free(self):
        """pr·pl over the *same* totals is identically 1, so formula
        (6) reduces to interval = S·T — the paper's product is really
        a utilisation correction, not a traffic multiplier. Bursty
        and steady traffic with equal totals must schedule alike."""
        bursty = DynamicScheduler(slack=3.0, initial_interval=1.0)
        steady = DynamicScheduler(slack=3.0, initial_interval=1.0)
        bursty.should_train(0, now=0.0)
        steady.should_train(0, now=0.0)
        # Steady: one record. Bursty: a huge burst, silence, then a
        # trickle — identical totals (1000 queries, 10s serving time).
        steady.record_predictions(1000, 10.0)
        bursty.record_predictions(900, 1.0)
        bursty.record_predictions(0, 0.0)
        bursty.record_predictions(100, 9.0)
        for scheduler in (bursty, steady):
            scheduler.record_training(started_at=20.0, duration=4.0)
        assert bursty.next_training_time == pytest.approx(
            steady.next_training_time
        )
        # interval = S·T = 12, on top of the training end at t=24.
        assert bursty.next_training_time == pytest.approx(36.0)

    def test_burst_between_trainings_updates_averages(self):
        """Queries recorded after one training reshape the averages
        the next record_training sees."""
        scheduler = DynamicScheduler(slack=2.0, initial_interval=1.0)
        scheduler.should_train(0, now=0.0)
        scheduler.record_predictions(10, 2.0)  # pr=5, pl=0.2
        scheduler.record_training(started_at=2.0, duration=1.0)
        # S·T·pr·pl = 2·1·1 = 2 -> next at 3 + 2 = 5.
        assert scheduler.next_training_time == pytest.approx(5.0)
        # A burst arrives: 90 more queries in 1s of serving time.
        scheduler.record_predictions(90, 1.0)
        assert scheduler.prediction_rate() == pytest.approx(100 / 3)
        assert scheduler.prediction_latency() == pytest.approx(0.03)
        scheduler.record_training(started_at=5.0, duration=2.0)
        # pr·pl still 1: next = 7 + 2·2 = 11, burst or not.
        assert scheduler.next_training_time == pytest.approx(11.0)

    def test_no_training_means_interval_unchanged_by_load(self):
        """record_predictions alone never moves the schedule — only a
        completed training reschedules."""
        scheduler = DynamicScheduler(slack=2.0, initial_interval=4.0)
        scheduler.should_train(0, now=0.0)
        before = scheduler.next_training_time
        for __ in range(50):
            scheduler.record_predictions(1000, 0.5)
        assert scheduler.next_training_time == before
        assert scheduler.should_train(1, now=4.0)

    def test_zero_count_records_are_harmless(self):
        scheduler = DynamicScheduler(slack=2.0, initial_interval=1.0)
        scheduler.should_train(0, now=0.0)
        scheduler.record_predictions(0, 0.0)
        assert scheduler.prediction_rate() == 0.0
        assert scheduler.prediction_latency() == 0.0
        scheduler.record_training(started_at=1.0, duration=1.0)
        # Still no traffic -> the initial-interval fallback applies.
        assert scheduler.next_training_time == pytest.approx(3.0)

    def test_interleaving_matches_platform_call_order(self):
        """The platform records predictions (predict) and trainings
        (observe) in arbitrary interleavings; the scheduler state must
        depend only on the totals, not the call order."""
        a = DynamicScheduler(slack=2.0, initial_interval=1.0)
        b = DynamicScheduler(slack=2.0, initial_interval=1.0)
        a.should_train(0, now=0.0)
        b.should_train(0, now=0.0)
        a.record_predictions(30, 3.0)
        a.record_predictions(70, 7.0)
        b.record_predictions(70, 7.0)
        b.record_predictions(30, 3.0)
        a.record_training(started_at=12.0, duration=3.0)
        b.record_training(started_at=12.0, duration=3.0)
        assert a.next_training_time == pytest.approx(
            b.next_training_time
        )


class TestSchedulerStateRoundTrip:
    def drive(self, scheduler, start=0):
        """A deterministic load pattern; returns the decision trace."""
        decisions = []
        now = float(start)
        for chunk in range(start, start + 12):
            scheduler.record_predictions(20, 0.04 * (1 + chunk % 3))
            fire = scheduler.should_train(chunk, now)
            decisions.append(fire)
            if fire:
                scheduler.record_training(now, 0.5)
            now += 1.0
        return decisions

    def test_dynamic_round_trip_reproduces_decisions(self):
        """Restoring mid-stream continues the decision sequence the
        uninterrupted scheduler would have produced."""
        reference = DynamicScheduler(slack=2.5, initial_interval=2.0)
        first_half = self.drive(reference, start=0)
        state = reference.state_dict()
        second_half = self.drive(reference, start=12)

        resumed = DynamicScheduler(slack=2.5, initial_interval=2.0)
        resumed.load_state_dict(state)
        assert self.drive(resumed, start=12) == second_half
        assert resumed.state_dict() == reference.state_dict()
        assert first_half.count(True) >= 1  # the pattern exercised it

    def test_dynamic_state_contents(self):
        scheduler = DynamicScheduler(slack=2.0)
        scheduler.record_predictions(10, 0.5)
        state = scheduler.state_dict()
        assert state["prediction_count"] == 10
        assert state["prediction_duration"] == 0.5

    def test_static_round_trip_is_stateless(self):
        scheduler = StaticScheduler(interval_chunks=4)
        state = scheduler.state_dict()
        assert state == {}
        restored = StaticScheduler(interval_chunks=4)
        restored.load_state_dict(state)
        assert [
            restored.should_train(i, now=0.0) for i in range(8)
        ] == [
            scheduler.should_train(i, now=0.0) for i in range(8)
        ]
