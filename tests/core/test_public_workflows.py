"""End-to-end workflows a downstream user would actually run.

These are adoption-path tests: the README quickstart, swapping
optimizers mid-design, deploying with the one-hot encoder pipeline,
and driving a deployment from files on disk.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The exact shape of the README quickstart, miniaturised."""
        from repro import (
            Adam,
            ContinuousConfig,
            ContinuousDeployment,
            L2,
            LinearSVM,
            ScheduleConfig,
            URLStreamGenerator,
            make_url_pipeline,
        )

        generator = URLStreamGenerator(
            num_chunks=12, rows_per_chunk=20, seed=7
        )
        pipeline = make_url_pipeline(hash_features=128)
        model = LinearSVM(num_features=128, regularizer=L2(1e-3))
        deployment = ContinuousDeployment(
            pipeline,
            model,
            Adam(0.05),
            config=ContinuousConfig(
                sample_size_chunks=4,
                schedule=ScheduleConfig(
                    kind="static", interval_chunks=5
                ),
                sampler="time",
                half_life=6,
            ),
            metric="classification",
            seed=7,
        )
        deployment.initial_fit(
            generator.initial_data(100), max_iterations=60
        )
        result = deployment.run(generator.stream())
        assert 0.0 <= result.final_error <= 1.0
        assert result.total_cost > 0
        assert result.counters["proactive_trainings"] == 2


class TestOneHotPipelineDeployment:
    def test_categorical_pipeline_end_to_end(self):
        """A pipeline ending in the one-hot encoder deploys like any
        other terminal component."""
        from repro import (
            Adam,
            ContinuousConfig,
            ContinuousDeployment,
            LinearRegression,
            ScheduleConfig,
            Table,
        )
        from repro.pipeline.components.onehot import OneHotEncoder
        from repro.pipeline.pipeline import Pipeline

        categories = np.array(["a", "b", "c"], dtype=object)
        effects = {"a": 1.0, "b": 3.0, "c": -2.0}

        def make_stream(num_chunks=20, rows=15, seed=0):
            rng = np.random.default_rng(seed)
            for __ in range(num_chunks):
                chosen = rng.choice(categories, size=rows)
                y = np.array([effects[c] for c in chosen])
                yield Table({"kind": chosen, "y": y})

        encoder = OneHotEncoder(
            categorical_columns=["kind"],
            label_column="y",
            max_categories=3,
            name="encoder",
        )
        model = LinearRegression(num_features=3)
        deployment = ContinuousDeployment(
            Pipeline([encoder]),
            model,
            Adam(0.1),
            config=ContinuousConfig(
                sample_size_chunks=5,
                schedule=ScheduleConfig(interval_chunks=2),
                sampler="uniform",
            ),
            metric="regression",
            seed=0,
        )
        deployment.initial_fit(
            list(make_stream(num_chunks=1, rows=200, seed=9)),
            max_iterations=400,
            tolerance=1e-8,
        )
        result = deployment.run(make_stream())
        # The per-category effects are perfectly learnable.
        assert result.final_error < 0.3
        # Vocabulary order is first-seen (stream-dependent).
        assert sorted(encoder.vocabulary("kind")) == ["a", "b", "c"]


class TestFileDrivenDeployment:
    def test_deploy_from_svmlight_file(self, tmp_path):
        """Generate → write to disk → stream chunks from the file into
        a deployment: the io layer is a drop-in stream source."""
        from repro import (
            Adam,
            L2,
            LinearSVM,
            OnlineDeployment,
            URLStreamGenerator,
            make_url_pipeline,
        )
        from repro.io import iter_svmlight_chunks

        generator = URLStreamGenerator(
            num_chunks=6, rows_per_chunk=10, seed=3
        )
        lines = [
            line
            for chunk in generator.stream()
            for line in chunk["line"]
        ]
        path = tmp_path / "stream.svm"
        path.write_text("\n".join(lines) + "\n")

        pipeline = make_url_pipeline(hash_features=64)
        model = LinearSVM(num_features=64, regularizer=L2(1e-3))
        deployment = OnlineDeployment(
            pipeline, model, Adam(0.05), metric="classification"
        )
        deployment.initial_fit(
            generator.initial_data(80), max_iterations=50
        )
        result = deployment.run(
            iter_svmlight_chunks(path, rows_per_chunk=10)
        )
        assert result.chunks_processed == 6


class TestOptimizerSwap:
    @pytest.mark.parametrize(
        "name", ["adam", "rmsprop", "adadelta", "momentum", "adagrad"]
    )
    def test_any_optimizer_drives_a_deployment(self, name):
        from repro import OnlineDeployment, Table
        from repro.ml.models import LinearRegression
        from repro.ml.optim import make_optimizer
        from repro.pipeline.components.assembler import FeatureAssembler
        from repro.pipeline.pipeline import Pipeline

        rng = np.random.default_rng(0)

        def make_stream():
            for __ in range(5):
                x = rng.standard_normal(10)
                yield Table({"x": x, "y": 2.0 * x})

        pipeline = Pipeline(
            [FeatureAssembler(["x"], "y", name="assembler")]
        )
        deployment = OnlineDeployment(
            pipeline,
            LinearRegression(num_features=1),
            make_optimizer(name),
            metric="regression",
        )
        x = rng.standard_normal(30)
        deployment.initial_fit(
            [Table({"x": x, "y": 2.0 * x})], max_iterations=20
        )
        result = deployment.run(make_stream())
        assert result.chunks_processed == 5
        assert np.isfinite(result.final_error)
