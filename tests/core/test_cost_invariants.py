"""Cross-approach cost invariants.

The deterministic cost model makes deployment cost a pure function of
the work performed, so these invariants must hold exactly — they are
the foundations the Figure 4/7 claims rest on.
"""

import numpy as np
import pytest

from repro.core.config import (
    ContinuousConfig,
    PeriodicalConfig,
    ScheduleConfig,
)
from repro.core.deployment import (
    ContinuousDeployment,
    OnlineDeployment,
    PeriodicalDeployment,
)
from repro.data.table import Table
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def make_parts():
    pipeline = Pipeline(
        [
            StandardScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )
    return pipeline, LinearRegression(num_features=1), Adam(0.05)


def stream(num_chunks=12, rows=8, seed=0):
    rng = np.random.default_rng(seed)
    for __ in range(num_chunks):
        x = rng.standard_normal(rows)
        yield Table({"x": x, "y": 2.0 * x})


def initial():
    rng = np.random.default_rng(1)
    x = rng.standard_normal(40)
    return [Table({"x": x, "y": 2.0 * x})]


def run(deployment, num_chunks=12):
    deployment.initial_fit(initial(), max_iterations=30)
    return deployment.run(stream(num_chunks=num_chunks))


ALL_BUILDERS = {
    "online": lambda p, m, o: OnlineDeployment(
        p, m, o, metric="regression"
    ),
    "periodical": lambda p, m, o: PeriodicalDeployment(
        p, m, o,
        config=PeriodicalConfig(
            retrain_every_chunks=5, max_epoch_iterations=20
        ),
        metric="regression", seed=0,
    ),
    "continuous": lambda p, m, o: ContinuousDeployment(
        p, m, o,
        config=ContinuousConfig(
            sample_size_chunks=3,
            schedule=ScheduleConfig(interval_chunks=4),
        ),
        metric="regression", seed=0,
    ),
}


class TestCostInvariants:
    @pytest.mark.parametrize("name", list(ALL_BUILDERS))
    def test_cost_history_non_decreasing(self, name):
        deployment = ALL_BUILDERS[name](*make_parts())
        result = run(deployment)
        deltas = np.diff(result.cost_history)
        assert np.all(deltas >= 0)

    @pytest.mark.parametrize("name", list(ALL_BUILDERS))
    def test_cost_matches_breakdown(self, name):
        deployment = ALL_BUILDERS[name](*make_parts())
        result = run(deployment)
        assert result.cost_breakdown.total == pytest.approx(
            result.total_cost
        )

    @pytest.mark.parametrize("name", list(ALL_BUILDERS))
    def test_cost_grows_with_stream_length(self, name):
        short = run(ALL_BUILDERS[name](*make_parts()), num_chunks=6)
        long = run(ALL_BUILDERS[name](*make_parts()), num_chunks=12)
        assert long.total_cost > short.total_cost

    def test_proactive_training_adds_cost_over_online(self):
        """Continuous = online + proactive work; its cost must strictly
        exceed online's on identical streams."""
        online = run(ALL_BUILDERS["online"](*make_parts()))
        continuous = run(ALL_BUILDERS["continuous"](*make_parts()))
        assert continuous.total_cost > online.total_cost

    def test_materialization_never_raises_cost(self):
        """More materialization budget can only lower deployment cost
        (fewer re-materializations), never raise it."""
        costs = []
        for budget in (0, 2, None):
            pipeline, model, optimizer = make_parts()
            deployment = ContinuousDeployment(
                pipeline, model, optimizer,
                config=ContinuousConfig(
                    sample_size_chunks=4,
                    schedule=ScheduleConfig(interval_chunks=2),
                    max_materialized_chunks=budget,
                ),
                metric="regression", seed=0,
            )
            costs.append(run(deployment).total_cost)
        assert costs[0] >= costs[1] >= costs[2]

    def test_disk_io_zero_when_fully_materialized(self):
        deployment = ALL_BUILDERS["continuous"](*make_parts())
        result = run(deployment)
        assert result.cost_breakdown.by_category.get(
            "disk_io", 0.0
        ) == 0.0

    def test_disk_io_positive_when_unmaterialized(self):
        pipeline, model, optimizer = make_parts()
        deployment = ContinuousDeployment(
            pipeline, model, optimizer,
            config=ContinuousConfig(
                sample_size_chunks=4,
                schedule=ScheduleConfig(interval_chunks=2),
                max_materialized_chunks=0,
            ),
            metric="regression", seed=0,
        )
        result = run(deployment)
        assert result.cost_breakdown.by_category["disk_io"] > 0
