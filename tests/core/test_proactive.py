"""Unit tests for the proactive trainer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.proactive import ProactiveTrainer, combine_chunks
from repro.data.chunk import FeatureChunk
from repro.data.manager import SampledChunk
from repro.exceptions import ValidationError
from repro.execution.engine import LocalExecutionEngine
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam
from repro.ml.sgd import SGDTrainer


def dense_sample(timestamp, rows=4, dim=2, seed=0, materialized=True):
    rng = np.random.default_rng(seed + timestamp)
    chunk = FeatureChunk(
        timestamp=timestamp,
        raw_reference=timestamp,
        features=rng.standard_normal((rows, dim)),
        labels=rng.standard_normal(rows),
    )
    return SampledChunk(chunk=chunk, was_materialized=materialized)


def sparse_sample(timestamp, materialized=True):
    chunk = FeatureChunk(
        timestamp=timestamp,
        raw_reference=timestamp,
        features=sp.csr_matrix(np.eye(3)),
        labels=np.ones(3),
    )
    return SampledChunk(chunk=chunk, was_materialized=materialized)


class TestCombineChunks:
    def test_dense_union(self):
        combined = combine_chunks([dense_sample(0), dense_sample(1)])
        assert combined.num_rows == 8
        assert combined.num_features == 2

    def test_sparse_union(self):
        combined = combine_chunks([sparse_sample(0), sparse_sample(1)])
        assert sp.issparse(combined.matrix)
        assert combined.num_rows == 6

    def test_mixed_rejected(self):
        with pytest.raises(ValidationError):
            combine_chunks([dense_sample(0, dim=3), sparse_sample(1)])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            combine_chunks([])


class TestProactiveTrainer:
    def _trainer(self):
        model = LinearRegression(num_features=2)
        engine = LocalExecutionEngine()
        return (
            ProactiveTrainer(SGDTrainer(model, Adam(0.05)), engine),
            model,
            engine,
        )

    def test_run_is_one_sgd_iteration(self):
        proactive, model, __ = self._trainer()
        outcome = proactive.run([dense_sample(0), dense_sample(1)])
        assert model.updates_applied == 1
        assert proactive.instances_run == 1
        assert outcome.rows == 8
        assert outcome.chunks == 2
        assert outcome.duration > 0

    def test_materialized_counting(self):
        proactive, __, __ = self._trainer()
        outcome = proactive.run(
            [
                dense_sample(0, materialized=True),
                dense_sample(1, materialized=False),
                dense_sample(2, materialized=True),
            ]
        )
        assert outcome.chunks_materialized == 2

    def test_objective_reported(self):
        proactive, __, __ = self._trainer()
        outcome = proactive.run([dense_sample(0)])
        assert outcome.objective >= 0.0

    def test_cost_charged_to_training(self):
        proactive, __, engine = self._trainer()
        proactive.run([dense_sample(0)])
        assert engine.tracker.category("training") > 0

    def test_sequential_instances_accumulate(self):
        proactive, model, __ = self._trainer()
        proactive.run([dense_sample(0)])
        proactive.run([dense_sample(1)])
        assert model.updates_applied == 2
        assert proactive.instances_run == 2


class TestEmptySample:
    def test_zero_row_sample_skips_the_step(self):
        """All sampled chunks empty (every row anomalous): no gradient
        exists, so the trainer must skip rather than crash."""
        proactive, model, __ = (
            TestProactiveTrainer()._trainer()
        )
        empty = SampledChunk(
            chunk=FeatureChunk(
                timestamp=0,
                raw_reference=0,
                features=np.empty((0, 2)),
                labels=np.empty(0),
            ),
            was_materialized=True,
        )
        outcome = proactive.run([empty, empty])
        assert outcome.rows == 0
        assert outcome.objective == 0.0
        assert model.updates_applied == 0
        assert proactive.instances_run == 1
