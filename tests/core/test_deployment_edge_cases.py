"""Edge-case and determinism tests for the deployment approaches."""

import numpy as np
import pytest

from repro.core.config import ContinuousConfig, ScheduleConfig
from repro.core.deployment import ContinuousDeployment, OnlineDeployment
from repro.data.table import Table
from repro.execution.cost import CostModel
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam
from repro.pipeline.components.anomaly import RangeFilter
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def make_parts(with_filter=False):
    components = []
    if with_filter:
        components.append(
            RangeFilter("x", minimum=-2.0, maximum=2.0, name="filter")
        )
    components.extend(
        [
            StandardScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )
    return (
        Pipeline(components),
        LinearRegression(num_features=1),
        Adam(0.05),
    )


def stream(num_chunks=10, rows=8, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    for __ in range(num_chunks):
        x = rng.standard_normal(rows) * scale
        yield Table({"x": x, "y": 2.0 * x})


def initial(seed=5):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(40)
    return [Table({"x": x, "y": 2.0 * x})]


class TestFilteredChunks:
    def test_fully_filtered_chunk_carries_error_forward(self):
        """A chunk whose every row is anomalous produces no
        prequential measurement but keeps histories aligned."""
        pipeline, model, optimizer = make_parts(with_filter=True)
        deployment = OnlineDeployment(
            pipeline, model, optimizer, metric="regression"
        )
        deployment.initial_fit(initial(), max_iterations=50)

        def mixed_stream():
            yield from stream(num_chunks=2, seed=1)
            # Every |x| > 2: the filter drops the whole chunk.
            yield Table({"x": [5.0, -6.0], "y": [10.0, -12.0]})
            yield from stream(num_chunks=2, seed=2)

        result = deployment.run(mixed_stream())
        assert result.chunks_processed == 5
        # The filtered chunk repeated the previous cumulative value.
        assert result.error_history[2] == result.error_history[1]

    def test_all_chunks_filtered_no_crash(self):
        pipeline, model, optimizer = make_parts(with_filter=True)
        deployment = OnlineDeployment(
            pipeline, model, optimizer, metric="regression"
        )
        deployment.initial_fit(initial(), max_iterations=20)
        result = deployment.run(stream(num_chunks=3, scale=100.0))
        assert result.chunks_processed == 3
        assert all(e == 0.0 for e in result.error_history)
        assert result.counters["online_updates"] == 0


class TestDeterminism:
    def _run(self):
        pipeline, model, optimizer = make_parts()
        deployment = ContinuousDeployment(
            pipeline, model, optimizer,
            config=ContinuousConfig(
                sample_size_chunks=3,
                schedule=ScheduleConfig(interval_chunks=3),
            ),
            metric="regression",
            seed=11,
        )
        deployment.initial_fit(initial(), max_iterations=40, seed=11)
        return deployment.run(stream(num_chunks=9, seed=3))

    def test_same_seed_identical_histories(self):
        first = self._run()
        second = self._run()
        assert first.error_history == second.error_history
        assert first.cost_history == second.cost_history
        assert first.counters == second.counters


class TestCostModelInjection:
    def test_custom_prices_scale_costs(self):
        def run(cost_model):
            pipeline, model, optimizer = make_parts()
            deployment = OnlineDeployment(
                pipeline, model, optimizer,
                metric="regression", cost_model=cost_model,
            )
            deployment.initial_fit(initial(), max_iterations=20)
            return deployment.run(stream()).total_cost

        cheap = run(CostModel())
        pricey = run(
            CostModel(transform_cost_per_value=1e-3)
        )
        assert pricey > cheap * 10


class TestProactiveOnlyLearning:
    def test_learns_without_online_updates(self):
        """With online updates off, proactive training alone must
        still drive the error down (the platform's other half)."""
        pipeline, model, optimizer = make_parts()
        deployment = ContinuousDeployment(
            pipeline, model, optimizer,
            config=ContinuousConfig(
                sample_size_chunks=5,
                schedule=ScheduleConfig(interval_chunks=1),
                online_update=False,
            ),
            metric="regression",
            seed=0,
        )
        # Deliberately weak initial fit: proactive must do the work.
        deployment.initial_fit(initial(), max_iterations=2,
                               tolerance=0.0)
        result = deployment.run(stream(num_chunks=40, seed=7))
        assert result.counters["proactive_trainings"] == 40
        assert result.error_history[-1] < result.error_history[3]


class TestDynamicScheduleInDeployment:
    def test_dynamic_scheduler_runs_trainings(self):
        pipeline, model, optimizer = make_parts()
        deployment = ContinuousDeployment(
            pipeline, model, optimizer,
            config=ContinuousConfig(
                sample_size_chunks=2,
                schedule=ScheduleConfig(
                    kind="dynamic", slack=1.5, initial_interval=1e-6
                ),
            ),
            metric="regression",
            seed=0,
        )
        deployment.initial_fit(initial(), max_iterations=20)
        result = deployment.run(stream(num_chunks=12))
        assert result.counters["proactive_trainings"] >= 1
        scheduler = deployment.platform.scheduler
        assert scheduler.prediction_rate() > 0
        assert scheduler.prediction_latency() > 0


class TestEmptyStream:
    def test_empty_stream_yields_empty_result(self):
        pipeline, model, optimizer = make_parts()
        deployment = OnlineDeployment(
            pipeline, model, optimizer, metric="regression"
        )
        deployment.initial_fit(initial(), max_iterations=20)
        result = deployment.run(iter([]))
        assert result.chunks_processed == 0
        assert result.error_history == []
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            result.final_error
