"""Integration tests for the three deployment approaches on a small
shared synthetic problem."""

import numpy as np
import pytest

from repro.core.config import (
    ContinuousConfig,
    PeriodicalConfig,
    ScheduleConfig,
)
from repro.core.deployment import (
    ContinuousDeployment,
    OnlineDeployment,
    PeriodicalDeployment,
)
from repro.data.table import Table
from repro.exceptions import ValidationError
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)

NUM_CHUNKS = 12
ROWS = 10


def make_stream(seed=0):
    rng = np.random.default_rng(seed)
    for __ in range(NUM_CHUNKS):
        x = rng.standard_normal(ROWS)
        yield Table({"x": x, "y": 3.0 * x + 0.5})


def initial_tables(seed=99):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(60)
    return [Table({"x": x, "y": 3.0 * x + 0.5})]


def make_parts():
    pipeline = Pipeline(
        [
            StandardScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )
    return pipeline, LinearRegression(num_features=1), Adam(0.05)


def run(deployment):
    deployment.initial_fit(
        initial_tables(), max_iterations=300, tolerance=1e-7
    )
    return deployment.run(make_stream())


class TestOnlineDeployment:
    def test_runs_and_reports(self):
        pipeline, model, optimizer = make_parts()
        result = run(
            OnlineDeployment(
                pipeline, model, optimizer, metric="regression"
            )
        )
        assert result.approach == "online"
        assert result.chunks_processed == NUM_CHUNKS
        assert len(result.cost_history) == NUM_CHUNKS
        assert result.counters["online_updates"] == NUM_CHUNKS
        assert result.final_error < 1.0
        assert result.cost_breakdown.total == pytest.approx(
            result.total_cost
        )

    def test_cost_history_monotone(self):
        pipeline, model, optimizer = make_parts()
        result = run(
            OnlineDeployment(
                pipeline, model, optimizer, metric="regression"
            )
        )
        assert np.all(np.diff(result.cost_history) >= 0)

    def test_per_row_updates(self):
        pipeline, model, optimizer = make_parts()
        deployment = OnlineDeployment(
            pipeline, model, optimizer,
            metric="regression", online_batch_rows=1,
        )
        run(deployment)
        # Initial fit iterations + NUM_CHUNKS * ROWS online steps.
        assert model.updates_applied >= NUM_CHUNKS * ROWS


class TestPeriodicalDeployment:
    def test_retrains_on_schedule(self):
        pipeline, model, optimizer = make_parts()
        deployment = PeriodicalDeployment(
            pipeline,
            model,
            optimizer,
            config=PeriodicalConfig(
                retrain_every_chunks=4, max_epoch_iterations=10
            ),
            metric="regression",
            seed=0,
        )
        result = run(deployment)
        assert result.counters["retrainings"] == NUM_CHUNKS // 4
        assert result.counters["retrain_iterations"] > 0

    def test_cost_jumps_at_retraining(self):
        pipeline, model, optimizer = make_parts()
        deployment = PeriodicalDeployment(
            pipeline,
            model,
            optimizer,
            config=PeriodicalConfig(
                retrain_every_chunks=6, max_epoch_iterations=50
            ),
            metric="regression",
            seed=0,
        )
        result = run(deployment)
        deltas = np.diff([0.0] + result.cost_history)
        # The retraining chunk (index 5) must cost much more than an
        # ordinary chunk (index 4).
        assert deltas[5] > deltas[4] * 3

    def test_history_accumulates(self):
        pipeline, model, optimizer = make_parts()
        deployment = PeriodicalDeployment(
            pipeline, model, optimizer, metric="regression", seed=0
        )
        run(deployment)
        # 1 initial table + NUM_CHUNKS deployment chunks.
        assert deployment.data_manager.storage.num_raw == 1 + NUM_CHUNKS


class TestContinuousDeployment:
    def _config(self, **overrides):
        defaults = dict(
            sample_size_chunks=3,
            schedule=ScheduleConfig(kind="static", interval_chunks=4),
        )
        defaults.update(overrides)
        return ContinuousConfig(**defaults)

    def test_proactive_training_counted(self):
        pipeline, model, optimizer = make_parts()
        deployment = ContinuousDeployment(
            pipeline, model, optimizer,
            config=self._config(), metric="regression", seed=0,
        )
        result = run(deployment)
        assert result.counters["proactive_trainings"] == NUM_CHUNKS // 4
        assert result.counters["chunks_sampled"] > 0

    def test_fully_materialized_run_rematerializes_nothing(self):
        pipeline, model, optimizer = make_parts()
        deployment = ContinuousDeployment(
            pipeline, model, optimizer,
            config=self._config(), metric="regression", seed=0,
        )
        result = run(deployment)
        assert result.counters["chunks_rematerialized"] == 0
        assert deployment.materialization_utilization() == 1.0

    def test_bounded_storage_rematerializes(self):
        pipeline, model, optimizer = make_parts()
        deployment = ContinuousDeployment(
            pipeline, model, optimizer,
            config=self._config(max_materialized_chunks=2),
            metric="regression",
            seed=0,
        )
        result = run(deployment)
        assert result.counters["chunks_rematerialized"] > 0
        assert 0.0 < deployment.materialization_utilization() < 1.0

    def test_costs_more_than_online_less_than_periodical(self):
        results = {}
        for name in ("online", "periodical", "continuous"):
            pipeline, model, optimizer = make_parts()
            if name == "online":
                deployment = OnlineDeployment(
                    pipeline, model, optimizer, metric="regression"
                )
            elif name == "periodical":
                deployment = PeriodicalDeployment(
                    pipeline, model, optimizer,
                    config=PeriodicalConfig(
                        retrain_every_chunks=4,
                        max_epoch_iterations=100,
                    ),
                    metric="regression",
                    seed=0,
                )
            else:
                deployment = ContinuousDeployment(
                    pipeline, model, optimizer,
                    config=self._config(), metric="regression", seed=0,
                )
            results[name] = run(deployment)
        assert (
            results["online"].total_cost
            <= results["continuous"].total_cost
            < results["periodical"].total_cost
        )


class TestDeploymentResult:
    def test_empty_result_raises(self):
        from repro.core.deployment.base import DeploymentResult

        result = DeploymentResult(approach="x")
        with pytest.raises(ValidationError):
            result.final_error
        with pytest.raises(ValidationError):
            result.average_error
        with pytest.raises(ValidationError):
            result.total_cost

    def test_invalid_metric_rejected(self):
        pipeline, model, optimizer = make_parts()
        with pytest.raises(ValidationError):
            OnlineDeployment(
                pipeline, model, optimizer, metric="f1"
            )
