"""Unit tests for the pipeline manager."""

import numpy as np
import pytest

from repro.core.pipeline_manager import PipelineManager
from repro.data.manager import DataManager
from repro.data.storage import ChunkStorage
from repro.data.table import Table
from repro.exceptions import PipelineError
from repro.execution.cost import CostModel
from repro.execution.engine import LocalExecutionEngine
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def make_manager(max_materialized=None, seed=0):
    pipeline = Pipeline(
        [
            StandardScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )
    model = LinearRegression(num_features=1)
    engine = LocalExecutionEngine(
        CostModel(
            transform_cost_per_value=1.0,
            statistics_cost_per_value=1.0,
            disk_read_cost_per_value=1.0,
        )
    )
    data_manager = DataManager(
        storage=ChunkStorage(max_materialized=max_materialized),
        seed=seed,
    )
    return PipelineManager(
        pipeline=pipeline,
        model=model,
        optimizer=Adam(0.05),
        data_manager=data_manager,
        engine=engine,
    )


def table_for(rng, rows=8):
    x = rng.standard_normal(rows)
    return Table({"x": x, "y": 2.0 * x + 1.0})


class TestInitialFit:
    def test_trains_and_fits_statistics(self, rng):
        manager = make_manager()
        result = manager.initial_fit(
            [table_for(rng, 50)], max_iterations=2000, tolerance=1e-8
        )
        assert result.converged
        assert manager.model.weights[0] != 0.0

    def test_store_makes_history_available(self, rng):
        manager = make_manager()
        manager.initial_fit(
            [table_for(rng), table_for(rng)],
            max_iterations=5,
            tolerance=0.0,
            store=True,
        )
        assert manager.data_manager.num_chunks == 2

    def test_empty_rejected(self):
        with pytest.raises(PipelineError):
            make_manager().initial_fit([])


class TestTrainingChunks:
    def test_process_stores_raw_and_features(self, rng):
        manager = make_manager()
        raw, features = manager.process_training_chunk(table_for(rng))
        assert manager.data_manager.storage.has_raw(raw.timestamp)
        assert manager.data_manager.storage.is_materialized(
            raw.timestamp
        )
        assert features.num_rows == 8

    def test_online_statistics_toggle(self, rng):
        manager = make_manager()
        manager.process_training_chunk(
            table_for(rng), online_statistics=False
        )
        assert manager.engine.tracker.category("statistics") == 0.0

    def test_store_toggle(self, rng):
        manager = make_manager()
        raw, __ = manager.process_training_chunk(
            table_for(rng), store=False
        )
        assert not manager.data_manager.storage.has_features_entry(
            raw.timestamp
        )


class TestOnlineStep:
    def test_whole_chunk_is_one_update(self, rng):
        manager = make_manager()
        __, features = manager.process_training_chunk(table_for(rng))
        manager.online_step(features)
        assert manager.model.updates_applied == 1

    def test_per_row_mode(self, rng):
        manager = make_manager()
        __, features = manager.process_training_chunk(table_for(rng))
        manager.online_step(features, batch_rows=1)
        assert manager.model.updates_applied == features.num_rows

    def test_slices_of_three(self, rng):
        manager = make_manager()
        __, features = manager.process_training_chunk(
            table_for(rng, rows=8)
        )
        manager.online_step(features, batch_rows=3)
        assert manager.model.updates_applied == 3  # 3 + 3 + 2

    def test_invalid_batch_rows(self, rng):
        manager = make_manager()
        __, features = manager.process_training_chunk(table_for(rng))
        with pytest.raises(PipelineError):
            manager.online_step(features, batch_rows=0)


class TestServing:
    def test_answer_queries(self, rng):
        manager = make_manager()
        manager.process_training_chunk(table_for(rng))
        predictions, labels = manager.answer_queries(table_for(rng))
        assert predictions.shape == labels.shape
        assert manager.engine.tracker.category("prediction") > 0

    def test_serving_does_not_touch_statistics(self, rng):
        manager = make_manager()
        manager.process_training_chunk(table_for(rng))
        stats_before = manager.engine.tracker.category("statistics")
        manager.answer_queries(table_for(rng))
        assert (
            manager.engine.tracker.category("statistics")
            == stats_before
        )


class TestSampleForTraining:
    def test_materialized_sample_free_of_disk_io(self, rng):
        manager = make_manager()
        for __ in range(5):
            manager.process_training_chunk(table_for(rng))
        samples = manager.sample_for_training(3)
        assert len(samples) == 3
        assert manager.engine.tracker.category("disk_io") == 0.0

    def test_rematerialization_charges_disk_and_transform(self, rng):
        manager = make_manager(max_materialized=0)
        for __ in range(4):
            manager.process_training_chunk(table_for(rng))
        before = manager.engine.tracker.category("preprocessing")
        samples = manager.sample_for_training(2)
        assert all(not s.was_materialized for s in samples)
        assert manager.engine.tracker.category("disk_io") > 0
        assert (
            manager.engine.tracker.category("preprocessing") > before
        )

    def test_recompute_statistics_flag(self, rng):
        manager = make_manager(max_materialized=0)
        for __ in range(3):
            manager.process_training_chunk(
                table_for(rng), online_statistics=False
            )
        manager.sample_for_training(2, recompute_statistics=True)
        labels = manager.engine.tracker.breakdown().by_label
        assert any(key.startswith("recompute:") for key in labels)


class TestFullRetrain:
    def test_warm_retrain_reads_all_history(self, rng):
        manager = make_manager()
        for __ in range(4):
            manager.process_training_chunk(table_for(rng))
        scaler = manager.pipeline.component("scaler")
        mean_before = scaler.mean().copy()
        result = manager.full_retrain(
            max_iterations=20, tolerance=0.0, warm_start=True
        )
        assert result.iterations == 20
        # Warm start: statistics were reused, not recomputed.
        assert scaler.mean() == pytest.approx(mean_before)
        labels = manager.engine.tracker.breakdown().by_label
        assert labels["retrain_read"] > 0

    def test_cold_retrain_resets_everything(self, rng):
        manager = make_manager()
        for __ in range(4):
            manager.process_training_chunk(table_for(rng))
        manager.online_step(
            manager.engine.transform_only(
                manager.pipeline, table_for(rng)
            )
        )
        updates_before = manager.model.updates_applied
        manager.full_retrain(
            max_iterations=10, tolerance=0.0, warm_start=False
        )
        # Model was reset; only retrain updates remain.
        assert manager.model.updates_applied == 10
        assert updates_before >= 1

    def test_retrain_without_history_rejected(self):
        with pytest.raises(PipelineError, match="no stored history"):
            make_manager().full_retrain()
