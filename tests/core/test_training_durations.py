"""Tests for per-training-event duration tracking (§5.5 staleness)."""

import numpy as np
import pytest

from repro.core.config import (
    ContinuousConfig,
    PeriodicalConfig,
    ScheduleConfig,
)
from repro.core.deployment import (
    ContinuousDeployment,
    OnlineDeployment,
    PeriodicalDeployment,
)
from repro.core.deployment.base import DeploymentResult
from repro.data.table import Table
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def make_parts():
    pipeline = Pipeline(
        [
            StandardScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )
    return pipeline, LinearRegression(num_features=1), Adam(0.05)


def stream(num_chunks=12, rows=10, seed=0):
    rng = np.random.default_rng(seed)
    for __ in range(num_chunks):
        x = rng.standard_normal(rows)
        yield Table({"x": x, "y": 3.0 * x})


def initial():
    rng = np.random.default_rng(9)
    x = rng.standard_normal(50)
    return [Table({"x": x, "y": 3.0 * x})]


class TestTrainingDurations:
    def test_continuous_records_proactive_durations(self):
        pipeline, model, optimizer = make_parts()
        deployment = ContinuousDeployment(
            pipeline, model, optimizer,
            config=ContinuousConfig(
                sample_size_chunks=3,
                schedule=ScheduleConfig(interval_chunks=4),
            ),
            metric="regression", seed=0,
        )
        deployment.initial_fit(initial(), max_iterations=50)
        result = deployment.run(stream())
        assert len(result.training_durations) == 3  # 12 / 4
        assert all(d > 0 for d in result.training_durations)
        assert result.average_training_duration > 0
        assert (
            result.max_training_duration
            >= result.average_training_duration
        )

    def test_periodical_records_retrain_durations(self):
        pipeline, model, optimizer = make_parts()
        deployment = PeriodicalDeployment(
            pipeline, model, optimizer,
            config=PeriodicalConfig(
                retrain_every_chunks=6, max_epoch_iterations=30
            ),
            metric="regression", seed=0,
        )
        deployment.initial_fit(initial(), max_iterations=50)
        result = deployment.run(stream())
        assert len(result.training_durations) == 2
        assert all(d > 0 for d in result.training_durations)

    def test_online_has_no_training_events(self):
        pipeline, model, optimizer = make_parts()
        deployment = OnlineDeployment(
            pipeline, model, optimizer, metric="regression"
        )
        deployment.initial_fit(initial(), max_iterations=50)
        result = deployment.run(stream())
        assert result.training_durations == []
        assert result.average_training_duration == 0.0
        assert result.max_training_duration == 0.0

    def test_retraining_dwarfs_proactive_training(self):
        """§5.5: the per-event staleness window is orders of magnitude
        smaller for proactive training."""
        pipeline, model, optimizer = make_parts()
        continuous = ContinuousDeployment(
            pipeline, model, optimizer,
            config=ContinuousConfig(
                sample_size_chunks=2,
                schedule=ScheduleConfig(interval_chunks=4),
            ),
            metric="regression", seed=0,
        )
        continuous.initial_fit(initial(), max_iterations=50)
        continuous_result = continuous.run(stream())

        pipeline, model, optimizer = make_parts()
        periodical = PeriodicalDeployment(
            pipeline, model, optimizer,
            config=PeriodicalConfig(
                retrain_every_chunks=6, max_epoch_iterations=100
            ),
            metric="regression", seed=0,
        )
        periodical.initial_fit(initial(), max_iterations=50)
        periodical_result = periodical.run(stream())

        assert (
            periodical_result.average_training_duration
            > 5 * continuous_result.average_training_duration
        )

    def test_empty_result_defaults(self):
        result = DeploymentResult(approach="x")
        assert result.average_training_duration == 0.0
        assert result.max_training_duration == 0.0
