"""Unit tests for the assembled continuous-deployment platform."""

import numpy as np
import pytest

from repro.core.config import ContinuousConfig, ScheduleConfig
from repro.core.platform import (
    ContinuousDeploymentPlatform,
    build_scheduler,
)
from repro.core.scheduler import DynamicScheduler, StaticScheduler
from repro.data.table import Table
from repro.ml.models import LinearRegression
from repro.ml.optim import Adam
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def make_platform(config=None, seed=0):
    pipeline = Pipeline(
        [
            StandardScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )
    model = LinearRegression(num_features=1)
    return ContinuousDeploymentPlatform(
        pipeline=pipeline,
        model=model,
        optimizer=Adam(0.05),
        config=config,
        seed=seed,
    )


def chunk(rng, rows=6):
    x = rng.standard_normal(rows)
    return Table({"x": x, "y": 2.0 * x})


class TestBuildScheduler:
    def test_static(self):
        scheduler = build_scheduler(ScheduleConfig(kind="static"))
        assert isinstance(scheduler, StaticScheduler)

    def test_dynamic(self):
        scheduler = build_scheduler(
            ScheduleConfig(kind="dynamic", slack=3.0)
        )
        assert isinstance(scheduler, DynamicScheduler)
        assert scheduler.slack == 3.0


class TestObserve:
    def test_proactive_fires_on_static_interval(self, rng):
        config = ContinuousConfig(
            sample_size_chunks=2,
            schedule=ScheduleConfig(kind="static", interval_chunks=3),
        )
        platform = make_platform(config)
        outcomes = [platform.observe(chunk(rng)) for __ in range(6)]
        fired = [o is not None for o in outcomes]
        assert fired == [False, False, True, False, False, True]
        assert len(platform.proactive_outcomes) == 2

    def test_online_update_applied(self, rng):
        platform = make_platform(
            ContinuousConfig(
                schedule=ScheduleConfig(interval_chunks=100)
            )
        )
        platform.observe(chunk(rng))
        assert platform.model.updates_applied == 1

    def test_online_update_disabled(self, rng):
        platform = make_platform(
            ContinuousConfig(
                online_update=False,
                schedule=ScheduleConfig(interval_chunks=100),
            )
        )
        platform.observe(chunk(rng))
        assert platform.model.updates_applied == 0

    def test_per_row_online_updates(self, rng):
        platform = make_platform(
            ContinuousConfig(
                online_batch_rows=1,
                schedule=ScheduleConfig(interval_chunks=100),
            )
        )
        platform.observe(chunk(rng, rows=6))
        assert platform.model.updates_applied == 6

    def test_chunks_observed_counter(self, rng):
        platform = make_platform()
        for __ in range(4):
            platform.observe(chunk(rng))
        assert platform.chunks_observed == 4

    def test_proactive_duration_includes_sampling(self, rng):
        config = ContinuousConfig(
            sample_size_chunks=2,
            max_materialized_chunks=0,  # force re-materialization
            schedule=ScheduleConfig(interval_chunks=2),
        )
        platform = make_platform(config)
        platform.observe(chunk(rng))
        outcome = platform.observe(chunk(rng))
        assert outcome is not None
        assert outcome.chunks_materialized == 0
        assert outcome.duration > 0

    def test_no_optimization_mode_charges_statistics(self, rng):
        config = ContinuousConfig(
            sample_size_chunks=2,
            max_materialized_chunks=0,
            online_statistics=False,
            schedule=ScheduleConfig(interval_chunks=2),
        )
        platform = make_platform(config)
        platform.observe(chunk(rng))
        platform.observe(chunk(rng))
        labels = platform.engine.tracker.breakdown().by_label
        assert any(key.startswith("recompute:") for key in labels)


class TestPredict:
    def test_predictions_returned_with_labels(self, rng):
        platform = make_platform()
        platform.observe(chunk(rng))
        predictions, labels = platform.predict(chunk(rng))
        assert predictions.shape == labels.shape

    def test_dynamic_scheduler_learns_rates(self, rng):
        config = ContinuousConfig(
            schedule=ScheduleConfig(kind="dynamic", slack=2.0)
        )
        platform = make_platform(config)
        platform.predict(chunk(rng))
        assert platform.scheduler.prediction_rate() > 0


class TestInitialFit:
    def test_initial_data_enters_pool(self, rng):
        platform = make_platform()
        platform.initial_fit(
            [chunk(rng, rows=30)],
            max_iterations=10,
            tolerance=0.0,
            store=True,
        )
        assert platform.data_manager.num_chunks == 1

    def test_learns(self, rng):
        platform = make_platform()
        platform.initial_fit(
            [chunk(rng, rows=100)], max_iterations=2000, tolerance=1e-8
        )
        predictions, labels = platform.predict(chunk(rng))
        assert np.mean((predictions - labels) ** 2) < 0.1
