"""Scheduler invariants: exact budgets, fairness, no starvation,
byte-identical replay."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.fleet import (
    FleetScheduler,
    FleetSpec,
    TenantSignals,
    TenantSpec,
)

#: Weight vectors chosen to stress the stride scheduler: huge spread,
#: near-ties, and a pathological heavy hitter.
ADVERSARIAL_WEIGHTS = [
    [1000.0, 0.001, 1.0, 1.0, 2.0],
    [1.0, 1.0, 1.0 + 1e-12, 1.0],
    [5.0, 0.1, 0.1, 0.1, 0.1, 0.1],
]


def _spec(
    weights,
    policy="fair_share",
    train_slots=3,
    materialize_bytes=1000,
    starvation_epochs=4,
    strategies=None,
) -> FleetSpec:
    strategies = strategies or ["continuous"] * len(weights)
    tenants = tuple(
        TenantSpec(
            name=f"t{i}",
            dataset="url",
            seed=i,
            weight=w,
            strategy=s,
        )
        for i, (w, s) in enumerate(zip(weights, strategies))
    )
    return FleetSpec(
        tenants=tenants,
        train_slots=train_slots,
        materialize_bytes=materialize_bytes,
        policy=policy,
        starvation_epochs=starvation_epochs,
    )


def _signals(spec, staleness, active=None):
    active = active or [True] * spec.num_tenants
    return [
        TenantSignals(
            tenant=i,
            new_rows=10,
            drift_score=0.0,
            staleness_epochs=staleness[i],
            weight=t.weight,
            strategy=t.strategy,
            active=active[i],
        )
        for i, t in enumerate(spec.tenants)
    ]


def _drive(spec, epochs):
    """Run the scheduler with realistic staleness feedback; returns
    the allocations and the largest slotless gap each tenant saw."""
    scheduler = FleetScheduler(spec)
    staleness = [0] * spec.num_tenants
    allocations = []
    max_gap = [0] * spec.num_tenants
    for _ in range(epochs):
        allocation = scheduler.allocate(_signals(spec, staleness))
        allocations.append(allocation)
        for i in range(spec.num_tenants):
            if allocation.train_slots[i] > 0:
                staleness[i] = 0
            else:
                staleness[i] += 1
                max_gap[i] = max(max_gap[i], staleness[i])
    return scheduler, allocations, max_gap


class TestBudgetInvariants:
    @pytest.mark.parametrize("weights", ADVERSARIAL_WEIGHTS)
    @pytest.mark.parametrize("policy", ("fair_share", "round_robin"))
    def test_allocations_sum_exactly_to_budget(self, weights, policy):
        spec = _spec(weights, policy=policy, materialize_bytes=12345)
        _, allocations, _ = _drive(spec, 20)
        for allocation in allocations:
            assert sum(allocation.train_slots) == spec.train_slots
            assert (
                sum(allocation.materialize_bytes)
                == spec.materialize_bytes
            )
            assert len(allocation.order) == spec.train_slots

    def test_exhausted_tenants_release_their_bytes(self):
        spec = _spec([1.0, 1.0, 2.0])
        scheduler = FleetScheduler(spec)
        allocation = scheduler.allocate(
            _signals(spec, [0, 0, 0], active=[True, False, True])
        )
        assert allocation.materialize_bytes[1] == 0
        assert (
            sum(allocation.materialize_bytes)
            == spec.materialize_bytes
        )


class TestFairness:
    @pytest.mark.parametrize("weights", ADVERSARIAL_WEIGHTS)
    def test_no_starvation_under_adversarial_weights(self, weights):
        spec = _spec(weights, train_slots=2)
        _, _, max_gap = _drive(spec, 60)
        # The guard rescues any eligible tenant at the limit, so no
        # gap can ever exceed it.
        assert max(max_gap) <= spec.starvation_epochs

    def test_grants_track_weights_proportionally(self):
        spec = _spec([3.0, 1.0], train_slots=4, starvation_epochs=50)
        scheduler, _, _ = _drive(spec, 25)
        granted = scheduler.granted()
        assert sum(granted) == 100
        assert granted[0] / granted[1] == pytest.approx(3.0, rel=0.1)

    def test_balance_score_matches_share_spread(self):
        spec = _spec([2.0, 1.0, 1.0], starvation_epochs=50)
        scheduler, _, _ = _drive(spec, 10)
        granted = scheduler.granted()
        shares = [
            g / t.weight
            for g, t in zip(granted, spec.tenants)
        ]
        mean = sum(shares) / len(shares)
        expected = (
            sum((s - mean) ** 2 for s in shares) / len(shares)
        ) ** 0.5
        assert scheduler.balance_score() == pytest.approx(expected)

    def test_rescue_preserves_totals_and_is_logged(self):
        # One tenant with a tiny priority starves quickly at 1 slot.
        spec = _spec(
            [100.0, 0.001],
            train_slots=1,
            starvation_epochs=3,
        )
        _, allocations, max_gap = _drive(spec, 12)
        rescued = [a for a in allocations if a.rescued]
        assert rescued, "the starving tenant was never rescued"
        for allocation in rescued:
            assert sum(allocation.train_slots) == spec.train_slots
        assert max(max_gap) <= spec.starvation_epochs


class TestRoundRobin:
    def test_skips_opted_out_tenants(self):
        spec = _spec(
            [1.0, 1.0, 1.0],
            policy="round_robin",
            strategies=["continuous", "online", "continuous"],
        )
        _, allocations, _ = _drive(spec, 10)
        for allocation in allocations:
            assert allocation.train_slots[1] == 0

    def test_cycles_evenly(self):
        spec = _spec(
            [9.0, 1.0, 1.0], policy="round_robin", train_slots=1
        )
        scheduler, _, _ = _drive(spec, 9)
        # Blind to weights: every eligible tenant gets the same count.
        assert scheduler.granted() == [3, 3, 3]


class TestDeterminism:
    @pytest.mark.parametrize("policy", ("fair_share", "round_robin"))
    def test_replay_is_byte_identical(self, policy):
        spec = _spec([2.0, 1.0, 1.5, 0.5], policy=policy)
        _, first, _ = _drive(spec, 30)
        _, second, _ = _drive(spec, 30)
        assert [a.to_dict() for a in first] == [
            a.to_dict() for a in second
        ]

    def test_state_round_trip_resumes_identically(self):
        spec = _spec([2.0, 1.0, 1.5], starvation_epochs=50)
        reference = FleetScheduler(spec)
        resumed = FleetScheduler(spec)
        staleness = [0, 1, 2]
        for _ in range(5):
            reference.allocate(_signals(spec, staleness))
            resumed.allocate(_signals(spec, staleness))
        resumed_copy = FleetScheduler(spec)
        resumed_copy.load_state_dict(resumed.state_dict())
        for _ in range(5):
            a = reference.allocate(_signals(spec, staleness))
            b = resumed_copy.allocate(_signals(spec, staleness))
            assert a.to_dict() == b.to_dict()
        assert (
            resumed_copy.balance_score()
            == reference.balance_score()
        )


class TestValidation:
    def test_signal_count_must_match(self):
        spec = _spec([1.0, 1.0])
        with pytest.raises(ValidationError, match="2 tenant signals"):
            FleetScheduler(spec).allocate(
                _signals(spec, [0, 0])[:1]
            )

    def test_signals_must_arrive_in_tenant_order(self):
        spec = _spec([1.0, 1.0])
        signals = _signals(spec, [0, 0])
        with pytest.raises(ValidationError, match="tenant order"):
            FleetScheduler(spec).allocate(list(reversed(signals)))

    def test_all_inactive_is_an_error(self):
        spec = _spec([1.0, 1.0])
        signals = _signals(
            spec, [0, 0], active=[False, False]
        )
        with pytest.raises(ValidationError, match="active"):
            FleetScheduler(spec).allocate(signals)
