"""FleetOrchestrator: determinism, quotas, telemetry, and recovery."""

from __future__ import annotations

import pytest

from repro.exceptions import ReliabilityError
from repro.fleet import (
    FleetOrchestrator,
    FleetSpec,
    TenantSpec,
    make_fleet,
)
from repro.obs import Telemetry, names
from repro.reliability import CheckpointConfig


def _small_fleet(policy="fair_share", **overrides) -> FleetSpec:
    defaults = dict(chunks=6, rows=8)
    defaults.update(overrides)
    return make_fleet(4, seed=5, policy=policy, **defaults)


class TestDeterminism:
    def test_same_spec_same_digest(self):
        spec = _small_fleet()
        first = FleetOrchestrator(spec).run()
        second = FleetOrchestrator(spec).run()
        assert first.digest == second.digest
        assert first.schedule_log == second.schedule_log
        assert first.per_tenant_error == second.per_tenant_error

    def test_telemetry_stream_is_deterministic(self):
        spec = _small_fleet()
        first = FleetOrchestrator(spec, telemetry=Telemetry()).run()
        second = FleetOrchestrator(spec, telemetry=Telemetry()).run()
        assert first.telemetry_digest is not None
        assert first.telemetry_digest == second.telemetry_digest

    def test_policies_diverge(self):
        fair = FleetOrchestrator(_small_fleet()).run()
        naive = FleetOrchestrator(
            _small_fleet(policy="round_robin")
        ).run()
        assert fair.digest != naive.digest
        # Equal budget across policies: the scheduling comparison is
        # never confounded by one policy training more.
        assert sum(fair.trainings) == sum(naive.trainings)


class TestExecution:
    def test_run_covers_every_stream(self):
        spec = _small_fleet()
        result = FleetOrchestrator(spec).run()
        assert result.epochs == spec.epochs
        assert all(e > 0 for e in result.per_tenant_error)
        assert result.aggregate_error > 0

    def test_online_tenants_receive_no_slots(self):
        spec = FleetSpec(
            tenants=(
                TenantSpec(
                    name="busy", dataset="url", seed=1,
                    chunks=4, rows=8,
                ),
                TenantSpec(
                    name="opted-out", dataset="taxi", seed=2,
                    strategy="online", chunks=4, rows=8,
                ),
            ),
            train_slots=2,
            materialize_bytes=8192,
        )
        result = FleetOrchestrator(spec).run()
        assert result.trainings[1] == 0
        assert result.trainings[0] > 0

    def test_epoch_quotas_sum_to_the_global_cap(self):
        spec = _small_fleet(materialize_bytes=8192)
        orchestrator = FleetOrchestrator(spec)
        orchestrator.setup()
        while orchestrator.has_work():
            entry = orchestrator.run_epoch()
            assert (
                sum(entry["materialize_bytes"])
                == spec.materialize_bytes
            )

    def test_global_cap_bounds_fleet_storage_at_enforcement(self):
        spec = _small_fleet(materialize_bytes=4096)
        orchestrator = FleetOrchestrator(spec)
        orchestrator.setup()
        orchestrator.run_epoch()
        orchestrator.run_epoch()
        # Enforcement happens before ingest, so check right after the
        # quota pass of a fresh epoch: apply this epoch's quotas.
        signals = [
            t.signals(orchestrator.epoch)
            for t in orchestrator.tenants
        ]
        allocation = orchestrator.scheduler.allocate(signals)
        total = 0
        for tenant, quota in zip(
            orchestrator.tenants, allocation.materialize_bytes
        ):
            tenant.apply_quota(quota)
            storage = tenant.platform.data_manager.storage
            assert storage.materialized_bytes <= quota
            total += storage.materialized_bytes
        assert total <= spec.materialize_bytes

    def test_fleet_telemetry_vocabulary(self):
        telemetry = Telemetry()
        FleetOrchestrator(_small_fleet(), telemetry=telemetry).run()
        seen = {event.get("name") for event in telemetry.events}
        assert names.FLEET_EPOCH in seen
        assert names.FLEET_TENANT_CHUNK in seen
        assert names.FLEET_TRAINING in seen
        snapshot = telemetry.metrics.snapshot()
        assert names.FLEET_TRAININGS in snapshot["counters"]
        assert names.FLEET_BALANCE in snapshot["gauges"]


class TestRecovery:
    def test_recover_resumes_byte_identically(self, tmp_path):
        spec = _small_fleet()
        reference = FleetOrchestrator(spec).run()

        checkpoint = CheckpointConfig(
            directory=str(tmp_path / "ckpt"), cadence_chunks=2
        )
        interrupted = FleetOrchestrator(spec, checkpoint=checkpoint)
        interrupted.setup()
        for _ in range(3):
            interrupted.run_epoch()
        # Simulate the crash by abandoning `interrupted` here.
        recovered = FleetOrchestrator.recover(checkpoint)
        assert recovered.epoch == 2  # last cadence-aligned epoch
        result = recovered.run()
        assert result.digest == reference.digest
        assert result.schedule_log == reference.schedule_log

    def test_recover_with_telemetry_matches_uninterrupted(
        self, tmp_path
    ):
        spec = _small_fleet()
        reference = FleetOrchestrator(
            spec, telemetry=Telemetry()
        ).run()
        checkpoint = CheckpointConfig(
            directory=str(tmp_path / "ckpt"), cadence_chunks=2
        )
        interrupted = FleetOrchestrator(
            spec, telemetry=Telemetry(), checkpoint=checkpoint
        )
        interrupted.setup()
        for _ in range(2):
            interrupted.run_epoch()
        result = FleetOrchestrator.recover(
            checkpoint, telemetry=Telemetry()
        ).run()
        # Metrics ride the checkpoint, so final counters (and the
        # digest-relevant schedule) match the uninterrupted run.
        assert result.digest == reference.digest

    def test_peek_reports_without_rebuilding(self, tmp_path):
        spec = _small_fleet()
        checkpoint = CheckpointConfig(
            directory=str(tmp_path / "ckpt"), cadence_chunks=2
        )
        orchestrator = FleetOrchestrator(spec, checkpoint=checkpoint)
        orchestrator.setup()
        orchestrator.run_epoch()
        orchestrator.run_epoch()
        status = FleetOrchestrator.peek(checkpoint)
        assert status["epoch"] == 2
        assert status["num_tenants"] == 4
        assert status["names"] == [t.name for t in spec.tenants]

    def test_checkpoint_requires_store(self):
        orchestrator = FleetOrchestrator(_small_fleet())
        with pytest.raises(ReliabilityError, match="checkpoint"):
            orchestrator.checkpoint()

    def test_recover_rejects_non_fleet_checkpoints(self, tmp_path):
        from repro.reliability.checkpoint import (
            CheckpointStore,
            PlatformCheckpoint,
        )

        store = CheckpointStore(
            CheckpointConfig(directory=str(tmp_path / "ckpt"))
        )
        store.write(
            PlatformCheckpoint(
                cursor=1,
                approach="continuous",
                bundle=None,
                state={},
            )
        )
        with pytest.raises(ReliabilityError, match="fleet"):
            FleetOrchestrator.recover(store)


class TestValidationSurface:
    def test_single_tenant_fleet_runs(self):
        spec = FleetSpec(
            tenants=(
                TenantSpec(
                    name="solo",
                    dataset="taxi",
                    seed=1,
                    chunks=3,
                    rows=8,
                ),
            ),
            train_slots=1,
            materialize_bytes=4096,
        )
        result = FleetOrchestrator(spec).run()
        assert result.epochs == 3
        assert result.trainings[0] > 0
