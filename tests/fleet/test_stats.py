"""Incremental accumulators agree with from-scratch recomputation."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import ValidationError
from repro.fleet import StdDevStatistics, SumStatistics
from repro.fleet.stats import largest_remainder


def _pstdev(values):
    mean = sum(values) / len(values)
    return math.sqrt(
        sum((v - mean) ** 2 for v in values) / len(values)
    )


class TestSumStatistics:
    def test_update_matches_recompute(self):
        values = [1.0, 2.0, 3.5]
        acc = SumStatistics(values)
        values[1] = 9.0
        acc.update(2.0, 9.0)
        assert acc.value() == pytest.approx(sum(values))

    def test_empty_update_rejected(self):
        with pytest.raises(ValidationError):
            SumStatistics().update(0.0, 1.0)


class TestStdDevStatistics:
    def test_randomized_replacements_match_recompute(self):
        rng = random.Random(7)
        values = [rng.uniform(0, 10) for _ in range(20)]
        acc = StdDevStatistics(values)
        for _ in range(200):
            index = rng.randrange(len(values))
            new = rng.uniform(0, 10)
            acc.update(values[index], new)
            values[index] = new
        assert acc.value() == pytest.approx(_pstdev(values))
        assert acc.mean() == pytest.approx(
            sum(values) / len(values)
        )

    def test_insert_then_value(self):
        acc = StdDevStatistics()
        assert acc.value() == 0.0
        for v in (2.0, 4.0, 6.0):
            acc.insert(v)
        assert acc.value() == pytest.approx(_pstdev([2.0, 4.0, 6.0]))

    def test_identical_values_never_go_negative(self):
        acc = StdDevStatistics([0.1] * 7)
        for _ in range(50):
            acc.update(0.1, 0.1)
        # sqrt(max(variance, 0)) clamps the negative residue; a tiny
        # positive one can survive the float subtraction.
        assert acc.value() == pytest.approx(0.0, abs=1e-6)

    def test_state_round_trip(self):
        acc = StdDevStatistics([1.0, 5.0, 9.0])
        clone = StdDevStatistics()
        clone.load_state_dict(acc.state_dict())
        assert clone.value() == acc.value()
        assert clone.count == acc.count


class TestLargestRemainder:
    def test_sums_exactly(self):
        for total in (0, 1, 7, 100, 262144):
            shares = largest_remainder([2.0, 1.0, 1.5, 0.5], total)
            assert sum(shares) == total

    def test_proportional(self):
        shares = largest_remainder([3.0, 1.0], 100)
        assert shares == [75, 25]

    def test_deterministic_tie_break_low_index_first(self):
        assert largest_remainder([1.0, 1.0, 1.0], 2) == [1, 1, 0]

    def test_adversarial_weights_still_sum(self):
        weights = [1e6, 1e-6, 1.0, 1.0]
        shares = largest_remainder(weights, 13)
        assert sum(shares) == 13
        assert all(s >= 0 for s in shares)

    def test_validation(self):
        with pytest.raises(ValidationError, match="total"):
            largest_remainder([1.0], -1)
        with pytest.raises(ValidationError, match="mass"):
            largest_remainder([0.0, 0.0], 5)
        assert largest_remainder([], 5) == []
