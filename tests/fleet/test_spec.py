"""TenantSpec/FleetSpec: validation naming fields, JSON round-trips."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.fleet import FleetSpec, TenantSpec, make_fleet


def _tenant(**overrides) -> TenantSpec:
    base = dict(name="t0", dataset="url", seed=1)
    base.update(overrides)
    return TenantSpec(**base)


class TestTenantSpec:
    def test_round_trip(self):
        spec = _tenant(weight=2.5, strategy="periodic", drift="abrupt")
        assert TenantSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "overrides, field",
        [
            ({"dataset": "mnist"}, "dataset"),
            ({"strategy": "eager"}, "strategy"),
            ({"drift": "cyclic"}, "drift"),
            ({"seed": -1}, "seed"),
            ({"weight": 0.0}, "weight"),
            ({"weight": float("nan")}, "weight"),
            ({"chunks": 0}, "chunks"),
            ({"rows": 0}, "rows"),
            ({"name": ""}, "name"),
        ],
    )
    def test_validation_names_offending_field(self, overrides, field):
        with pytest.raises(ValidationError, match=field):
            _tenant(**overrides)

    def test_taxi_streams_are_stationary(self):
        with pytest.raises(ValidationError, match="drift"):
            _tenant(dataset="taxi", drift="gradual")

    def test_unknown_key_rejected_by_name(self):
        raw = _tenant().to_dict()
        raw["colour"] = "red"
        with pytest.raises(ValidationError, match="colour"):
            TenantSpec.from_dict(raw)

    def test_missing_key_rejected_by_name(self):
        with pytest.raises(ValidationError, match="dataset"):
            TenantSpec.from_dict({"name": "t0", "seed": 1})


class TestFleetSpec:
    def test_json_round_trip(self):
        spec = make_fleet(6, seed=3, policy="round_robin")
        assert FleetSpec.from_json(spec.to_json()) == spec

    def test_nested_tenant_dicts_are_coerced(self):
        spec = make_fleet(3, seed=1)
        raw = spec.to_dict()
        assert all(isinstance(t, dict) for t in raw["tenants"])
        assert FleetSpec.from_dict(raw) == spec

    def test_invalid_json_is_a_validation_error(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            FleetSpec.from_json("{nope")

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValidationError, match="t0"):
            FleetSpec(tenants=(_tenant(), _tenant(seed=2)))

    def test_bad_policy_names_field(self):
        with pytest.raises(ValidationError, match="policy"):
            FleetSpec(tenants=(_tenant(),), policy="lottery")

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValidationError, match="tenants"):
            FleetSpec(tenants=())

    def test_epochs_covers_longest_stream(self):
        spec = FleetSpec(
            tenants=(
                _tenant(chunks=10),
                _tenant(name="t1", chunks=4),
            ),
            chunks_per_epoch=3,
        )
        assert spec.epochs == 4  # ceil(10 / 3)
        capped = FleetSpec(
            tenants=spec.tenants, chunks_per_epoch=3, max_epochs=2
        )
        assert capped.epochs == 2


class TestMakeFleet:
    def test_deterministic(self):
        assert make_fleet(12, seed=7) == make_fleet(12, seed=7)

    def test_mixed_datasets_and_opt_outs(self):
        spec = make_fleet(24, seed=0)
        datasets = [t.dataset for t in spec.tenants]
        assert datasets.count("taxi") == 8
        assert datasets.count("url") == 16
        online = [t for t in spec.tenants if t.strategy == "online"]
        assert online and all(t.dataset == "taxi" for t in online)

    def test_budgets_scale_with_fleet_size(self):
        spec = make_fleet(24, seed=0)
        assert spec.train_slots == 6
        assert spec.materialize_bytes == 24 * 24576
        assert make_fleet(2, seed=0).train_slots == 2

    def test_overrides_win(self):
        spec = make_fleet(
            6, seed=1, train_slots=9, materialize_bytes=4096
        )
        assert spec.train_slots == 9
        assert spec.materialize_bytes == 4096
