"""Data-centric triggers: pure urgency from per-tenant signals."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.fleet import TenantSignals, TriggerPolicy


def _signals(**overrides) -> TenantSignals:
    base = dict(
        tenant=0,
        new_rows=0,
        drift_score=0.0,
        staleness_epochs=0,
        weight=1.0,
    )
    base.update(overrides)
    return TenantSignals(**base)


class TestTenantSignals:
    def test_wants_training(self):
        assert _signals().wants_training
        assert not _signals(strategy="online").wants_training
        assert not _signals(active=False).wants_training

    def test_validation(self):
        with pytest.raises(ValidationError, match="tenant"):
            _signals(tenant=-1)
        with pytest.raises(ValidationError, match="strategy"):
            _signals(strategy="eager")
        with pytest.raises(ValidationError, match="weight"):
            _signals(weight=0.0)


class TestTriggerPolicy:
    def test_opted_out_tenants_have_zero_urgency(self):
        policy = TriggerPolicy()
        loud = _signals(
            strategy="online",
            new_rows=10_000,
            drift_score=5.0,
            staleness_epochs=50,
        )
        assert policy.urgency(loud) == 0.0

    def test_continuous_urgency_is_additive(self):
        policy = TriggerPolicy(
            volume_rows=100,
            drift_gain=2.0,
            staleness_epochs_norm=4,
        )
        sig = _signals(
            new_rows=50, drift_score=0.5, staleness_epochs=2
        )
        assert policy.urgency(sig) == pytest.approx(
            0.5 + 1.0 + 0.5
        )

    def test_negative_drift_scores_clamp_to_zero(self):
        policy = TriggerPolicy(drift_gain=10.0)
        sig = _signals(drift_score=-3.0)
        assert policy.urgency(sig) == pytest.approx(0.0)

    def test_periodic_spikes_on_cadence(self):
        policy = TriggerPolicy(periodic_epochs=3, periodic_urgency=4.0)
        fresh = _signals(strategy="periodic", staleness_epochs=2)
        due = _signals(strategy="periodic", staleness_epochs=3)
        assert policy.urgency(fresh) == 0.0
        assert policy.urgency(due) == 4.0

    def test_periodic_ignores_volume_and_drift(self):
        policy = TriggerPolicy(periodic_epochs=5)
        sig = _signals(
            strategy="periodic",
            new_rows=10_000,
            drift_score=9.0,
            staleness_epochs=1,
        )
        assert policy.urgency(sig) == 0.0

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"volume_rows": 0}, "volume_rows"),
            ({"staleness_epochs_norm": 0}, "staleness_epochs_norm"),
            ({"periodic_epochs": 0}, "periodic_epochs"),
            ({"drift_gain": -1.0}, "drift_gain"),
        ],
    )
    def test_validation(self, kwargs, field):
        with pytest.raises(ValidationError, match=field):
            TriggerPolicy(**kwargs)
