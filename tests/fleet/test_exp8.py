"""Experiment 8 mechanics at smoke scale (the full 24-tenant result
is pinned by the committed BENCH_exp8_fleet baseline and CI)."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.experiments.exp8_fleet import (
    COMPARED_POLICIES,
    bench_record,
    format_comparison,
    headline_claims,
    run_fleet_experiment,
)
from repro.obs import Telemetry


@pytest.fixture(scope="module")
def smoke_result():
    return run_fleet_experiment(
        num_tenants=4, seed=5, chunks=6, rows=8
    )


class TestExperiment:
    def test_rejects_degenerate_fleets(self):
        with pytest.raises(ValidationError, match="2 tenants"):
            run_fleet_experiment(num_tenants=1)

    def test_runs_both_policies_at_equal_budget(self, smoke_result):
        assert set(smoke_result.runs) == set(COMPARED_POLICIES)
        assert smoke_result.equal_budget

    def test_identity_verification_passes(self, smoke_result):
        assert smoke_result.digests_identical
        assert smoke_result.telemetry_identical

    def test_telemetry_binds_to_first_fair_run_only(self):
        telemetry = Telemetry()
        run_fleet_experiment(
            num_tenants=2,
            seed=3,
            chunks=4,
            rows=8,
            telemetry=telemetry,
            verify_identity=False,
        )
        assert telemetry.events, "fair-share run was not instrumented"

    def test_claims_are_consistent(self, smoke_result):
        claims = headline_claims(smoke_result)
        assert claims["fair_advantage"] == pytest.approx(
            claims["round_robin_aggregate_error"]
            - claims["fair_aggregate_error"]
        )
        assert (
            claims["fair_trainings"]
            == claims["round_robin_trainings"]
        )

    def test_bench_record_is_reproducible(self, smoke_result):
        again = run_fleet_experiment(
            num_tenants=4, seed=5, chunks=6, rows=8
        )
        volatile = ("created_unix", "git_sha", "env")
        first = {
            k: v
            for k, v in bench_record(
                smoke_result, 4, 5, 6
            ).to_dict().items()
            if k not in volatile
        }
        second = {
            k: v
            for k, v in bench_record(again, 4, 5, 6)
            .to_dict()
            .items()
            if k not in volatile
        }
        assert first == second

    def test_bench_record_pins_the_trajectory(self, smoke_result):
        record = bench_record(smoke_result, 4, 5, 6)
        epochs = int(record.metrics["epochs"].value)
        for epoch in range(epochs):
            assert f"fair_error_epoch_{epoch:02d}" in record.metrics

    def test_format_comparison_lists_both_policies(
        self, smoke_result
    ):
        table = format_comparison(smoke_result)
        for policy in COMPARED_POLICIES:
            assert policy in table
