"""Property-based round-trip tests for the file I/O layer."""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import Table
from repro.io import read_csv, read_svmlight, write_csv, write_svmlight
from repro.pipeline.components.parser import SvmLightParser

finite_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, width=64
)
sparse_rows = st.lists(
    st.dictionaries(st.integers(0, 500), finite_values, max_size=6),
    min_size=1,
    max_size=12,
)
labels_strategy = st.lists(
    st.sampled_from([-1.0, 1.0]), min_size=1, max_size=12
)


class TestSvmLightRoundtrip:
    @given(sparse_rows, st.data())
    @settings(max_examples=50, deadline=None)
    def test_write_parse_roundtrip(self, rows, data):
        labels = data.draw(
            st.lists(
                st.sampled_from([-1.0, 1.0]),
                min_size=len(rows),
                max_size=len(rows),
            )
        )
        with tempfile.TemporaryDirectory() as workdir:
            path = Path(workdir) / "roundtrip.svm"
            write_svmlight(path, labels, rows)
            parsed = SvmLightParser().transform(read_svmlight(path))
        assert parsed["label"].tolist() == labels
        for original, restored in zip(rows, parsed["features"]):
            assert set(restored) == set(original)
            for index, value in original.items():
                assert restored[index] == value


class TestCsvRoundtrip:
    @given(
        st.lists(finite_values, min_size=1, max_size=20),
        # Letters only: a digit-only tag like "0" would legitimately
        # be re-typed as a float by the type-inferring reader.
        st.lists(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Lu", "Ll")
                ),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_numeric_and_text_columns(self, numbers, texts):
        size = min(len(numbers), len(texts))
        table = Table(
            {
                "value": np.asarray(numbers[:size]),
                "tag": np.array(texts[:size], dtype=object),
            }
        )
        with tempfile.TemporaryDirectory() as workdir:
            path = Path(workdir) / "roundtrip.csv"
            write_csv(path, table)
            restored = read_csv(path)
        assert np.allclose(
            restored["value"], table["value"], rtol=1e-12
        )
        assert restored["tag"].tolist() == table["tag"].tolist()
