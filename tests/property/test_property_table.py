"""Property-based tests for the Table container."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.data.table import Table

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, width=64
)


@st.composite
def tables(draw, max_rows=30, max_cols=4):
    rows = draw(st.integers(0, max_rows))
    cols = draw(st.integers(1, max_cols))
    names = [f"c{i}" for i in range(cols)]
    return Table(
        {
            name: draw(
                npst.arrays(np.float64, rows, elements=finite_floats)
            )
            for name in names
        }
    )


class TestTableProperties:
    @given(tables(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_filter_then_concat_partitions(self, table, data):
        """Filtering by a mask and its complement partitions the rows."""
        mask = np.array(
            data.draw(
                st.lists(
                    st.booleans(),
                    min_size=table.num_rows,
                    max_size=table.num_rows,
                )
            ),
            dtype=bool,
        )
        kept = table.filter_rows(mask)
        dropped = table.filter_rows(~mask)
        assert kept.num_rows + dropped.num_rows == table.num_rows
        for name in table.column_names:
            recombined = np.concatenate(
                [kept.column(name), dropped.column(name)]
            )
            assert sorted(recombined) == sorted(table.column(name))

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_take_identity_permutation(self, table):
        permuted = table.take(list(range(table.num_rows)))
        assert permuted == table

    @given(tables(), st.integers(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_head_bounds(self, table, count):
        head = table.head(count)
        assert head.num_rows == min(count, table.num_rows)

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_with_column_preserves_others(self, table):
        grown = table.with_column(
            "fresh", np.zeros(table.num_rows)
        )
        for name in table.column_names:
            assert np.array_equal(
                grown.column(name), table.column(name)
            )
        assert grown.num_columns == table.num_columns + 1

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_num_values_equals_cells_for_numeric(self, table):
        assert table.num_values == table.num_cells

    @given(st.lists(tables(max_cols=2), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_concat_row_count(self, parts):
        # Harmonise schemas: keep only the first column name of each.
        base = parts[0].column_names
        usable = [p for p in parts if p.column_names == base]
        merged = Table.concat(usable)
        assert merged.num_rows == sum(p.num_rows for p in usable)

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_to_matrix_roundtrip(self, table):
        matrix = table.to_matrix()
        assert matrix.shape == (table.num_rows, table.num_columns)
        for position, name in enumerate(table.column_names):
            assert np.array_equal(
                matrix[:, position], table.column(name)
            )
