"""Property-based tests for metrics, losses, and prequential tracking."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.ml.losses import HingeLoss, LogisticLoss, SquaredLoss
from repro.ml.metrics import (
    PrequentialTracker,
    accuracy,
    mean_squared_error,
    misclassification_rate,
    rmsle,
)

bounded = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, width=64
)
non_negative = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, width=64
)


@st.composite
def prediction_pairs(draw, max_size=40):
    size = draw(st.integers(1, max_size))
    y_true = draw(npst.arrays(np.float64, size, elements=bounded))
    y_pred = draw(npst.arrays(np.float64, size, elements=bounded))
    return y_true, y_pred


class TestMetricProperties:
    @given(prediction_pairs())
    @settings(max_examples=80, deadline=None)
    def test_mse_non_negative_and_zero_iff_equal(self, pair):
        y_true, y_pred = pair
        value = mean_squared_error(y_true, y_pred)
        assert value >= 0.0
        assert mean_squared_error(y_true, y_true) == 0.0

    @given(prediction_pairs())
    @settings(max_examples=80, deadline=None)
    def test_accuracy_complements_misclassification(self, pair):
        y_true, y_pred = pair
        assert accuracy(y_true, y_pred) + misclassification_rate(
            y_true, y_pred
        ) == 1.0

    @given(
        npst.arrays(
            np.float64, st.integers(1, 30), elements=non_negative
        ),
        npst.arrays(
            np.float64, st.integers(1, 30), elements=bounded
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_rmsle_bounds(self, y_true, y_pred):
        if len(y_true) != len(y_pred):
            y_pred = np.resize(y_pred, len(y_true))
        value = rmsle(y_true, y_pred)
        assert value >= 0.0
        assert np.isfinite(value)
        assert rmsle(y_true, y_true) == 0.0

    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 100.0, allow_nan=False),
                st.integers(1, 50),
            ),
            min_size=1,
            max_size=30,
        ).filter(
            lambda chunks: all(e <= c for e, c in chunks)
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_prequential_rate_equals_direct_computation(self, chunks):
        tracker = PrequentialTracker(kind="rate")
        for error_sum, count in chunks:
            tracker.add_chunk(error_sum, count)
        total_errors = sum(e for e, __ in chunks)
        total_rows = sum(c for __, c in chunks)
        assert tracker.value() == total_errors / total_rows
        assert len(tracker.history) == len(chunks)

    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 1e4, allow_nan=False),
                st.integers(1, 50),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_prequential_rmse_equals_direct_computation(self, chunks):
        tracker = PrequentialTracker(kind="rmse")
        for error_sum, count in chunks:
            tracker.add_chunk(error_sum, count)
        total = sum(e for e, __ in chunks)
        rows = sum(c for __, c in chunks)
        assert tracker.value() == np.sqrt(total / rows)


class TestLossProperties:
    @given(
        npst.arrays(np.float64, 12, elements=bounded),
        npst.arrays(np.float64, 12, elements=bounded),
        npst.arrays(np.float64, 12, elements=bounded),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_squared_loss_convex_in_decision(self, z1, z2, y, t):
        loss = SquaredLoss()
        mid = t * z1 + (1 - t) * z2
        assert loss.value(mid, y) <= (
            t * loss.value(z1, y)
            + (1 - t) * loss.value(z2, y)
            + 1e-8
        )

    @given(
        npst.arrays(np.float64, 12, elements=bounded),
        npst.arrays(np.float64, 12, elements=bounded),
        st.floats(0.0, 1.0),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_classification_losses_convex_in_decision(
        self, z1, z2, t, data
    ):
        signs = np.array(
            data.draw(
                st.lists(
                    st.sampled_from([-1.0, 1.0]),
                    min_size=12, max_size=12,
                )
            )
        )
        mid = t * z1 + (1 - t) * z2
        for loss in (HingeLoss(), LogisticLoss()):
            assert loss.value(mid, signs) <= (
                t * loss.value(z1, signs)
                + (1 - t) * loss.value(z2, signs)
                + 1e-8
            )

    @given(
        npst.arrays(np.float64, 10, elements=bounded),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_losses_non_negative(self, z, data):
        signs = np.array(
            data.draw(
                st.lists(
                    st.sampled_from([-1.0, 1.0]),
                    min_size=10, max_size=10,
                )
            )
        )
        assert SquaredLoss().value(z, signs) >= 0.0
        assert HingeLoss().value(z, signs) >= 0.0
        assert LogisticLoss().value(z, signs) >= 0.0
