"""Property-based tests for the storage layer's eviction invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.chunk import FeatureChunk
from repro.data.storage import ChunkStorage


def make_chunk(timestamp: int) -> FeatureChunk:
    return FeatureChunk(
        timestamp=timestamp,
        raw_reference=timestamp,
        features=np.ones((2, 2)),
        labels=np.ones(2),
    )


class TestStorageInvariants:
    @given(st.integers(0, 12), st.integers(1, 30))
    @settings(max_examples=80, deadline=None)
    def test_budget_never_exceeded(self, budget, inserts):
        storage = ChunkStorage(max_materialized=budget)
        for t in range(inserts):
            storage.put_features(make_chunk(t))
            assert storage.num_materialized <= budget
        assert len(storage.feature_timestamps) == inserts

    @given(st.integers(1, 12), st.integers(1, 30))
    @settings(max_examples=80, deadline=None)
    def test_materialized_set_is_newest_suffix(self, budget, inserts):
        """Oldest-first eviction keeps exactly the newest chunks —
        the regime the closed-form μ analysis assumes."""
        storage = ChunkStorage(max_materialized=budget)
        for t in range(inserts):
            storage.put_features(make_chunk(t))
        expected = list(range(max(0, inserts - budget), inserts))
        assert storage.materialized_timestamps == expected

    @given(st.integers(0, 10), st.integers(1, 25))
    @settings(max_examples=60, deadline=None)
    def test_accounting_consistency(self, budget, inserts):
        storage = ChunkStorage(max_materialized=budget)
        for t in range(inserts):
            storage.put_features(make_chunk(t))
        stats = storage.stats
        assert stats.features_inserted == inserts
        assert (
            stats.features_inserted - stats.features_evicted
            == storage.num_materialized
        )
        assert storage.materialized_bytes >= 0

    @given(
        st.integers(1, 8),
        st.lists(st.integers(0, 19), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_eviction_then_rematerialization_roundtrip(
        self, budget, accesses
    ):
        storage = ChunkStorage(max_materialized=budget)
        for t in range(20):
            storage.put_features(make_chunk(t))
        for t in accesses:
            entry = storage.get_features(t)
            if not storage.is_materialized(t):
                storage.put_features(make_chunk(t))
                assert storage.num_materialized <= budget
