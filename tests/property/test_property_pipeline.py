"""Property-based tests for pipeline-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.data.table import Table
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.imputer import MissingValueImputer
from repro.pipeline.components.scaler import MinMaxScaler, StandardScaler
from repro.pipeline.pipeline import Pipeline

bounded = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, width=64
)


@st.composite
def xy_tables(draw, max_rows=25):
    rows = draw(st.integers(2, max_rows))
    x = draw(npst.arrays(np.float64, rows, elements=bounded))
    y = draw(npst.arrays(np.float64, rows, elements=bounded))
    return Table({"x": x, "y": y})


def make_pipeline():
    return Pipeline(
        [
            MissingValueImputer(["x"], name="imputer"),
            StandardScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )


class TestPipelineInvariants:
    @given(xy_tables())
    @settings(max_examples=60, deadline=None)
    def test_transform_is_pure(self, table):
        """Repeated transforms of the same batch give the same output
        and leave statistics untouched."""
        pipeline = make_pipeline()
        pipeline.update_transform(table)
        first = pipeline.transform_to_features(table)
        second = pipeline.transform_to_features(table)
        assert np.allclose(first.matrix, second.matrix, equal_nan=True)
        assert np.array_equal(first.labels, second.labels)

    @given(xy_tables(), xy_tables())
    @settings(max_examples=60, deadline=None)
    def test_train_serve_consistency(self, train, serve):
        """Serving any batch after training applies exactly the
        statistics the training path built (§4.3)."""
        trained = make_pipeline()
        trained.update_transform(train)
        served = trained.transform_to_features(serve)

        # Reference: apply the statistics by hand.
        x = np.asarray(train["x"], dtype=np.float64)
        mean, std = x.mean(), x.std()
        expected = np.asarray(serve["x"], dtype=np.float64)
        expected = (expected - mean) / (std if std > 0 else 1.0)
        assert np.allclose(
            served.matrix.ravel(), expected, atol=1e-9
        )

    @given(xy_tables())
    @settings(max_examples=40, deadline=None)
    def test_reset_restores_identity(self, table):
        pipeline = make_pipeline()
        pipeline.update_transform(table)
        pipeline.reset()
        served = pipeline.transform_to_features(table)
        assert np.allclose(
            served.matrix.ravel(), np.asarray(table["x"]), atol=1e-9
        )

    @given(xy_tables())
    @settings(max_examples=40, deadline=None)
    def test_row_count_preserved_without_filters(self, table):
        pipeline = make_pipeline()
        features = pipeline.update_transform_to_features(table)
        assert features.num_rows == table.num_rows


class TestScalerProperties:
    @given(xy_tables())
    @settings(max_examples=60, deadline=None)
    def test_standard_scaler_output_statistics(self, table):
        scaler = StandardScaler(["x"])
        scaler.update(table)
        scaled = np.asarray(scaler.transform(table)["x"])
        x = np.asarray(table["x"])
        # Near-constant columns at large magnitudes are dominated by
        # floating-point noise; only assert the z-score statistics
        # when the spread is numerically meaningful.
        if x.std() > 1e-6 * (1.0 + np.abs(x).max()):
            assert abs(scaled.mean()) < 1e-6
            assert abs(scaled.std() - 1.0) < 1e-6
        else:
            assert np.all(np.isfinite(scaled))

    @given(xy_tables())
    @settings(max_examples=60, deadline=None)
    def test_minmax_scaler_in_unit_interval_on_seen_data(self, table):
        scaler = MinMaxScaler(["x"])
        scaler.update(table)
        scaled = np.asarray(scaler.transform(table)["x"])
        assert np.all(scaled >= -1e-12)
        assert np.all(scaled <= 1.0 + 1e-12)
