"""Property-based tests for optimizers: state persistence is what
makes proactive training's "conditionally independent iterations"
argument valid, so it must hold for arbitrary gradient sequences."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.ml.optim import (
    AdaDelta,
    AdaGrad,
    Adam,
    ConstantLR,
    InverseScalingLR,
    Momentum,
    RMSProp,
)

OPTIMIZER_FACTORIES = [
    lambda: ConstantLR(0.05),
    lambda: InverseScalingLR(0.05),
    lambda: Momentum(0.05),
    lambda: AdaGrad(0.05),
    lambda: RMSProp(0.05),
    lambda: AdaDelta(),
    lambda: Adam(0.05),
]

bounded_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, width=64
)


@st.composite
def gradient_sequences(draw, max_steps=8, max_dim=5):
    dim = draw(st.integers(1, max_dim))
    steps = draw(st.integers(1, max_steps))
    return [
        draw(npst.arrays(np.float64, dim, elements=bounded_floats))
        for __ in range(steps)
    ]


class TestOptimizerProperties:
    @given(
        st.integers(0, len(OPTIMIZER_FACTORIES) - 1),
        gradient_sequences(),
        st.integers(1, 7),
    )
    @settings(max_examples=80, deadline=None)
    def test_state_roundtrip_mid_sequence(
        self, which, grads, raw_cut
    ):
        """Saving/restoring state mid-run must not change the result
        — the §3.3 conditional-independence property."""
        factory = OPTIMIZER_FACTORIES[which]
        cut = min(raw_cut, len(grads))
        dim = len(grads[0])

        straight = factory()
        params_a = np.zeros(dim)
        for grad in grads:
            params_a = straight.step(params_a, grad)

        first = factory()
        params_b = np.zeros(dim)
        for grad in grads[:cut]:
            params_b = first.step(params_b, grad)
        resumed = factory()
        resumed.load_state_dict(first.state_dict())
        for grad in grads[cut:]:
            params_b = resumed.step(params_b, grad)

        assert np.allclose(params_a, params_b, atol=1e-12)

    @given(
        st.integers(0, len(OPTIMIZER_FACTORIES) - 1),
        gradient_sequences(),
    )
    @settings(max_examples=80, deadline=None)
    def test_outputs_finite_and_shaped(self, which, grads):
        optimizer = OPTIMIZER_FACTORIES[which]()
        params = np.zeros(len(grads[0]))
        for grad in grads:
            params = optimizer.step(params, grad)
            assert params.shape == grad.shape
            assert np.all(np.isfinite(params))

    @given(
        st.integers(0, len(OPTIMIZER_FACTORIES) - 1),
        gradient_sequences(),
    )
    @settings(max_examples=60, deadline=None)
    def test_zero_gradient_coordinates_frozen(self, which, grads):
        """Per-coordinate rules must not move coordinates whose
        gradient was always zero."""
        optimizer = OPTIMIZER_FACTORIES[which]()
        dim = len(grads[0])
        params = np.ones(dim)
        for grad in grads:
            masked = grad.copy()
            masked[0] = 0.0
            params = optimizer.step(params, masked)
        assert params[0] == 1.0
