"""Property-based tests for incremental statistics.

The core invariant: streaming/merged statistics must agree with a
single-pass numpy computation for *any* split of the data — this is
what makes online statistics computation (§3.1) sound.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.pipeline.statistics import (
    CategoryTable,
    RunningMinMax,
    RunningMoments,
    SparseMoments,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, width=64
)


@st.composite
def matrix_and_split(draw, max_rows=60, max_cols=4):
    rows = draw(st.integers(2, max_rows))
    cols = draw(st.integers(1, max_cols))
    data = draw(
        npst.arrays(np.float64, (rows, cols), elements=finite_floats)
    )
    split = draw(st.integers(1, rows - 1))
    return data, split


class TestRunningMomentsProperties:
    @given(matrix_and_split())
    @settings(max_examples=60, deadline=None)
    def test_split_invariance(self, case):
        data, split = case
        streamed = RunningMoments()
        streamed.update(data[:split])
        streamed.update(data[split:])
        assert np.allclose(
            streamed.mean(), data.mean(axis=0), atol=1e-6, rtol=1e-6
        )
        assert np.allclose(
            streamed.variance(), data.var(axis=0),
            atol=1e-4, rtol=1e-4,
        )

    @given(matrix_and_split())
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_update(self, case):
        data, split = case
        merged = RunningMoments()
        merged.update(data[:split])
        other = RunningMoments()
        other.update(data[split:])
        merged.merge(other)
        whole = RunningMoments()
        whole.update(data)
        assert np.allclose(merged.mean(), whole.mean(), atol=1e-8)
        assert np.allclose(
            merged.variance(), whole.variance(), atol=1e-4, rtol=1e-4
        )

    @given(matrix_and_split())
    @settings(max_examples=40, deadline=None)
    def test_variance_non_negative(self, case):
        data, split = case
        moments = RunningMoments()
        moments.update(data[:split])
        moments.update(data[split:])
        assert np.all(moments.variance() >= 0)


class TestRunningMinMaxProperties:
    @given(matrix_and_split())
    @settings(max_examples=60, deadline=None)
    def test_split_invariance(self, case):
        data, split = case
        extrema = RunningMinMax()
        extrema.update(data[:split])
        extrema.update(data[split:])
        assert np.array_equal(extrema.minimum(), data.min(axis=0))
        assert np.array_equal(extrema.maximum(), data.max(axis=0))

    @given(matrix_and_split())
    @settings(max_examples=40, deadline=None)
    def test_span_non_negative(self, case):
        data, split = case
        extrema = RunningMinMax()
        extrema.update(data)
        assert np.all(extrema.span() >= 0)


class TestCategoryTableProperties:
    @given(st.lists(st.integers(0, 20), min_size=0, max_size=60))
    @settings(max_examples=60)
    def test_indices_dense_and_stable(self, values):
        table = CategoryTable()
        table.update(values)
        categories = table.categories()
        # Every distinct value registered exactly once, indices dense.
        assert sorted(set(values)) == sorted(categories)
        assert sorted(table.lookup(c) for c in categories) == list(
            range(len(categories))
        )

    @given(
        st.lists(st.integers(0, 10), max_size=30),
        st.lists(st.integers(0, 10), max_size=30),
    )
    @settings(max_examples=60)
    def test_update_idempotent_and_merge_consistent(self, left, right):
        once = CategoryTable()
        once.update(left + right)
        twice = CategoryTable()
        twice.update(left)
        twice.update(left)  # idempotent
        other = CategoryTable()
        other.update(right)
        twice.merge(other)
        assert once.categories() == twice.categories()


class TestSparseMomentsProperties:
    @given(
        st.lists(
            st.dictionaries(
                st.integers(0, 5), finite_floats, max_size=4
            ),
            min_size=2,
            max_size=40,
        ),
        st.integers(1, 39),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_single_pass(self, rows, raw_split):
        split = min(raw_split, len(rows) - 1)
        whole = SparseMoments()
        whole.update(rows)
        left = SparseMoments()
        left.update(rows[:split])
        right = SparseMoments()
        right.update(rows[split:])
        left.merge(right)
        for index in whole.indices():
            assert left.count(index) == whole.count(index)
            assert np.isclose(
                left.mean(index), whole.mean(index), atol=1e-6
            )
            assert np.isclose(
                left.std(index), whole.std(index),
                atol=1e-4, rtol=1e-4,
            )
