"""Property-based tests for feature hashing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import Table
from repro.pipeline.components.hasher import FeatureHasher, hash_index

bounded_values = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, width=64
)
sparse_rows = st.dictionaries(
    st.integers(0, 10_000), bounded_values, max_size=12
)


def to_table(rows):
    array = np.empty(len(rows), dtype=object)
    for i, row in enumerate(rows):
        array[i] = row
    return Table({"label": np.ones(len(rows)), "features": array})


class TestHashIndexProperties:
    @given(st.integers(0, 10**9), st.integers(1, 4096))
    @settings(max_examples=120)
    def test_bucket_bounds_and_sign(self, index, width):
        bucket, sign = hash_index(index, width)
        assert 0 <= bucket < width
        assert sign in (1.0, -1.0)

    @given(st.integers(0, 10**9), st.integers(1, 4096))
    @settings(max_examples=60)
    def test_deterministic(self, index, width):
        assert hash_index(index, width) == hash_index(index, width)


class TestFeatureHasherProperties:
    @given(st.lists(sparse_rows, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_shape_and_finiteness(self, rows):
        hasher = FeatureHasher(num_features=64)
        result = hasher.transform(to_table(rows))
        assert result.matrix.shape == (len(rows), 64)
        assert np.all(np.isfinite(result.matrix.toarray()))

    @given(sparse_rows, sparse_rows)
    @settings(max_examples=60, deadline=None)
    def test_linearity_over_disjoint_rows(self, left, right):
        """hash(a ∪ b) == hash(a) + hash(b) when indices are disjoint
        — signed hashing is linear in the input values."""
        right = {k: v for k, v in right.items() if k not in left}
        hasher = FeatureHasher(num_features=32)
        combined = hasher.transform(to_table([{**left, **right}]))
        separate_a = hasher.transform(to_table([left]))
        separate_b = hasher.transform(to_table([right]))
        assert np.allclose(
            combined.matrix.toarray(),
            separate_a.matrix.toarray() + separate_b.matrix.toarray(),
            atol=1e-9,
        )

    @given(sparse_rows, st.floats(0.1, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_homogeneity(self, row, scale):
        """Scaling every input value scales the hashed vector."""
        hasher = FeatureHasher(num_features=32)
        base = hasher.transform(to_table([row])).matrix.toarray()
        scaled_row = {k: v * scale for k, v in row.items()}
        scaled = hasher.transform(
            to_table([scaled_row])
        ).matrix.toarray()
        assert np.allclose(scaled, base * scale, rtol=1e-9, atol=1e-9)

    @given(st.lists(sparse_rows, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_row_independence(self, rows):
        """Each row's encoding is independent of its neighbours."""
        hasher = FeatureHasher(num_features=32)
        together = hasher.transform(to_table(rows)).matrix.toarray()
        for i, row in enumerate(rows):
            alone = hasher.transform(to_table([row])).matrix.toarray()
            assert np.allclose(together[i], alone[0])
