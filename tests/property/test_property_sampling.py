"""Property-based tests for samplers and the μ analysis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.materialization import (
    expected_materialized,
    harmonic_number,
    utilization_random,
    utilization_window,
)
from repro.data.sampling import (
    TimeBasedSampler,
    UniformSampler,
    WindowBasedSampler,
)


@st.composite
def population_and_size(draw):
    count = draw(st.integers(1, 60))
    start = draw(st.integers(0, 100))
    timestamps = list(range(start, start + count))
    size = draw(st.integers(1, 70))
    seed = draw(st.integers(0, 2**20))
    return timestamps, size, seed


SAMPLERS = [
    UniformSampler(),
    WindowBasedSampler(window_size=7),
    TimeBasedSampler(half_life=5.0),
]


class TestSamplerProperties:
    @given(population_and_size(), st.sampled_from(SAMPLERS))
    @settings(max_examples=120, deadline=None)
    def test_subset_unique_sorted_bounded(self, case, sampler):
        timestamps, size, seed = case
        chosen = sampler.sample(
            timestamps, size, np.random.default_rng(seed)
        )
        assert set(chosen) <= set(timestamps)
        assert len(set(chosen)) == len(chosen)
        assert chosen == sorted(chosen)
        assert len(chosen) <= size

    @given(population_and_size())
    @settings(max_examples=80, deadline=None)
    def test_uniform_exact_size_when_possible(self, case):
        timestamps, size, seed = case
        chosen = UniformSampler().sample(
            timestamps, size, np.random.default_rng(seed)
        )
        assert len(chosen) == min(size, len(timestamps))

    @given(population_and_size(), st.integers(1, 20))
    @settings(max_examples=80, deadline=None)
    def test_window_sampler_stays_in_window(self, case, window):
        timestamps, size, seed = case
        sampler = WindowBasedSampler(window_size=window)
        chosen = sampler.sample(
            timestamps, size, np.random.default_rng(seed)
        )
        window_start = timestamps[max(0, len(timestamps) - window)]
        assert all(t >= window_start for t in chosen)

    @given(st.integers(2, 200), st.floats(0.5, 50.0))
    @settings(max_examples=60)
    def test_time_weights_monotone(self, count, half_life):
        weights = TimeBasedSampler(half_life).weights(list(range(count)))
        assert np.all(np.diff(weights) > 0)
        assert np.all(weights > 0)


class TestUtilizationProperties:
    @given(st.integers(1, 5000))
    @settings(max_examples=60)
    def test_harmonic_monotone(self, t):
        assert harmonic_number(t + 1) > harmonic_number(t)

    @given(st.integers(1, 2000), st.integers(0, 2500))
    @settings(max_examples=100)
    def test_random_utilization_in_unit_interval(self, big_n, m):
        value = utilization_random(big_n, m)
        assert 0.0 <= value <= 1.0

    @given(st.integers(2, 1000), st.integers(0, 1200), st.integers(1, 1200))
    @settings(max_examples=100)
    def test_window_utilization_in_unit_interval(self, big_n, m, w):
        value = utilization_window(big_n, m, w)
        assert 0.0 <= value <= 1.0

    @given(st.integers(2, 500), st.integers(0, 498))
    @settings(max_examples=60)
    def test_random_utilization_monotone_in_budget(self, big_n, m):
        assert utilization_random(big_n, m + 1) >= utilization_random(
            big_n, m
        )

    @given(st.integers(2, 500), st.integers(1, 499), st.integers(1, 500))
    @settings(max_examples=60)
    def test_window_at_least_random(self, big_n, m, w):
        """Restricting sampling to a recent window can only raise μ."""
        assert (
            utilization_window(big_n, m, w)
            >= utilization_random(big_n, m) - 1e-12
        )

    @given(
        st.integers(1, 300),
        st.integers(0, 300),
        st.integers(1, 50),
    )
    @settings(max_examples=60)
    def test_expected_materialized_bounds(self, n, m, s):
        value = expected_materialized(n, m, s)
        assert 0.0 <= value <= s
