"""Tests for the file I/O readers and writers."""

import math

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import ValidationError
from repro.io import (
    iter_csv_chunks,
    iter_svmlight_chunks,
    read_csv,
    read_svmlight,
    write_csv,
    write_svmlight,
)


class TestSvmLight:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "data.svm"
        write_svmlight(
            path,
            labels=[1.0, -1.0],
            rows=[{0: 1.5, 3: 2.0}, {7: 0.25}],
        )
        table = read_svmlight(path)
        assert table.num_rows == 2
        # Integral values are written without a decimal point.
        assert table["line"][0] == "1 0:1.5 3:2"
        assert table["line"][1] == "-1 7:0.25"

    def test_roundtrip_through_parser(self, tmp_path):
        from repro.pipeline.components.parser import SvmLightParser

        path = tmp_path / "data.svm"
        rows = [{0: 1.5, 3: float("nan")}, {2: -0.5}]
        write_svmlight(path, labels=[1.0, -1.0], rows=rows)
        parsed = SvmLightParser().transform(read_svmlight(path))
        assert parsed["label"].tolist() == [1.0, -1.0]
        assert parsed["features"][1] == {2: -0.5}
        assert math.isnan(parsed["features"][0][3])

    def test_chunking(self, tmp_path):
        path = tmp_path / "data.svm"
        write_svmlight(
            path, labels=[1.0] * 7, rows=[{0: 1.0}] * 7
        )
        chunks = list(iter_svmlight_chunks(path, rows_per_chunk=3))
        assert [c.num_rows for c in chunks] == [3, 3, 1]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "data.svm"
        path.write_text("# header\n\n1 0:1\n\n-1 1:2\n")
        table = read_svmlight(path)
        assert table.num_rows == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.svm"
        path.write_text("")
        assert read_svmlight(path).num_rows == 0
        assert list(iter_svmlight_chunks(path, 5)) == []

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            write_svmlight(
                tmp_path / "x.svm", labels=[1.0], rows=[]
            )

    def test_negative_index_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            write_svmlight(
                tmp_path / "x.svm", labels=[1.0], rows=[{-1: 2.0}]
            )

    def test_deployment_stream_from_file(self, tmp_path):
        """An svmlight file can drive a deployment directly."""
        from repro.datasets.url import URLStreamGenerator

        generator = URLStreamGenerator(
            num_chunks=2, rows_per_chunk=4, seed=0
        )
        lines = [
            line
            for chunk in generator.stream()
            for line in chunk["line"]
        ]
        path = tmp_path / "stream.svm"
        path.write_text("\n".join(lines) + "\n")
        chunks = list(iter_svmlight_chunks(path, rows_per_chunk=4))
        assert len(chunks) == 2
        assert chunks[0] == generator.chunk(0)


class TestCsv:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "data.csv"
        table = Table(
            {"a": [1.0, 2.0], "b": np.array(["x", "y"], dtype=object)}
        )
        write_csv(path, table)
        restored = read_csv(path)
        assert np.array_equal(restored["a"], [1.0, 2.0])
        assert restored["b"].tolist() == ["x", "y"]

    def test_chunking(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, Table({"a": np.arange(5.0)}))
        chunks = list(iter_csv_chunks(path, rows_per_chunk=2))
        assert [c.num_rows for c in chunks] == [2, 2, 1]
        assert chunks[1]["a"].tolist() == [2.0, 3.0]

    def test_column_subset_and_order(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, Table({"a": [1.0], "b": [2.0], "c": [3.0]}))
        table = read_csv(path, columns=["c", "a"])
        assert table.column_names == ["c", "a"]

    def test_unknown_column_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, Table({"a": [1.0]}))
        with pytest.raises(ValidationError, match="not in header"):
            read_csv(path, columns=["zz"])

    def test_empty_fields_become_nan(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a\n1.5\n\n2.5\n")
        # the blank line is skipped entirely; write one with a field
        path.write_text('a,b\n1.5,x\n,y\n')
        table = read_csv(path)
        assert np.isnan(table["a"][1])
        assert table["b"].tolist() == ["x", "y"]

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValidationError, match="fields"):
            read_csv(path)

    def test_mixed_type_column_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a\n1.0\nbanana\n")
        with pytest.raises(ValidationError, match="non-numeric"):
            read_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("")
        assert read_csv(path).num_rows == 0

    def test_taxi_pipeline_from_csv(self, tmp_path):
        """A CSV extract drives the Taxi pipeline end to end."""
        from repro.datasets.taxi import (
            TaxiStreamGenerator,
            make_taxi_pipeline,
        )

        generator = TaxiStreamGenerator(
            num_chunks=1, rows_per_chunk=20, seed=0
        )
        chunk = generator.chunk(0)
        path = tmp_path / "trips.csv"
        write_csv(path, chunk)
        restored = next(iter_csv_chunks(path, rows_per_chunk=20))
        pipeline = make_taxi_pipeline()
        features = pipeline.update_transform_to_features(restored)
        expected = make_taxi_pipeline().update_transform_to_features(
            chunk
        )
        assert np.allclose(features.matrix, expected.matrix)
