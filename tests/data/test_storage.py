"""Unit tests for the bounded chunk storage."""

import pytest

from repro.data.chunk import ChunkStub, FeatureChunk
from repro.data.storage import ChunkStorage
from repro.exceptions import StorageError
from tests.conftest import make_feature_chunk, make_raw_chunk


class TestRawStorage:
    def test_put_get_roundtrip(self):
        storage = ChunkStorage()
        chunk = make_raw_chunk(0)
        storage.put_raw(chunk)
        assert storage.get_raw(0) is chunk
        assert storage.num_raw == 1

    def test_duplicate_timestamp_rejected(self):
        storage = ChunkStorage()
        storage.put_raw(make_raw_chunk(0))
        with pytest.raises(StorageError, match="already"):
            storage.put_raw(make_raw_chunk(0))

    def test_missing_raw_raises(self):
        with pytest.raises(StorageError, match="not stored"):
            ChunkStorage().get_raw(99)

    def test_raw_capacity_drops_oldest(self):
        storage = ChunkStorage(raw_capacity=2)
        for t in range(3):
            storage.put_raw(make_raw_chunk(t))
        assert storage.raw_timestamps == [1, 2]
        assert storage.stats.raw_dropped == 1
        assert not storage.has_raw(0)

    def test_raw_drop_also_removes_feature_entry(self):
        storage = ChunkStorage(raw_capacity=1)
        storage.put_raw(make_raw_chunk(0))
        storage.put_features(make_feature_chunk(0))
        storage.put_raw(make_raw_chunk(1))
        assert not storage.has_features_entry(0)
        assert storage.num_materialized == 0


class TestFeatureStorage:
    def test_put_get_materialized(self):
        storage = ChunkStorage()
        chunk = make_feature_chunk(0)
        storage.put_features(chunk)
        assert storage.is_materialized(0)
        assert storage.get_features(0) is chunk
        assert storage.stats.feature_hits == 1

    def test_duplicate_materialized_rejected(self):
        storage = ChunkStorage()
        storage.put_features(make_feature_chunk(0))
        with pytest.raises(StorageError, match="already materialized"):
            storage.put_features(make_feature_chunk(0))

    def test_missing_entry_raises(self):
        with pytest.raises(StorageError, match="no feature chunk"):
            ChunkStorage().get_features(1)

    def test_eviction_oldest_first(self):
        storage = ChunkStorage(max_materialized=2)
        for t in range(4):
            storage.put_features(make_feature_chunk(t))
        assert storage.materialized_timestamps == [2, 3]
        # Evicted entries remain as stubs.
        assert storage.has_features_entry(0)
        assert isinstance(storage.get_features(0), ChunkStub)
        assert storage.stats.feature_misses == 1

    def test_zero_budget_materializes_nothing(self):
        storage = ChunkStorage(max_materialized=0)
        storage.put_features(make_feature_chunk(0))
        assert storage.num_materialized == 0
        assert isinstance(storage.get_features(0), ChunkStub)

    def test_byte_budget_evicts(self):
        small = make_feature_chunk(0, rows=2, dim=2)
        storage = ChunkStorage(max_bytes=small.nbytes())
        storage.put_features(small)
        storage.put_features(make_feature_chunk(1, rows=2, dim=2))
        assert storage.num_materialized <= 1

    def test_rematerialization_over_stub_allowed(self):
        storage = ChunkStorage(max_materialized=1)
        storage.put_features(make_feature_chunk(0))
        storage.put_features(make_feature_chunk(1))  # evicts 0
        assert not storage.is_materialized(0)
        storage.put_features(make_feature_chunk(0))  # re-materialize
        assert storage.is_materialized(0)
        # Budget still enforced: chunk 1 got evicted instead.
        assert storage.num_materialized == 1

    def test_explicit_evict(self):
        storage = ChunkStorage()
        storage.put_features(make_feature_chunk(0))
        stub = storage.evict(0)
        assert stub.timestamp == 0
        assert not storage.is_materialized(0)

    def test_evict_non_materialized_raises(self):
        storage = ChunkStorage()
        with pytest.raises(StorageError, match="not materialized"):
            storage.evict(0)

    def test_clear_features(self):
        storage = ChunkStorage()
        for t in range(3):
            storage.put_features(make_feature_chunk(t))
        storage.clear_features()
        assert storage.num_materialized == 0
        assert len(storage.feature_timestamps) == 3

    def test_peek_does_not_count_hits(self):
        storage = ChunkStorage()
        storage.put_features(make_feature_chunk(0))
        storage.peek_features(0)
        assert storage.stats.feature_hits == 0
        assert storage.stats.feature_misses == 0

    def test_materialized_bytes_tracks_evictions(self):
        storage = ChunkStorage(max_materialized=1)
        storage.put_features(make_feature_chunk(0))
        bytes_one = storage.materialized_bytes
        storage.put_features(make_feature_chunk(1))
        assert storage.materialized_bytes == pytest.approx(
            bytes_one, rel=0.5
        )

    def test_invalid_budgets_rejected(self):
        with pytest.raises(StorageError):
            ChunkStorage(max_materialized=-1)
        with pytest.raises(StorageError):
            ChunkStorage(max_bytes=-5)
        with pytest.raises(StorageError):
            ChunkStorage(raw_capacity=0)


class TestStats:
    def test_hit_rate(self):
        storage = ChunkStorage(max_materialized=1)
        storage.put_features(make_feature_chunk(0))
        storage.put_features(make_feature_chunk(1))
        storage.get_features(1)  # hit
        storage.get_features(0)  # miss (stub)
        assert storage.stats.hit_rate() == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert ChunkStorage().stats.hit_rate() == 0.0
