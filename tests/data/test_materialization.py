"""Unit tests for the μ analysis (equations 4 and 5 of the paper)."""

import numpy as np
import pytest

from repro.data.materialization import (
    MaterializationStats,
    empirical_utilization,
    expected_materialized,
    harmonic_number,
    utilization_random,
    utilization_window,
)
from repro.data.sampling import (
    TimeBasedSampler,
    UniformSampler,
    WindowBasedSampler,
)
from repro.exceptions import ValidationError


class TestHarmonicNumber:
    def test_small_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_asymptotic_matches_exact(self):
        exact = harmonic_number(50_000)
        approx = harmonic_number(50_000, exact_below=1)
        assert approx == pytest.approx(exact, rel=1e-9)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            harmonic_number(-1)


class TestExpectedMaterialized:
    def test_hypergeometric_mean(self):
        assert expected_materialized(n=10, m=5, s=4) == pytest.approx(2.0)

    def test_all_materialized_when_small(self):
        assert expected_materialized(n=3, m=5, s=4) == 3.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            expected_materialized(n=0, m=1, s=1)
        with pytest.raises(ValidationError):
            expected_materialized(n=1, m=-1, s=1)
        with pytest.raises(ValidationError):
            expected_materialized(n=1, m=1, s=0)


class TestUtilizationRandom:
    def test_boundary_values(self):
        assert utilization_random(100, 0) == 0.0
        assert utilization_random(100, 100) == 1.0
        assert utilization_random(100, 200) == 1.0

    def test_paper_example(self):
        """§3.2.2: N=12000, m=7200 gives μ ≈ 0.91."""
        assert utilization_random(12_000, 7_200) == pytest.approx(
            0.91, abs=0.01
        )

    def test_monotone_in_budget(self):
        values = [utilization_random(1000, m) for m in (0, 100, 500, 900)]
        assert values == sorted(values)

    def test_matches_direct_sum(self):
        big_n, m = 200, 60
        direct = (
            m + sum(m / n for n in range(m + 1, big_n + 1))
        ) / big_n
        assert utilization_random(big_n, m) == pytest.approx(direct)


class TestUtilizationWindow:
    def test_budget_covers_window(self):
        assert utilization_window(1000, 500, 400) == 1.0

    def test_boundaries(self):
        assert utilization_window(1000, 0, 100) == 0.0
        assert utilization_window(1000, 1000, 100) == 1.0

    def test_window_equal_population_matches_random(self):
        assert utilization_window(500, 100, 500) == pytest.approx(
            utilization_random(500, 100)
        )

    def test_matches_direct_sum(self):
        big_n, m, w = 300, 50, 120
        direct = (
            m
            + sum(m / n for n in range(m + 1, w + 1))
            + (big_n - w) * m / w
        ) / big_n
        assert utilization_window(big_n, m, w) == pytest.approx(direct)

    def test_invalid_window(self):
        with pytest.raises(ValidationError):
            utilization_window(100, 10, 0)


class TestEmpiricalUtilization:
    def test_uniform_matches_theory(self):
        """The Table 4 agreement: empirical ≈ analytical for uniform."""
        big_n, m, s = 600, 120, 20
        empirical = empirical_utilization(
            UniformSampler(), big_n, m, s, rng=0
        )
        theory = utilization_random(big_n, m)
        assert empirical == pytest.approx(theory, abs=0.03)

    def test_window_matches_theory(self):
        big_n, m, s, w = 600, 120, 20, 300
        empirical = empirical_utilization(
            WindowBasedSampler(w), big_n, m, s, rng=0
        )
        theory = utilization_window(big_n, m, w)
        assert empirical == pytest.approx(theory, abs=0.03)

    def test_time_based_beats_uniform(self):
        """§3.2.2's guarantee: recency weighting raises μ."""
        big_n, m, s = 400, 80, 20
        time_mu = empirical_utilization(
            TimeBasedSampler(half_life=big_n / 4), big_n, m, s, rng=0
        )
        uniform_mu = empirical_utilization(
            UniformSampler(), big_n, m, s, rng=0
        )
        assert time_mu > uniform_mu

    def test_zero_budget_gives_zero(self):
        assert empirical_utilization(
            UniformSampler(), 100, 0, 5, rng=0
        ) == 0.0

    def test_sample_every_thins(self):
        value = empirical_utilization(
            UniformSampler(), 200, 40, 10, rng=0, sample_every=10
        )
        assert 0.0 < value <= 1.0

    def test_invalid_sample_every(self):
        with pytest.raises(ValidationError):
            empirical_utilization(
                UniformSampler(), 10, 5, 2, sample_every=0
            )


class TestMaterializationStats:
    def test_record_and_utilization(self):
        stats = MaterializationStats()
        stats.record(sampled=4, materialized=4)
        stats.record(sampled=4, materialized=0)
        assert stats.utilization() == pytest.approx(0.5)
        assert stats.rematerializations == 4
        assert stats.chunks_sampled == 8

    def test_empty_utilization(self):
        assert MaterializationStats().utilization() == 0.0

    def test_invalid_records(self):
        stats = MaterializationStats()
        with pytest.raises(ValidationError):
            stats.record(sampled=0, materialized=0)
        with pytest.raises(ValidationError):
            stats.record(sampled=2, materialized=3)
        with pytest.raises(ValidationError):
            stats.record(sampled=2, materialized=-1)
