"""Unit tests for raw/feature chunks and stubs."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.chunk import ChunkStub, FeatureChunk, RawChunk
from repro.data.table import Table
from repro.exceptions import ValidationError


class TestRawChunk:
    def test_basic_properties(self):
        chunk = RawChunk(timestamp=3, table=Table({"a": [1, 2]}))
        assert chunk.timestamp == 3
        assert chunk.num_rows == 2
        assert chunk.nbytes() > 0

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValidationError, match="timestamp"):
            RawChunk(timestamp=-1, table=Table({"a": [1]}))

    def test_frozen(self):
        chunk = RawChunk(timestamp=0, table=Table({"a": [1]}))
        with pytest.raises(AttributeError):
            chunk.timestamp = 5


class TestFeatureChunk:
    def _dense(self, timestamp=0):
        return FeatureChunk(
            timestamp=timestamp,
            raw_reference=timestamp,
            features=np.ones((3, 2)),
            labels=np.array([1.0, -1.0, 1.0]),
        )

    def test_dense_properties(self):
        chunk = self._dense()
        assert chunk.num_rows == 3
        assert chunk.num_features == 2
        assert not chunk.is_sparse

    def test_sparse_properties(self):
        chunk = FeatureChunk(
            timestamp=0,
            raw_reference=0,
            features=sp.csr_matrix(np.eye(3)),
            labels=np.ones(3),
        )
        assert chunk.is_sparse
        assert chunk.num_features == 3

    def test_nbytes_dense_vs_sparse(self):
        dense = self._dense()
        sparse = FeatureChunk(
            timestamp=0,
            raw_reference=0,
            features=sp.csr_matrix((3, 1000)),
            labels=np.ones(3),
        )
        # An empty sparse matrix stores almost nothing.
        assert sparse.nbytes() < 1000 * 3 * 8
        assert dense.nbytes() >= 3 * 2 * 8

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="rows"):
            FeatureChunk(
                timestamp=0,
                raw_reference=0,
                features=np.ones((3, 2)),
                labels=np.ones(2),
            )

    def test_1d_features_rejected(self):
        with pytest.raises(ValidationError, match="2-D"):
            FeatureChunk(
                timestamp=0,
                raw_reference=0,
                features=np.ones(3),
                labels=np.ones(3),
            )

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValidationError):
            FeatureChunk(
                timestamp=-2,
                raw_reference=0,
                features=np.ones((1, 1)),
                labels=np.ones(1),
            )


class TestChunkStub:
    def test_of_copies_identifiers(self):
        chunk = FeatureChunk(
            timestamp=7,
            raw_reference=7,
            features=np.ones((1, 1)),
            labels=np.ones(1),
        )
        stub = ChunkStub.of(chunk)
        assert stub.timestamp == 7
        assert stub.raw_reference == 7

    def test_stub_is_lightweight(self):
        stub = ChunkStub(timestamp=1, raw_reference=1)
        assert not hasattr(stub, "features")
