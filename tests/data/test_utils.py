"""Unit tests for the shared utilities (rng, timer, validation)."""

import time

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils import (
    Timer,
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    ensure_rng,
    spawn_rng,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 5)
        b = ensure_rng(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_spawn_is_independent(self):
        parent = ensure_rng(0)
        child = spawn_rng(parent)
        assert child is not parent
        # The child stream differs from a same-seed parent's stream.
        fresh = ensure_rng(0)
        spawn_rng(fresh)
        assert not np.array_equal(
            child.integers(0, 10**9, 8),
            ensure_rng(0).integers(0, 10**9, 8),
        )


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        assert first > 0
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first

    def test_double_start_rejected(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError, match="already running"):
            timer.start()
        timer.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running

    def test_running_flag(self):
        timer = Timer()
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running


class TestValidation:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        for bad in (0, -1, float("nan"), float("inf"), "3", True):
            with pytest.raises(ValidationError):
                check_positive(bad, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0.0
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "x")

    def test_check_fraction(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0
        for bad in (-0.01, 1.01):
            with pytest.raises(ValidationError):
                check_fraction(bad, "x")

    def test_check_positive_int(self):
        assert check_positive_int(3, "x") == 3
        for bad in (0, -1, 1.5, True, "2"):
            with pytest.raises(ValidationError):
                check_positive_int(bad, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="my_param"):
            check_positive(-1, "my_param")


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import exceptions

        for name in (
            "ValidationError",
            "SchemaError",
            "PipelineError",
            "NotFittedError",
            "StorageError",
            "SamplingError",
            "SchedulingError",
        ):
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError)

    def test_validation_error_is_value_error(self):
        from repro.exceptions import ValidationError

        assert issubclass(ValidationError, ValueError)

    def test_not_fitted_is_pipeline_error(self):
        from repro.exceptions import NotFittedError, PipelineError

        assert issubclass(NotFittedError, PipelineError)

    def test_persistence_error_in_hierarchy(self):
        from repro.exceptions import ReproError
        from repro.persistence import PersistenceError

        assert issubclass(PersistenceError, ReproError)


class TestImportSurface:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_all_resolves(self):
        import repro.core as core
        import repro.data as data
        import repro.datasets as datasets
        import repro.driftdetect as driftdetect
        import repro.evaluation as evaluation
        import repro.execution as execution
        import repro.io as io
        import repro.ml as ml
        import repro.pipeline as pipeline

        for module in (
            core, data, datasets, driftdetect, evaluation,
            execution, io, ml, pipeline,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
