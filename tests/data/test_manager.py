"""Unit tests for the DataManager (ingestion, sampling, dynamic
materialization)."""

import numpy as np
import pytest

from repro.data.chunk import FeatureChunk, RawChunk
from repro.data.manager import DataManager, SampleRequest
from repro.data.sampling import UniformSampler
from repro.data.storage import ChunkStorage
from repro.data.table import Table
from repro.exceptions import SamplingError, StorageError


def simple_materializer(raw: RawChunk) -> FeatureChunk:
    """Deterministic transform: feature = x column as a 1-col matrix."""
    values = np.asarray(raw.table.column("x"), dtype=np.float64)
    return FeatureChunk(
        timestamp=raw.timestamp,
        raw_reference=raw.timestamp,
        features=values[:, None],
        labels=np.asarray(raw.table.column("label"), dtype=np.float64),
    )


def ingest_chunks(manager: DataManager, count: int) -> None:
    rng = np.random.default_rng(0)
    for __ in range(count):
        table = Table(
            {
                "x": rng.standard_normal(4),
                "label": rng.choice([-1.0, 1.0], size=4),
            }
        )
        raw = manager.ingest(table)
        manager.store_features(simple_materializer(raw))


class TestIngestion:
    def test_timestamps_monotone(self):
        manager = DataManager()
        table = Table({"x": [1.0], "label": [1.0]})
        assert manager.ingest(table).timestamp == 0
        assert manager.ingest(table).timestamp == 1

    def test_store_features_requires_raw(self):
        manager = DataManager()
        orphan = FeatureChunk(
            timestamp=5,
            raw_reference=5,
            features=np.ones((1, 1)),
            labels=np.ones(1),
        )
        with pytest.raises(StorageError, match="not stored"):
            manager.store_features(orphan)

    def test_num_chunks_counts_feature_entries(self):
        manager = DataManager()
        ingest_chunks(manager, 3)
        assert manager.num_chunks == 3


class TestSampling:
    def test_sample_returns_materialized(self):
        manager = DataManager(seed=0)
        ingest_chunks(manager, 6)
        samples = manager.sample(SampleRequest(3), simple_materializer)
        assert len(samples) == 3
        assert all(s.was_materialized for s in samples)
        assert manager.stats.utilization() == 1.0

    def test_sample_rematerializes_evicted(self):
        storage = ChunkStorage(max_materialized=2)
        manager = DataManager(storage=storage, seed=0)
        ingest_chunks(manager, 6)
        samples = manager.sample(SampleRequest(6), simple_materializer)
        assert len(samples) == 6
        rebuilt = [s for s in samples if not s.was_materialized]
        assert len(rebuilt) == 4
        # Rebuilt payloads are correct (same transform).
        for sample in rebuilt:
            raw = storage.get_raw(sample.chunk.raw_reference)
            expected = simple_materializer(raw)
            assert np.array_equal(
                sample.chunk.features, expected.features
            )

    def test_transient_rematerialization_default(self):
        storage = ChunkStorage(max_materialized=2)
        manager = DataManager(storage=storage, seed=0)
        ingest_chunks(manager, 6)
        manager.sample(SampleRequest(6), simple_materializer)
        # The materialized set is still the newest two chunks.
        assert storage.materialized_timestamps == [4, 5]

    def test_keep_rematerialized_caches(self):
        storage = ChunkStorage(max_materialized=2)
        manager = DataManager(
            storage=storage, seed=0, keep_rematerialized=True
        )
        ingest_chunks(manager, 6)
        manager.sample(SampleRequest(6), simple_materializer)
        # Rebuilt chunks were written back (displacing newer ones).
        assert storage.num_materialized == 2

    def test_sample_empty_population_raises(self):
        with pytest.raises(SamplingError, match="no chunks"):
            DataManager().sample(SampleRequest(1), simple_materializer)

    def test_materializer_timestamp_mismatch_rejected(self):
        storage = ChunkStorage(max_materialized=0)
        manager = DataManager(storage=storage, seed=0)
        ingest_chunks(manager, 2)

        def broken(raw: RawChunk) -> FeatureChunk:
            chunk = simple_materializer(raw)
            return FeatureChunk(
                timestamp=chunk.timestamp + 10,
                raw_reference=chunk.raw_reference,
                features=chunk.features,
                labels=chunk.labels,
            )

        with pytest.raises(StorageError, match="timestamp"):
            manager.sample(SampleRequest(2), broken)

    def test_utilization_stats_recorded(self):
        storage = ChunkStorage(max_materialized=3)
        manager = DataManager(storage=storage, seed=1)
        ingest_chunks(manager, 6)
        manager.sample(SampleRequest(6), simple_materializer)
        stats = manager.stats
        assert stats.operations == 1
        assert stats.chunks_sampled == 6
        assert stats.chunks_materialized == 3
        assert stats.utilization() == pytest.approx(0.5)

    def test_dropped_raw_excluded_from_population(self):
        storage = ChunkStorage(raw_capacity=3)
        manager = DataManager(storage=storage, seed=0)
        ingest_chunks(manager, 6)
        samples = manager.sample(SampleRequest(6), simple_materializer)
        assert sorted(s.timestamp for s in samples) == [3, 4, 5]

    def test_invalid_request(self):
        with pytest.raises(SamplingError):
            SampleRequest(0)

    def test_sampler_injected(self):
        manager = DataManager(sampler=UniformSampler(), seed=0)
        assert isinstance(manager.sampler, UniformSampler)
