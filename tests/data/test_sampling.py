"""Unit tests for the sampling strategies."""

import numpy as np
import pytest

from repro.data.sampling import (
    TimeBasedSampler,
    UniformSampler,
    WindowBasedSampler,
    make_sampler,
)
from repro.exceptions import SamplingError, ValidationError


TIMESTAMPS = list(range(20))


class TestUniformSampler:
    def test_sample_size_and_membership(self, rng):
        sampler = UniformSampler()
        chosen = sampler.sample(TIMESTAMPS, 5, rng)
        assert len(chosen) == 5
        assert set(chosen) <= set(TIMESTAMPS)

    def test_without_replacement(self, rng):
        chosen = UniformSampler().sample(TIMESTAMPS, 20, rng)
        assert sorted(chosen) == TIMESTAMPS

    def test_small_population_returns_all(self, rng):
        chosen = UniformSampler().sample([3, 1], 10, rng)
        assert sorted(chosen) == [1, 3]

    def test_empty_population_raises(self, rng):
        with pytest.raises(SamplingError, match="empty"):
            UniformSampler().sample([], 1, rng)

    def test_zero_size_raises(self, rng):
        with pytest.raises(SamplingError, match="size"):
            UniformSampler().sample(TIMESTAMPS, 0, rng)

    def test_uniform_coverage(self):
        """Every chunk should be sampled at a similar frequency."""
        sampler = UniformSampler()
        rng = np.random.default_rng(0)
        counts = np.zeros(20)
        for __ in range(2000):
            for t in sampler.sample(TIMESTAMPS, 5, rng):
                counts[t] += 1
        expected = 2000 * 5 / 20
        assert np.all(np.abs(counts - expected) < expected * 0.25)

    def test_deterministic_given_seed(self):
        sampler = UniformSampler()
        a = sampler.sample(TIMESTAMPS, 5, np.random.default_rng(1))
        b = sampler.sample(TIMESTAMPS, 5, np.random.default_rng(1))
        assert a == b


class TestWindowBasedSampler:
    def test_only_window_sampled(self, rng):
        sampler = WindowBasedSampler(window_size=5)
        for __ in range(50):
            chosen = sampler.sample(TIMESTAMPS, 3, rng)
            assert all(t >= 15 for t in chosen)

    def test_window_larger_than_population(self, rng):
        sampler = WindowBasedSampler(window_size=100)
        chosen = sampler.sample(TIMESTAMPS, 5, rng)
        assert len(chosen) == 5

    def test_small_window_caps_sample(self, rng):
        sampler = WindowBasedSampler(window_size=2)
        chosen = sampler.sample(TIMESTAMPS, 5, rng)
        assert sorted(chosen) == [18, 19]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            WindowBasedSampler(window_size=0)


class TestTimeBasedSampler:
    def test_recent_sampled_more_often(self):
        sampler = TimeBasedSampler(half_life=5.0)
        rng = np.random.default_rng(0)
        counts = np.zeros(20)
        for __ in range(3000):
            for t in sampler.sample(TIMESTAMPS, 3, rng):
                counts[t] += 1
        # Newest chunk must be sampled far more often than the oldest.
        assert counts[19] > counts[0] * 3

    def test_weights_monotonically_increase(self):
        weights = TimeBasedSampler(half_life=10.0).weights(TIMESTAMPS)
        assert np.all(np.diff(weights) > 0)

    def test_half_life_semantics(self):
        weights = TimeBasedSampler(half_life=4.0).weights(TIMESTAMPS)
        # A chunk 4 positions older has half the weight.
        assert weights[-5] == pytest.approx(weights[-1] / 2.0)

    def test_invalid_half_life_rejected(self):
        with pytest.raises(ValidationError):
            TimeBasedSampler(half_life=0.0)


class TestMakeSampler:
    def test_uniform(self):
        assert isinstance(make_sampler("uniform"), UniformSampler)

    def test_window_requires_size(self):
        with pytest.raises(ValidationError, match="window_size"):
            make_sampler("window")
        sampler = make_sampler("window", window_size=4)
        assert sampler.window_size == 4

    def test_time_defaults(self):
        assert isinstance(make_sampler("time"), TimeBasedSampler)
        sampler = make_sampler("time", half_life=9.0)
        assert sampler.half_life == 9.0

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError, match="unknown sampler"):
            make_sampler("zipf")


class TestSamplerContract:
    @pytest.mark.parametrize(
        "sampler",
        [
            UniformSampler(),
            WindowBasedSampler(window_size=8),
            TimeBasedSampler(half_life=6.0),
        ],
        ids=["uniform", "window", "time"],
    )
    def test_returns_sorted_unique(self, sampler, rng):
        chosen = sampler.sample(TIMESTAMPS, 6, rng)
        assert chosen == sorted(set(chosen))

    def test_weights_shape_checked(self, rng):
        class BrokenSampler(UniformSampler):
            def weights(self, timestamps):
                return np.ones(3)

        with pytest.raises(SamplingError, match="shape"):
            BrokenSampler().sample(TIMESTAMPS, 2, rng)

    def test_negative_weights_rejected(self, rng):
        class NegativeSampler(UniformSampler):
            def weights(self, timestamps):
                return -np.ones(len(timestamps))

        with pytest.raises(SamplingError, match="non-negative"):
            NegativeSampler().sample(TIMESTAMPS, 2, rng)

    def test_all_zero_weights_rejected(self, rng):
        class ZeroSampler(UniformSampler):
            def weights(self, timestamps):
                return np.zeros(len(timestamps))

        with pytest.raises(SamplingError, match="zero"):
            ZeroSampler().sample(TIMESTAMPS, 2, rng)
