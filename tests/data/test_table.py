"""Unit tests for the column-oriented Table."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import SchemaError


class TestConstruction:
    def test_empty_table(self):
        table = Table()
        assert table.num_rows == 0
        assert table.num_columns == 0
        assert table.column_names == []

    def test_columns_and_rows(self):
        table = Table({"a": [1, 2, 3], "b": [4.0, 5.0, 6.0]})
        assert table.num_rows == 3
        assert table.num_columns == 2
        assert table.column_names == ["a", "b"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError, match="rows"):
            Table({"a": [1, 2], "b": [1, 2, 3]})

    def test_2d_column_rejected(self):
        with pytest.raises(SchemaError, match="1-D"):
            Table({"a": np.zeros((2, 2))})

    def test_len_matches_num_rows(self):
        assert len(Table({"a": [1, 2]})) == 2

    def test_preserves_insertion_order(self):
        table = Table({"z": [1], "a": [2], "m": [3]})
        assert table.column_names == ["z", "a", "m"]


class TestAccess:
    def test_column_returns_array(self):
        table = Table({"a": [1, 2]})
        assert np.array_equal(table.column("a"), np.array([1, 2]))

    def test_getitem_alias(self):
        table = Table({"a": [1, 2]})
        assert np.array_equal(table["a"], table.column("a"))

    def test_missing_column_names_available(self):
        table = Table({"a": [1]})
        with pytest.raises(SchemaError, match="available.*'a'"):
            table.column("nope")

    def test_contains(self):
        table = Table({"a": [1]})
        assert "a" in table
        assert "b" not in table

    def test_iter_yields_names(self):
        table = Table({"a": [1], "b": [2]})
        assert list(table) == ["a", "b"]


class TestFunctionalUpdates:
    def test_with_column_adds(self):
        table = Table({"a": [1, 2]})
        grown = table.with_column("b", [3, 4])
        assert "b" in grown
        assert "b" not in table  # original untouched

    def test_with_column_replaces(self):
        table = Table({"a": [1, 2]})
        replaced = table.with_column("a", [9, 9])
        assert np.array_equal(replaced["a"], [9, 9])

    def test_with_column_wrong_length(self):
        table = Table({"a": [1, 2]})
        with pytest.raises(SchemaError):
            table.with_column("b", [1, 2, 3])

    def test_with_column_on_empty_table_sets_length(self):
        table = Table().with_column("a", [1, 2, 3])
        assert table.num_rows == 3

    def test_with_columns_bulk(self):
        table = Table({"a": [1]}).with_columns({"b": [2], "c": [3]})
        assert table.column_names == ["a", "b", "c"]

    def test_without_columns(self):
        table = Table({"a": [1], "b": [2]})
        assert table.without_columns(["a"]).column_names == ["b"]

    def test_without_unknown_column_raises(self):
        with pytest.raises(SchemaError, match="unknown"):
            Table({"a": [1]}).without_columns(["zz"])

    def test_select_orders_columns(self):
        table = Table({"a": [1], "b": [2], "c": [3]})
        assert table.select(["c", "a"]).column_names == ["c", "a"]

    def test_filter_rows(self):
        table = Table({"a": [1, 2, 3]})
        kept = table.filter_rows([True, False, True])
        assert np.array_equal(kept["a"], [1, 3])

    def test_filter_rows_wrong_mask_length(self):
        with pytest.raises(SchemaError, match="mask"):
            Table({"a": [1, 2]}).filter_rows([True])

    def test_take(self):
        table = Table({"a": [10, 20, 30]})
        assert np.array_equal(table.take([2, 0])["a"], [30, 10])

    def test_head(self):
        table = Table({"a": [1, 2, 3]})
        assert table.head(2).num_rows == 2


class TestConcatAndConversion:
    def test_concat(self):
        left = Table({"a": [1], "b": [2]})
        right = Table({"a": [3], "b": [4]})
        merged = Table.concat([left, right])
        assert np.array_equal(merged["a"], [1, 3])

    def test_concat_schema_mismatch(self):
        with pytest.raises(SchemaError, match="mismatch"):
            Table.concat([Table({"a": [1]}), Table({"b": [1]})])

    def test_concat_empty_list(self):
        assert Table.concat([]).num_rows == 0

    def test_to_matrix(self):
        table = Table({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        matrix = table.to_matrix()
        assert matrix.shape == (2, 2)
        assert matrix.dtype == np.float64

    def test_to_matrix_column_subset(self):
        table = Table({"a": [1.0], "b": [2.0]})
        assert table.to_matrix(["b"]).tolist() == [[2.0]]

    def test_to_matrix_no_columns(self):
        assert Table({"a": [1.0]}).to_matrix([]).shape == (1, 0)

    def test_to_dict_is_shallow_copy(self):
        table = Table({"a": [1]})
        payload = table.to_dict()
        payload["b"] = np.array([9])
        assert "b" not in table

    def test_equality(self):
        assert Table({"a": [1]}) == Table({"a": [1]})
        assert Table({"a": [1]}) != Table({"a": [2]})
        assert Table({"a": [1]}) != Table({"b": [1]})

    def test_nbytes_positive(self):
        assert Table({"a": np.zeros(8)}).nbytes() > 0


class TestNumValues:
    def test_numeric_counts_cells(self):
        table = Table({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert table.num_values == 4
        assert table.num_cells == 4

    def test_dict_column_counts_entries(self):
        rows = np.empty(2, dtype=object)
        rows[0] = {0: 1.0, 1: 2.0, 2: 3.0}
        rows[1] = {5: 1.0}
        table = Table({"features": rows})
        assert table.num_values == 4
        assert table.num_cells == 2

    def test_string_column_counts_tokens(self):
        lines = np.array(["1 0:1.0 2:3.0", "-1 4:2.0"], dtype=object)
        table = Table({"line": lines})
        assert table.num_values == 3 + 2

    def test_num_values_cached(self):
        table = Table({"a": [1.0, 2.0]})
        assert table.num_values == table.num_values


class TestDigest:
    def test_identical_content_identical_digest(self):
        assert (
            Table({"a": [1.0, 2.0]}).digest()
            == Table({"a": [1.0, 2.0]}).digest()
        )

    def test_value_change_changes_digest(self):
        assert (
            Table({"a": [1.0, 2.0]}).digest()
            != Table({"a": [1.0, 2.5]}).digest()
        )

    def test_column_name_participates(self):
        assert (
            Table({"a": [1.0]}).digest() != Table({"b": [1.0]}).digest()
        )

    def test_dtype_participates(self):
        ints = Table({"a": np.array([1, 2], dtype=np.int32)})
        longs = Table({"a": np.array([1, 2], dtype=np.int64)})
        assert ints.digest() != longs.digest()

    def test_object_columns_supported(self):
        rows = np.empty(2, dtype=object)
        rows[0] = {0: 1.0, 2: 3.0}
        rows[1] = {5: 1.0}
        same = np.empty(2, dtype=object)
        same[0] = {2: 3.0, 0: 1.0}  # key order must not matter
        same[1] = {5: 1.0}
        assert (
            Table({"f": rows}).digest() == Table({"f": same}).digest()
        )

    def test_string_cells_supported(self):
        lines = np.array(["1 0:1.0", "-1 4:2.0"], dtype=object)
        table = Table({"line": lines})
        assert table.digest() == Table({"line": lines.copy()}).digest()

    def test_digest_is_hex_sha256(self):
        digest = Table({"a": [1.0]}).digest()
        assert len(digest) == 64
        int(digest, 16)
