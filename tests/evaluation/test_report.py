"""Unit tests for result reporting."""

import pytest

from repro.core.deployment.base import DeploymentResult
from repro.evaluation.report import (
    downsample,
    format_comparison_table,
    format_series,
    summarize_results,
)
from repro.exceptions import ValidationError


def make_result(name, errors, costs, **counters):
    return DeploymentResult(
        approach=name,
        error_history=list(errors),
        cost_history=list(costs),
        counters=dict(counters),
    )


class TestDownsample:
    def test_short_series_unchanged(self):
        assert downsample([1.0, 2.0], points=10) == [1.0, 2.0]

    def test_long_series_thinned(self):
        series = list(range(100))
        sampled = downsample(series, points=5)
        assert len(sampled) == 5
        assert sampled[0] == 0
        assert sampled[-1] == 99

    def test_invalid_points(self):
        with pytest.raises(ValidationError):
            downsample([1.0], points=1)

    def test_series_exactly_points_long(self):
        series = [1.0, 2.0, 3.0]
        assert downsample(series, points=3) == series

    def test_single_element_series(self):
        assert downsample([4.2], points=5) == [4.2]

    def test_empty_series(self):
        assert downsample([], points=5) == []

    def test_accepts_any_sequence(self):
        assert downsample((1.0, 2.0), points=2) == [1.0, 2.0]


class TestSummarize:
    def test_rows_contain_key_quantities(self):
        results = {
            "online": make_result(
                "online", [0.2, 0.1], [1.0, 2.0], online_updates=2
            ),
        }
        rows = summarize_results(results)
        assert rows[0]["approach"] == "online"
        assert rows[0]["final_error"] == 0.1
        assert rows[0]["average_error"] == pytest.approx(0.15)
        assert rows[0]["total_cost"] == 2.0
        assert rows[0]["count_online_updates"] == 2


class TestFormatting:
    def test_table_renders_aligned(self):
        rows = [
            {"approach": "online", "final_error": 0.123456},
            {"approach": "continuous", "final_error": 0.2},
        ]
        text = format_comparison_table(rows)
        lines = text.splitlines()
        assert "approach" in lines[0]
        assert "0.1235" in text
        assert len(lines) == 4  # header + rule + 2 rows

    def test_table_with_column_subset(self):
        rows = [{"a": 1.0, "b": 2.0}]
        text = format_comparison_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty_rows_rejected(self):
        with pytest.raises(ValidationError):
            format_comparison_table([])

    def test_series_row(self):
        text = format_series("continuous", [0.1] * 50, points=4)
        assert text.startswith("continuous")
        assert text.count("0.1000") == 4

    def test_summary_of_result_without_cost_breakdown(self):
        """A result whose cost_breakdown is None (e.g. built by hand or
        from a partial run) must still summarize and format."""
        result = make_result("online", [0.2, 0.1], [1.0, 2.0])
        assert result.cost_breakdown is None
        rows = summarize_results({"online": result})
        text = format_comparison_table(rows)
        assert "online" in text
        assert "0.1000" in text

    def test_missing_column_renders_empty(self):
        rows = [{"a": 1.0}]
        text = format_comparison_table(rows, columns=["a", "absent"])
        assert "absent" in text.splitlines()[0]
