"""Tests for the multi-seed replication harness."""

import pytest

from repro.core.deployment.base import DeploymentResult
from repro.evaluation.replication import (
    Aggregate,
    format_replicated,
    replicate,
    win_rate,
)
from repro.exceptions import ValidationError
from repro.experiments.common import (
    run_continuous,
    run_online,
    url_scenario,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


class TestAggregate:
    def test_mean_and_std(self):
        aggregate = Aggregate.of([1.0, 2.0, 3.0])
        assert aggregate.mean == pytest.approx(2.0)
        assert aggregate.std == pytest.approx(1.0)
        assert aggregate.values == (1.0, 2.0, 3.0)

    def test_single_value_zero_std(self):
        aggregate = Aggregate.of([5.0])
        assert aggregate.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Aggregate.of([])

    def test_str(self):
        assert "±" in str(Aggregate.of([1.0, 2.0]))


class TestReplicateFake:
    """Replication plumbing on fake runners (no deployments)."""

    @staticmethod
    def _fake_result(error, cost):
        return DeploymentResult(
            approach="fake",
            error_history=[error],
            cost_history=[cost],
        )

    def test_aggregates_per_runner(self):
        def build(seed):
            return seed  # the "scenario" is just the seed

        runners = {
            "low": lambda s: self._fake_result(0.1 + s * 0.01, 1.0),
            "high": lambda s: self._fake_result(0.5 + s * 0.01, 2.0),
        }
        replicated = replicate(build, runners, seeds=[0, 1, 2])
        assert replicated["low"].average_error.mean == pytest.approx(
            0.11
        )
        assert replicated["high"].total_cost.mean == 2.0
        assert len(replicated["low"].results) == 3

    def test_win_rate_paired(self):
        def build(seed):
            return seed

        runners = {
            "a": lambda s: self._fake_result(0.1 if s < 2 else 0.9, 1),
            "b": lambda s: self._fake_result(0.5, 1),
        }
        replicated = replicate(build, runners, seeds=[0, 1, 2])
        assert win_rate(replicated, "a", "b") == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            replicate(lambda s: s, {}, seeds=[0])
        with pytest.raises(ValidationError):
            replicate(lambda s: s, {"a": lambda s: None}, seeds=[])

    def test_format(self):
        replicated = replicate(
            lambda s: s,
            {"only": lambda s: self._fake_result(0.2, 3.0)},
            seeds=[0, 1],
        )
        text = format_replicated(replicated)
        assert "only" in text
        assert "±" in text


class TestReplicateRealScenario:
    def test_two_seed_url_replication(self):
        replicated = replicate(
            lambda seed: url_scenario("test", seed=seed),
            {"online": run_online, "continuous": run_continuous},
            seeds=[1, 2],
        )
        assert set(replicated) == {"online", "continuous"}
        for result in replicated.values():
            assert len(result.results) == 2
            assert 0.0 <= result.average_error.mean <= 1.0
        rate = win_rate(replicated, "continuous", "online")
        assert 0.0 <= rate <= 1.0
