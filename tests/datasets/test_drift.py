"""Unit tests for drift schedules."""

import numpy as np
import pytest

from repro.datasets.drift import AbruptDrift, GradualDrift, NoDrift
from repro.exceptions import ValidationError


class TestNoDrift:
    def test_identity(self, rng):
        weights = rng.standard_normal(10)
        result = NoDrift().apply(weights, 5, rng)
        assert np.array_equal(result, weights)


class TestGradualDrift:
    def test_perturbs_without_mutating(self, rng):
        weights = np.zeros(100)
        drift = GradualDrift(rate=0.1)
        result = drift.apply(weights, 0, rng)
        assert not np.array_equal(result, weights)
        assert np.all(weights == 0)  # input untouched

    def test_step_size_scales_with_rate(self, rng):
        weights = np.zeros(10_000)
        small = GradualDrift(0.01).apply(
            weights, 0, np.random.default_rng(0)
        )
        large = GradualDrift(0.1).apply(
            weights, 0, np.random.default_rng(0)
        )
        assert np.std(large) == pytest.approx(10 * np.std(small))

    def test_zero_rate_is_identity(self, rng):
        weights = rng.standard_normal(5)
        result = GradualDrift(0.0).apply(weights, 0, rng)
        assert np.array_equal(result, weights)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            GradualDrift(-0.1)

    def test_random_walk_variance_grows(self, rng):
        weights = np.zeros(5000)
        drift = GradualDrift(0.1)
        for step in range(25):
            weights = drift.apply(weights, step, rng)
        assert np.std(weights) == pytest.approx(
            0.1 * np.sqrt(25), rel=0.1
        )


class TestAbruptDrift:
    def test_shift_only_at_chosen_chunks(self, rng):
        weights = np.ones(50)
        drift = AbruptDrift(at_chunks=[3], magnitude=1.0)
        assert np.array_equal(drift.apply(weights, 2, rng), weights)
        shifted = drift.apply(weights, 3, rng)
        assert not np.array_equal(shifted, weights)

    def test_full_magnitude_replaces_weights(self, rng):
        weights = np.full(1000, 7.0)
        drift = AbruptDrift(at_chunks=[0], magnitude=1.0)
        shifted = drift.apply(weights, 0, rng)
        assert abs(shifted.mean()) < 1.0  # fresh N(0,1) weights

    def test_partial_magnitude_blends(self):
        weights = np.full(10_000, 4.0)
        drift = AbruptDrift(at_chunks=[0], magnitude=0.5)
        shifted = drift.apply(weights, 0, np.random.default_rng(0))
        assert shifted.mean() == pytest.approx(2.0, abs=0.1)

    def test_multiple_shift_points(self, rng):
        drift = AbruptDrift(at_chunks=[1, 4])
        weights = np.ones(10)
        assert not np.array_equal(
            drift.apply(weights, 4, rng), weights
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            AbruptDrift(at_chunks=[])
        with pytest.raises(ValidationError):
            AbruptDrift(at_chunks=[-1])
        with pytest.raises(ValidationError):
            AbruptDrift(at_chunks=[1], magnitude=0.0)
        with pytest.raises(ValidationError):
            AbruptDrift(at_chunks=[1], magnitude=1.5)
