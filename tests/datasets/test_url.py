"""Unit tests for the synthetic URL stream generator."""

import numpy as np
import pytest

from repro.datasets.drift import GradualDrift, NoDrift
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.exceptions import ValidationError
from repro.pipeline.components.parser import SvmLightParser


def small_generator(**overrides):
    defaults = dict(
        num_chunks=10,
        rows_per_chunk=8,
        base_features=50,
        new_features_per_chunk=3,
        active_per_row=5,
        seed=11,
    )
    defaults.update(overrides)
    return URLStreamGenerator(**defaults)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = small_generator().chunk(4)
        b = small_generator().chunk(4)
        assert a == b

    def test_chunk_access_order_irrelevant(self):
        forward = small_generator()
        chunks_fwd = [forward.chunk(i) for i in (2, 5)]
        backward = small_generator()
        chunks_bwd = [backward.chunk(5), backward.chunk(2)]
        assert chunks_fwd[0] == chunks_bwd[1]
        assert chunks_fwd[1] == chunks_bwd[0]

    def test_different_seed_differs(self):
        a = small_generator(seed=1).chunk(0)
        b = small_generator(seed=2).chunk(0)
        assert a != b

    def test_initial_data_deterministic(self):
        assert (
            small_generator().initial_data(20)[0]
            == small_generator().initial_data(20)[0]
        )


class TestStreamShape:
    def test_stream_length(self):
        chunks = list(small_generator().stream())
        assert len(chunks) == 10
        assert all(c.num_rows == 8 for c in chunks)

    def test_lines_parse(self):
        parser = SvmLightParser()
        table = parser.transform(small_generator().chunk(3))
        assert set(np.unique(table["label"])) <= {-1.0, 1.0}
        for row in table["features"]:
            assert len(row) == 5

    def test_feature_space_grows(self):
        generator = small_generator()
        assert generator.available_features(0) == 50
        assert generator.available_features(9) == 50 + 27
        assert generator.feature_universe == 50 + 30

    def test_late_features_absent_early(self):
        generator = small_generator(recent_feature_bias=0.0)
        parser = SvmLightParser()
        early = parser.transform(generator.chunk(0))
        max_early = max(
            max(row) for row in early["features"] if row
        )
        assert max_early < generator.available_features(0)

    def test_recent_bias_shifts_indices_late(self):
        biased = small_generator(
            recent_feature_bias=0.9, recent_pool=10
        )
        parser = SvmLightParser()
        late = parser.transform(biased.chunk(9))
        available = biased.available_features(9)
        recent = sum(
            1
            for row in late["features"]
            for index in row
            if index >= available - 10
        )
        total = sum(len(row) for row in late["features"])
        assert recent / total > 0.5

    def test_missing_values_appear(self):
        generator = small_generator(missing_rate=0.5, seed=3)
        parser = SvmLightParser()
        table = parser.transform(generator.chunk(0))
        nan_count = sum(
            1
            for row in table["features"]
            for value in row.values()
            if value != value
        )
        assert nan_count > 0

    def test_no_missing_when_rate_zero(self):
        generator = small_generator(missing_rate=0.0)
        parser = SvmLightParser()
        table = parser.transform(generator.chunk(0))
        assert all(
            value == value
            for row in table["features"]
            for value in row.values()
        )


class TestConcept:
    def test_labels_learnable_without_drift_or_noise(self):
        """A linear model must fit a no-drift, no-noise stream."""
        from repro.ml.models import LinearSVM
        from repro.ml.optim import Adam
        from repro.ml.regularizers import L2
        from repro.ml.sgd import SGDTrainer
        from repro.pipeline.component import union_features

        generator = small_generator(
            drift=NoDrift(), label_noise=0.0, missing_rate=0.0,
            num_chunks=10, rows_per_chunk=40,
        )
        pipeline = make_url_pipeline(hash_features=256)
        parts = [
            pipeline.update_transform_to_features(chunk)
            for chunk in generator.stream()
        ]
        batch = union_features(parts)
        model = LinearSVM(256, regularizer=L2(1e-4))
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            SGDTrainer(model, Adam(0.05)).train(
                batch.matrix, batch.labels,
                max_iterations=600, tolerance=1e-9, seed=0,
            )
        accuracy = float(
            np.mean(model.predict(batch.matrix) == batch.labels)
        )
        assert accuracy > 0.85

    def test_drift_changes_concept(self):
        drifting = small_generator(drift=GradualDrift(0.5))
        static = small_generator(drift=NoDrift())
        # Same seed: chunk 0 labels may already differ after one drift
        # step is applied, but chunk 9 must differ a lot more.
        assert drifting.chunk(9) != static.chunk(9)


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            small_generator(num_chunks=0)
        with pytest.raises(ValidationError):
            small_generator(missing_rate=1.5)
        with pytest.raises(ValidationError):
            small_generator(new_features_per_chunk=-1)
        with pytest.raises(ValidationError):
            small_generator(recent_feature_bias=-0.1)

    def test_chunk_index_bounds(self):
        generator = small_generator()
        with pytest.raises(ValidationError):
            generator.chunk(10)
        with pytest.raises(ValidationError):
            generator.available_features(-1)


class TestPipelineFactory:
    def test_component_names_match_paper(self):
        pipeline = make_url_pipeline(64)
        assert pipeline.component_names == [
            "input_parser", "imputer", "scaler", "hasher",
        ]

    def test_end_to_end(self):
        pipeline = make_url_pipeline(64)
        features = pipeline.update_transform_to_features(
            small_generator().chunk(0)
        )
        assert features.num_features == 64
        assert features.num_rows == 8
