"""Unit tests for the synthetic taxi stream generator."""

import numpy as np
import pytest

from repro.datasets.taxi import (
    MAX_TRIP_SECONDS,
    MIN_TRIP_SECONDS,
    TAXI_FEATURE_COLUMNS,
    TaxiStreamGenerator,
    make_taxi_pipeline,
)


def small_generator(**overrides):
    defaults = dict(num_chunks=6, rows_per_chunk=30, seed=5)
    defaults.update(overrides)
    return TaxiStreamGenerator(**defaults)


class TestDeterminism:
    def test_same_seed_same_chunks(self):
        assert small_generator().chunk(2) == small_generator().chunk(2)

    def test_different_seeds_differ(self):
        a = small_generator(seed=1).chunk(0)
        b = small_generator(seed=2).chunk(0)
        assert a != b


class TestStreamShape:
    def test_schema(self):
        table = small_generator().chunk(0)
        assert set(table.column_names) == {
            "pickup_datetime", "dropoff_datetime",
            "pickup_lat", "pickup_lon",
            "dropoff_lat", "dropoff_lon",
            "passenger_count",
        }

    def test_chunks_advance_hourly(self):
        generator = small_generator()
        first = generator.chunk(0)["pickup_datetime"]
        second = generator.chunk(1)["pickup_datetime"]
        # Pickups stay inside their own hour.
        assert first.min() >= generator.start_epoch
        assert first.max() < generator.start_epoch + 3600
        assert second.min() >= generator.start_epoch + 3600
        assert second.max() < generator.start_epoch + 7200

    def test_durations_positive(self):
        table = small_generator(anomaly_rate=0.0).chunk(0)
        durations = (
            table["dropoff_datetime"] - table["pickup_datetime"]
        )
        assert np.all(durations > 0)

    def test_stream_length(self):
        assert len(list(small_generator().stream())) == 6

    def test_chunk_bounds(self):
        with pytest.raises(ValueError):
            small_generator().chunk(6)


class TestAnomalies:
    def test_anomalies_injected(self):
        generator = small_generator(
            anomaly_rate=0.5, rows_per_chunk=200
        )
        table = generator.chunk(0)
        durations = (
            table["dropoff_datetime"] - table["pickup_datetime"]
        )
        zero_distance = (
            (table["pickup_lat"] == table["dropoff_lat"])
            & (table["pickup_lon"] == table["dropoff_lon"])
        )
        anomalous = (
            (durations > MAX_TRIP_SECONDS)
            | (durations < MIN_TRIP_SECONDS)
            | zero_distance
        )
        assert anomalous.sum() > 20

    def test_pipeline_filters_them(self):
        generator = small_generator(
            anomaly_rate=0.5, rows_per_chunk=200
        )
        pipeline = make_taxi_pipeline()
        features = pipeline.update_transform_to_features(
            generator.chunk(0)
        )
        assert features.num_rows < 200
        detector = pipeline.component("anomaly_detector")
        assert detector.rows_dropped > 0


class TestConcept:
    def test_log_duration_learnable(self):
        """Linear regression must reach near the noise floor."""
        import warnings

        from repro.ml.models import LinearRegression
        from repro.ml.optim import RMSProp
        from repro.ml.regularizers import L2
        from repro.ml.sgd import SGDTrainer

        generator = small_generator(noise_std=0.1)
        pipeline = make_taxi_pipeline()
        table = generator.initial_data(1500)[0]
        features = pipeline.update_transform_to_features(table)
        model = LinearRegression(
            len(TAXI_FEATURE_COLUMNS), regularizer=L2(1e-4)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            SGDTrainer(model, RMSProp(0.05)).train(
                features.matrix, features.labels,
                max_iterations=800, tolerance=1e-9, seed=0,
            )
        rmse = float(
            np.sqrt(
                np.mean(
                    (model.predict(features.matrix) - features.labels)
                    ** 2
                )
            )
        )
        assert rmse < 0.2

    def test_stationary_concept(self):
        """Early and late chunks share the duration distribution."""
        generator = small_generator(
            num_chunks=40, rows_per_chunk=100, anomaly_rate=0.0
        )
        early = generator.chunk(0)
        late = generator.chunk(39)
        early_mean = np.log1p(
            early["dropoff_datetime"] - early["pickup_datetime"]
        ).mean()
        late_mean = np.log1p(
            late["dropoff_datetime"] - late["pickup_datetime"]
        ).mean()
        assert early_mean == pytest.approx(late_mean, abs=0.3)


class TestPipelineFactory:
    def test_eleven_features(self):
        pipeline = make_taxi_pipeline()
        features = pipeline.update_transform_to_features(
            small_generator().chunk(0)
        )
        assert features.num_features == len(TAXI_FEATURE_COLUMNS) == 11

    def test_labels_in_log_space(self):
        generator = small_generator(anomaly_rate=0.0)
        pipeline = make_taxi_pipeline()
        table = generator.chunk(0)
        features = pipeline.update_transform_to_features(table)
        durations = (
            table["dropoff_datetime"] - table["pickup_datetime"]
        )
        assert features.labels == pytest.approx(np.log1p(durations))

    def test_component_names(self):
        names = make_taxi_pipeline().component_names
        assert names[0] == "input_parser"
        assert "anomaly_detector" in names
        assert names[-1] == "assembler"
