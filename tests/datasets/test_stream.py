"""Unit tests for stream utilities."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.datasets.stream import chunk_table, take
from repro.exceptions import ValidationError


class TestChunkTable:
    def test_even_split(self):
        table = Table({"a": np.arange(6)})
        chunks = chunk_table(table, 2)
        assert [c.num_rows for c in chunks] == [2, 2, 2]
        assert np.array_equal(chunks[1]["a"], [2, 3])

    def test_ragged_tail(self):
        table = Table({"a": np.arange(5)})
        chunks = chunk_table(table, 2)
        assert [c.num_rows for c in chunks] == [2, 2, 1]

    def test_chunk_larger_than_table(self):
        table = Table({"a": np.arange(3)})
        chunks = chunk_table(table, 100)
        assert len(chunks) == 1
        assert chunks[0].num_rows == 3

    def test_empty_table(self):
        assert chunk_table(Table({"a": np.array([])}), 4) == []

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            chunk_table(Table({"a": [1]}), 0)


class TestTake:
    def test_limits_stream(self):
        stream = (Table({"a": [i]}) for i in range(100))
        taken = list(take(stream, 3))
        assert len(taken) == 3
        assert taken[2]["a"][0] == 2

    def test_short_stream(self):
        stream = (Table({"a": [i]}) for i in range(2))
        assert len(list(take(stream, 10))) == 2

    def test_zero(self):
        assert list(take(iter([]), 0)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            list(take(iter([]), -1))
