"""Golden blame-query tests on experiment 5.

The operational scenario the ledger exists for: every third candidate
the trainer emits is corrupted; blame on the corrupted version must
name exactly the training chunks (with sampling weights) that fed it,
and trace from any of those chunks must reach the corrupted version.
"""

import pytest

from repro.experiments.common import url_scenario
from repro.experiments.exp5_serving import (
    POLICIES,
    default_gate_config,
    produce_candidates,
    run_policy,
)
from repro.obs import Telemetry

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)

CORRUPT_EVERY = 3


@pytest.fixture(scope="module")
def exp5_run(tmp_path_factory):
    telemetry = Telemetry()
    ledger = telemetry.attach_ledger()
    scenario = url_scenario("test")
    workdir = tmp_path_factory.mktemp("exp5-lineage")
    initial, candidates = produce_candidates(
        scenario, corrupt_every=CORRUPT_EVERY, telemetry=telemetry
    )
    results = {
        policy: run_policy(
            scenario,
            policy,
            initial,
            candidates,
            workdir,
            gate_config=default_gate_config(scenario),
            telemetry=telemetry,
        )
        for policy in POLICIES
    }
    return ledger, results, candidates


def blind_version(index):
    """Registry version of candidate ``index`` in the blind registry
    (v0001 is the initial model; candidates land at v0002+)."""
    return f"v{index + 2:04d}"


class TestBlameGolden:
    def test_corrupted_candidates_exist(self, exp5_run):
        __, __, candidates = exp5_run
        corrupted = [c for c in candidates if c.corrupted]
        assert corrupted, "scenario must produce corrupted candidates"

    def test_blame_names_training_chunks_of_corrupted_candidate(
        self, exp5_run
    ):
        ledger, __, candidates = exp5_run
        for index, candidate in enumerate(candidates):
            if not candidate.corrupted:
                continue
            version = f"model:blind:{blind_version(index)}"
            report = ledger.blame(version)
            assert report["version"] == version
            # The snapshot's own training burst is in the derivation.
            assert candidate.lineage_event in report["trainings"]
            # Chunks fed by that burst appear with positive weight.
            fed = {
                edge["src"]: edge["attrs"]["weight"]
                for edge in ledger._in_edges(
                    candidate.lineage_event, "fed"
                )
            }
            assert fed, "corrupted candidate must have training chunks"
            reported = {
                row["chunk"]: row["weight"]
                for row in report["chunks"]
            }
            for chunk, weight in fed.items():
                assert chunk in reported
                assert reported[chunk] >= weight - 1e-12

    def test_per_training_weights_sum_to_one(self, exp5_run):
        ledger, __, candidates = exp5_run
        for node in ledger.nodes("training"):
            weights = [
                edge["attrs"]["weight"]
                for edge in ledger._in_edges(node["id"], "fed")
            ]
            assert sum(weights) == pytest.approx(1.0)

    def test_trace_reaches_corrupted_version(self, exp5_run):
        ledger, __, candidates = exp5_run
        index, candidate = next(
            (i, c) for i, c in enumerate(candidates) if c.corrupted
        )
        fed = ledger._in_edges(candidate.lineage_event, "fed")
        chunk = fed[0]["src"]
        report = ledger.trace(chunk)
        assert f"model:blind:{blind_version(index)}" in report["models"]

    def test_all_policies_share_training_provenance(self, exp5_run):
        ledger, results, candidates = exp5_run
        # The same candidate registered under blind and gated links to
        # the same training node: one trainer, three registries.
        index = next(
            i for i, c in enumerate(candidates)
            if c.lineage_event is not None
        )
        version = blind_version(index)
        blind = ledger.blame(f"model:blind:{version}")
        gated = ledger.blame(f"model:gated:{version}")
        assert blind["trainings"] == gated["trainings"]

    def test_registry_lifecycle_recorded(self, exp5_run):
        ledger, results, __ = exp5_run
        assert ledger.live_version("frozen") == "model:frozen:v0001"
        blind_promotes = results["blind"].transitions.get("promote", 0)
        # blind promotes every candidate: live = last registered.
        assert ledger.live_version("blind") == (
            f"model:blind:v{blind_promotes + 1:04d}"
        )
