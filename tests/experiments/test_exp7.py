"""Experiment 7: rollout under synthetic traffic, end to end.

One full test-scale run covers the acceptance criteria: admission
control sheds during the burst, the SLO alerts fire *and* resolve,
proactive training keeps running between phases, and both identity
checks (batched vs row-at-a-time, fresh-endpoint replay) hold.
"""

import pytest

from repro.experiments.common import url_scenario
from repro.experiments.exp7_traffic import (
    PHASES,
    default_traffic_config,
    headline_claims,
    run_traffic_experiment,
)
from repro.obs import MonitorConfig, Telemetry
from repro.traffic import monitor_rules_for_traffic

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


@pytest.fixture(scope="module")
def exp7_run(tmp_path_factory):
    scenario = url_scenario("test")
    config = default_traffic_config(scenario)
    telemetry = Telemetry()
    monitor = telemetry.attach_monitor(
        rules=monitor_rules_for_traffic(
            p99_budget=config.p99_budget,
            shed_per_window=config.shed_per_window,
        ),
        config=MonitorConfig(),
    )
    result = run_traffic_experiment(
        scenario,
        config=config,
        telemetry=telemetry,
        workdir=tmp_path_factory.mktemp("exp7"),
    )
    telemetry.close()
    return result, monitor.health()


class TestPhases:
    def test_all_three_phases_ran(self, exp7_run):
        result, __ = exp7_run
        assert set(result.phases) == set(PHASES)
        assert result.phases["steady"].mode == "shadow"
        assert result.phases["spike"].mode == "canary"
        assert result.phases["recovery"].mode == "canary"

    def test_burst_sheds_but_steady_does_not(self, exp7_run):
        result, __ = exp7_run
        assert result.phases["spike"].result.report.shed > 0
        assert result.phases["steady"].result.report.shed == 0
        assert result.phases["recovery"].result.report.shed == 0

    def test_spike_degrades_p99(self, exp7_run):
        result, __ = exp7_run
        claims = headline_claims(result)
        assert claims["spike_vs_steady_p99_ratio"] > 1.0
        assert claims["spike_p99_latency"] > claims["steady_p99_latency"]

    def test_training_continued_during_run(self, exp7_run):
        result, __ = exp7_run
        assert result.training_chunks > 0
        assert result.training_cost > 0.0


class TestIdentity:
    def test_batched_equals_row_at_a_time(self, exp7_run):
        result, __ = exp7_run
        assert result.bit_identical

    def test_replay_is_byte_identical(self, exp7_run):
        result, __ = exp7_run
        assert result.replay_identical


class TestAlerts:
    def test_slo_and_shed_alerts_fire_and_resolve(self, exp7_run):
        __, health = exp7_run
        assert health["fired"] >= 2
        assert health["resolved"] == health["fired"]
        by_rule = {i["rule"] for i in health["incidents"]}
        assert "slo_p99_latency" in by_rule
        assert "traffic_shed_spike" in by_rule

    def test_no_flapping(self, exp7_run):
        """The tuned rule set raises one incident per rule, not a
        storm of fire/resolve cycles."""
        __, health = exp7_run
        assert len(health["incidents"]) <= 4


class TestClaims:
    def test_claims_are_complete(self, exp7_run):
        result, __ = exp7_run
        claims = headline_claims(result)
        assert claims["spike_shed"] > 0
        assert claims["batched_equals_row_at_a_time"] == 1.0
        assert claims["replay_byte_identical"] == 1.0
        assert claims["mean_batch_size"] > 1.0
        assert claims["training_chunks_during_run"] == float(
            result.training_chunks
        )
