"""Unit tests for scenario builders and helpers."""

import pytest

from repro.exceptions import ValidationError
from repro.experiments.common import (
    Scenario,
    taxi_scenario,
    url_scenario,
)
from repro.ml.optim import RMSProp


class TestScenarioBuilders:
    def test_url_test_scale(self):
        scenario = url_scenario("test")
        assert scenario.metric == "classification"
        assert scenario.num_chunks == 40
        chunks = list(scenario.make_stream())
        assert len(chunks) == 40

    def test_taxi_test_scale(self):
        scenario = taxi_scenario("test")
        assert scenario.metric == "regression"
        assert scenario.num_chunks == 30

    def test_bench_scale_larger(self):
        assert (
            url_scenario("bench").num_chunks
            > url_scenario("test").num_chunks
        )

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            url_scenario("huge")

    def test_streams_reproducible(self):
        scenario = url_scenario("test")
        first = list(scenario.make_stream())
        second = list(scenario.make_stream())
        assert first[5] == second[5]

    def test_factories_independent(self):
        scenario = url_scenario("test")
        assert scenario.make_model() is not scenario.make_model()
        assert scenario.make_pipeline() is not scenario.make_pipeline()


class TestScenarioHelpers:
    def test_with_continuous_override(self):
        scenario = url_scenario("test")
        adapted = scenario.with_continuous(sample_size_chunks=17)
        assert adapted.continuous_config.sample_size_chunks == 17
        # Original untouched.
        assert scenario.continuous_config.sample_size_chunks != 17

    def test_with_optimizer(self):
        scenario = url_scenario("test").with_optimizer(
            "rmsprop", learning_rate=0.2
        )
        optimizer = scenario.make_optimizer()
        assert isinstance(optimizer, RMSProp)
        assert optimizer.learning_rate == 0.2

    def test_with_regularization(self):
        scenario = url_scenario("test").with_regularization(0.5)
        model = scenario.make_model()
        assert model.regularizer.strength == 0.5

    def test_scenario_is_dataclass_copyable(self):
        scenario = url_scenario("test")
        assert isinstance(scenario, Scenario)
        assert scenario.online_batch_rows == 1
