"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["exp1"])
        assert args.dataset == "url"
        assert args.scale == "test"
        assert args.seed is None

    def test_scenario_options(self):
        args = build_parser().parse_args(
            ["fig6", "--dataset", "taxi", "--scale", "bench",
             "--seed", "5"]
        )
        assert args.dataset == "taxi"
        assert args.scale == "bench"
        assert args.seed == 5

    def test_table4_options(self):
        args = build_parser().parse_args(
            ["table4", "--chunks", "500", "--sample-size", "10"]
        )
        assert args.chunks == 500
        assert args.sample_size == 10

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp1", "--dataset", "mnist"])

    def test_exp1_trace_option(self):
        args = build_parser().parse_args(
            ["exp1", "--trace", "run.jsonl"]
        )
        assert args.trace == "run.jsonl"
        assert build_parser().parse_args(["exp1"]).trace is None

    def test_obs_options(self):
        args = build_parser().parse_args(
            ["obs", "tail", "run.jsonl", "--limit", "7"]
        )
        assert args.action == "tail"
        assert args.trace == "run.jsonl"
        assert args.limit == 7

    def test_obs_invalid_action_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "explode", "run.jsonl"])

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--registry", "reg", "--mode", "shadow",
             "--fraction", "0.25", "--trace", "t.jsonl"]
        )
        assert args.registry == "reg"
        assert args.mode == "shadow"
        assert args.fraction == 0.25
        assert args.trace == "t.jsonl"
        defaults = build_parser().parse_args(["serve"])
        assert defaults.registry is None
        assert defaults.mode == "canary"

    def test_serve_invalid_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--mode", "yolo"])

    def test_registry_options(self):
        args = build_parser().parse_args(
            ["registry", "promote", "v0002", "--registry", "reg",
             "--reason", "ship it"]
        )
        assert args.action == "promote"
        assert args.version == "v0002"
        assert args.registry_dir == "reg"
        assert args.reason == "ship it"

    def test_registry_requires_directory(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["registry", "list"])

    def test_exp5_scenario_options(self):
        args = build_parser().parse_args(
            ["exp5", "--dataset", "taxi", "--scale", "test"]
        )
        assert args.dataset == "taxi"
        assert args.scale == "test"


class TestExecution:
    """End-to-end CLI runs at test scale (smallest possible)."""

    def test_exp1(self, capsys):
        assert main(["exp1", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "final-cost ratio" in out
        assert "continuous" in out

    def test_table4(self, capsys):
        assert main(
            ["table4", "--chunks", "300", "--sample-size", "10",
             "--sample-every", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "uniform" in out
        assert "time" in out

    def test_fig6(self, capsys):
        assert main(
            ["fig6", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        assert "average error" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(
            ["fig8", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        assert "cost ratio" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(
            ["table3", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        assert "adadelta" in capsys.readouterr().out


class TestExecutionExtended:
    """The remaining CLI commands, at the smallest usable scale."""

    def test_fig5(self, capsys):
        assert main(
            ["fig5", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "initial-training winner" in out

    def test_fig7(self, capsys):
        assert main(
            ["fig7", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "NoOptimization" in out

    def test_seed_override(self, capsys):
        assert main(
            ["fig6", "--dataset", "taxi", "--scale", "test",
             "--seed", "99"]
        ) == 0
        assert "average error" in capsys.readouterr().out


class TestObservabilityCommands:
    """exp1 --trace plus the obs summary/tail subcommands."""

    def test_exp1_trace_then_summarize_and_tail(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["exp1", "--scale", "test", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert "spans (virtual-clock durations" in out
        assert trace.exists()

        assert main(["obs", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        # The trace must cover engine, platform, scheduler, cache,
        # and sampler instrumentation.
        assert "engine.online_pass" in out
        assert "platform.proactive_training" in out
        assert "scheduler.decision" in out
        assert "cache.hits" in out
        assert "sampler.chunk_age" in out

        assert main(["obs", "tail", str(trace), "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 5

    def test_obs_summary_missing_file_raises(self, tmp_path):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            main(["obs", "summary", str(tmp_path / "absent.jsonl")])


class TestServingCommands:
    """repro serve + the registry subcommands, sharing one registry."""

    def test_serve_then_operate_registry(self, capsys, tmp_path):
        root = tmp_path / "registry"
        assert main(
            ["serve", "--dataset", "url", "--scale", "test",
             "--registry", str(root)]
        ) == 0
        out = capsys.readouterr().out
        assert "bootstrapping the initial version" in out
        assert "serving error" in out
        assert "v0001" in out
        assert (root / "registry.json").exists()

        assert main(["registry", "list", "--registry", str(root)]) == 0
        out = capsys.readouterr().out
        assert "live: v" in out
        live = [
            line for line in out.splitlines()
            if line.startswith("live: ")
        ][0].split()[-1]

        assert main(
            ["registry", "show", live, "--registry", str(root)]
        ) == 0
        out = capsys.readouterr().out
        assert "checksum" in out
        assert "status: live" in out

        assert main(
            ["registry", "gc", "--registry", str(root), "--keep", "0"]
        ) == 0
        assert "collected" in capsys.readouterr().out

    def test_serve_resumes_existing_registry(self, capsys, tmp_path):
        root = tmp_path / "registry"
        assert main(
            ["serve", "--dataset", "url", "--scale", "test",
             "--registry", str(root)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["serve", "--dataset", "url", "--scale", "test",
             "--registry", str(root)]
        ) == 0
        out = capsys.readouterr().out
        assert "resuming: v" in out

    def test_registry_missing_manifest_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="no registry manifest"):
            main(["registry", "list", "--registry", str(tmp_path)])

    def test_registry_show_requires_version(self, tmp_path, capsys):
        root = tmp_path / "registry"
        assert main(
            ["serve", "--dataset", "url", "--scale", "test",
             "--registry", str(root)]
        ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="VERSION"):
            main(["registry", "show", "--registry", str(root)])


class TestExp5Command:
    def test_exp5_url(self, capsys):
        assert main(
            ["exp5", "--dataset", "url", "--scale", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "frozen" in out
        assert "blind" in out
        assert "gated" in out
        assert "gated vs blind improvement" in out


class TestReliabilityParsers:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.approach == "continuous"
        assert args.checkpoint_dir is None
        assert args.cadence == 10
        assert args.keep == 3
        assert args.kill_at is None
        assert args.sigkill_at is None
        assert args.retry is False

    def test_run_reliability_options(self):
        args = build_parser().parse_args(
            ["run", "--approach", "online", "--checkpoint-dir",
             "/tmp/ck", "--cadence", "5", "--keep", "2",
             "--kill-at", "12", "--retry"]
        )
        assert args.approach == "online"
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.cadence == 5
        assert args.keep == 2
        assert args.kill_at == 12
        assert args.retry is True

    def test_exp6_options(self):
        args = build_parser().parse_args(
            ["exp6", "--kill-after", "15", "--cadences", "3", "5"]
        )
        assert args.kill_after == 15
        assert args.cadences == [3, 5]

    def test_recover_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="checkpoint-dir"):
            main(["recover", "--dataset", "url", "--scale", "test"])


class TestRunRecoverCommands:
    def test_kill_then_recover_round_trip(self, tmp_path, capsys):
        """The CLI quick-start: crash exits 17, recover finishes."""
        base = [
            "--approach", "online", "--dataset", "url",
            "--scale", "test", "--checkpoint-dir", str(tmp_path),
            "--cadence", "4",
        ]
        with pytest.raises(SystemExit) as crash:
            main(["run", *base, "--kill-at", "9"])
        assert crash.value.code == 17
        out = capsys.readouterr().out
        assert "crashed: injected crash" in out
        assert "last checkpoint at chunk 8" in out
        assert list(tmp_path.glob("ckpt-*.ckpt"))

        assert main(["recover", *base]) == 0
        out = capsys.readouterr().out
        assert "recovered from checkpoint at chunk 8" in out
        assert "chunks=40" in out

    def test_uninterrupted_run(self, capsys):
        assert main(
            ["run", "--approach", "online", "--dataset", "url",
             "--scale", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "final_error" in out


class TestExp6Command:
    def test_exp6_claims(self, capsys):
        assert main(
            ["exp6", "--dataset", "url", "--scale", "test",
             "--cadences", "4", "13", "--kill-after", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "redo_monotone=1" in out
        assert "all_identical=1" in out
        assert "retry_masked=1" in out


class TestPerfParser:
    def test_defaults(self):
        args = build_parser().parse_args(["perf", "profile"])
        assert args.action == "profile"
        assert args.approach == "continuous"
        assert args.store == "benchmarks/baselines"
        assert args.against is None
        assert args.wall_budget == 0.5
        assert args.window == 5
        assert args.gate_profile is False
        assert args.record_after_check is False

    def test_options(self):
        args = build_parser().parse_args(
            ["perf", "check", "--dataset", "taxi", "--approach",
             "online", "--against", "./b", "--wall-budget", "2.0",
             "--window", "3", "--gate-profile", "--record"]
        )
        assert args.against == "./b"
        assert args.wall_budget == 2.0
        assert args.window == 3
        assert args.gate_profile is True
        assert args.record_after_check is True

    def test_invalid_action_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "flamegraph"])

    def test_profile_option_on_experiments(self):
        for command in ("exp1", "fig5", "fig6", "fig7", "fig8",
                        "exp5", "exp6"):
            args = build_parser().parse_args(
                [command, "--profile", "p.json"]
            )
            assert args.profile == "p.json"


class TestPerfCommands:
    """The perf observatory loop: profile, record, check, report."""

    def test_profile_prints_tree_and_digest(self, capsys, tmp_path):
        json_out = tmp_path / "profile.json"
        collapsed = tmp_path / "profile.folded"
        assert main(
            ["perf", "profile", "--scale", "test",
             "--json", str(json_out), "--collapsed", str(collapsed)]
        ) == 0
        out = capsys.readouterr().out
        assert "platform.observe" in out
        assert "profile digest:" in out
        assert "self cost by subsystem:" in out
        assert json_out.exists()
        assert collapsed.read_text().startswith("run;")

    def test_record_check_report_loop(self, capsys, tmp_path):
        store = str(tmp_path / "baselines")
        assert main(
            ["perf", "record", "--scale", "test", "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "recorded run_url_test_continuous" in out

        # Identical seed: every exact metric must gate clean.
        assert main(
            ["perf", "check", "--scale", "test", "--against", store]
        ) == 0
        out = capsys.readouterr().out
        assert "OK — no regressions" in out
        assert "profile_digest" in out

        assert main(
            ["perf", "report", "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "trajectory: run_url_test_continuous" in out
        assert "1 record(s)" in out

    def test_check_on_empty_store_founds_baseline(self, capsys, tmp_path):
        store = str(tmp_path / "empty")
        assert main(
            ["perf", "check", "--scale", "test", "--against", store]
        ) == 0
        out = capsys.readouterr().out
        assert "no baseline trajectory yet" in out

    def test_check_flags_changed_workload(self, capsys, tmp_path):
        store = str(tmp_path / "baselines")
        assert main(
            ["perf", "record", "--scale", "test", "--store", store]
        ) == 0
        capsys.readouterr()
        # A different seed is a different workload: the virtual-cost
        # metrics move and the exact gate must fail.
        assert main(
            ["perf", "check", "--scale", "test", "--seed", "99",
             "--against", store, "--gate-profile"]
        ) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_check_record_appends_on_pass(self, capsys, tmp_path):
        store = str(tmp_path / "baselines")
        assert main(
            ["perf", "record", "--scale", "test", "--store", store]
        ) == 0
        capsys.readouterr()
        assert main(
            ["perf", "check", "--scale", "test", "--against", store,
             "--record"]
        ) == 0
        capsys.readouterr()
        assert main(["perf", "report", "--store", store]) == 0
        assert "2 record(s)" in capsys.readouterr().out

    def test_profile_folds_existing_trace(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["exp1", "--scale", "test", "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["perf", "profile", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "engine.online_pass" in out
        assert "profile digest:" in out

    def test_exp1_profile_flag(self, capsys, tmp_path):
        profile = tmp_path / "exp1_profile.json"
        assert main(
            ["exp1", "--scale", "test", "--profile", str(profile)]
        ) == 0
        out = capsys.readouterr().out
        assert f"profile written to {profile}" in out
        assert "self cost by subsystem:" in out
        assert profile.exists()


class TestLineageCli:
    def test_lineage_flag_parsed(self):
        for command in ("exp1", "exp5", "run", "recover"):
            args = build_parser().parse_args(
                [command, "--lineage", "lineage.json"]
            )
            assert args.lineage == "lineage.json"
            assert build_parser().parse_args([command]).lineage is None

    def test_obs_lineage_options(self):
        args = build_parser().parse_args(
            ["obs", "lineage", "blame", "lineage.json",
             "--version", "v0002"]
        )
        assert args.action == "lineage"
        assert args.trace == "blame"
        assert args.path == "lineage.json"
        assert args.lineage_version == "v0002"
        args = build_parser().parse_args(
            ["obs", "lineage", "trace", "lineage.json",
             "--chunk", "chunk:3"]
        )
        assert args.lineage_chunk == "chunk:3"

    def test_exp5_export_then_query(self, capsys, tmp_path):
        lineage = tmp_path / "lineage.json"
        assert main(
            ["exp5", "--scale", "test", "--lineage", str(lineage)]
        ) == 0
        out = capsys.readouterr().out
        assert f"lineage graph written to {lineage}" in out
        assert "provenance ledger" in out
        assert lineage.exists()

        assert main(["obs", "lineage", "show", str(lineage)]) == 0
        assert "live[gated]" in capsys.readouterr().out

        assert main(
            ["obs", "lineage", "blame", str(lineage),
             "--version", "model:blind:v0002"]
        ) == 0
        out = capsys.readouterr().out
        assert "blame model:blind:v0002" in out
        assert "chunk:" in out

        assert main(
            ["obs", "lineage", "trace", str(lineage),
             "--chunk", "chunk:0"]
        ) == 0
        assert "models:" in capsys.readouterr().out

    def test_obs_lineage_requires_path_and_options(self, tmp_path):
        with pytest.raises(SystemExit, match="path"):
            main(["obs", "lineage", "show"])
        ledger_file = tmp_path / "lineage.json"
        from repro.obs import LineageLedger

        LineageLedger().write(ledger_file)
        with pytest.raises(SystemExit, match="--version"):
            main(["obs", "lineage", "blame", str(ledger_file)])
        with pytest.raises(SystemExit, match="--chunk"):
            main(["obs", "lineage", "trace", str(ledger_file)])
        with pytest.raises(SystemExit, match="sub-action"):
            main(["obs", "lineage", "bogus", str(ledger_file)])

    def test_run_with_lineage_and_checkpoints(self, capsys, tmp_path):
        lineage = tmp_path / "lineage.json"
        assert main(
            ["run", "--approach", "continuous", "--scale", "test",
             "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--cadence", "3", "--lineage", str(lineage)]
        ) == 0
        assert lineage.exists()
        assert "provenance ledger" in capsys.readouterr().out
