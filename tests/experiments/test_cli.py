"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["exp1"])
        assert args.dataset == "url"
        assert args.scale == "test"
        assert args.seed is None

    def test_scenario_options(self):
        args = build_parser().parse_args(
            ["fig6", "--dataset", "taxi", "--scale", "bench",
             "--seed", "5"]
        )
        assert args.dataset == "taxi"
        assert args.scale == "bench"
        assert args.seed == 5

    def test_table4_options(self):
        args = build_parser().parse_args(
            ["table4", "--chunks", "500", "--sample-size", "10"]
        )
        assert args.chunks == 500
        assert args.sample_size == 10

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp1", "--dataset", "mnist"])


class TestExecution:
    """End-to-end CLI runs at test scale (smallest possible)."""

    def test_exp1(self, capsys):
        assert main(["exp1", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "final-cost ratio" in out
        assert "continuous" in out

    def test_table4(self, capsys):
        assert main(
            ["table4", "--chunks", "300", "--sample-size", "10",
             "--sample-every", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "uniform" in out
        assert "time" in out

    def test_fig6(self, capsys):
        assert main(
            ["fig6", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        assert "average error" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(
            ["fig8", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        assert "cost ratio" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(
            ["table3", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        assert "adadelta" in capsys.readouterr().out


class TestExecutionExtended:
    """The remaining CLI commands, at the smallest usable scale."""

    def test_fig5(self, capsys):
        assert main(
            ["fig5", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "initial-training winner" in out

    def test_fig7(self, capsys):
        assert main(
            ["fig7", "--dataset", "taxi", "--scale", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "NoOptimization" in out

    def test_seed_override(self, capsys):
        assert main(
            ["fig6", "--dataset", "taxi", "--scale", "test",
             "--seed", "99"]
        ) == 0
        assert "average error" in capsys.readouterr().out
