"""Integration tests: every experiment driver runs at test scale and
produces paper-shaped outputs."""

import numpy as np
import pytest

from repro.experiments.common import taxi_scenario, url_scenario
from repro.experiments.exp1_deployment import (
    cost_ratios,
    cost_series,
    quality_series,
    run_experiment1,
)
from repro.experiments.exp2_sampling import (
    average_errors,
    run_sampling_experiment,
)
from repro.experiments.exp2_tuning import (
    ADAPTATIONS,
    REG_STRENGTHS,
    best_per_adaptation,
    figure5,
    ranking_agreement,
    table3,
)
from repro.experiments.exp3_materialization import (
    figure7,
    figure7_no_optimization,
    table4,
)
from repro.experiments.exp4_tradeoff import (
    headline_claims,
    run_tradeoff,
    tradeoff_points,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


@pytest.fixture(scope="module")
def url_results():
    """Experiment 1 on the URL test scenario, shared across tests."""
    return run_experiment1(url_scenario("test"))


class TestExperiment1:
    def test_all_approaches_present(self, url_results):
        assert set(url_results) == {
            "online", "periodical", "continuous",
        }

    def test_histories_aligned(self, url_results):
        lengths = {
            len(series)
            for result in url_results.values()
            for series in (result.error_history, result.cost_history)
        }
        assert lengths == {40}

    def test_cost_ordering(self, url_results):
        """Online <= continuous << periodical — the headline shape."""
        ratios = cost_ratios(url_results)
        assert ratios["online"] <= 1.05
        assert ratios["periodical"] > 1.5

    def test_series_extraction(self, url_results):
        quality = quality_series(url_results)
        cost = cost_series(url_results)
        assert set(quality) == set(cost) == set(url_results)
        assert all(len(v) == 40 for v in quality.values())

    def test_errors_are_rates(self, url_results):
        for result in url_results.values():
            assert 0.0 <= result.final_error <= 1.0


class TestExperiment2Tuning:
    def test_grid_shape(self):
        scenario = url_scenario("test")
        grid = table3(
            scenario,
            adaptations=("adam", "rmsprop"),
            strengths=(1e-2, 1e-3),
        )
        assert len(grid) == 4
        assert all(0.0 <= v <= 1.0 for v in grid.values())

    def test_best_per_adaptation(self):
        grid = {
            ("adam", 1e-2): 0.3,
            ("adam", 1e-3): 0.1,
            ("rmsprop", 1e-2): 0.2,
        }
        best = best_per_adaptation(grid)
        assert best == {"adam": 1e-3, "rmsprop": 1e-2}

    def test_figure5_histories(self):
        scenario = url_scenario("test")
        histories = figure5(
            scenario, {"adam": 1e-3}, deploy_fraction=0.2
        )
        assert set(histories) == {"adam"}
        assert len(histories["adam"]) == 8

    def test_figure5_invalid_fraction(self):
        with pytest.raises(ValueError):
            figure5(url_scenario("test"), {}, deploy_fraction=0.0)

    def test_ranking_agreement_types(self):
        grid = {("adam", 1e-3): 0.1, ("rmsprop", 1e-3): 0.2}
        deployed = {"adam": [0.1, 0.1], "rmsprop": [0.3, 0.3]}
        assert ranking_agreement(grid, deployed) is True
        deployed_flipped = {
            "adam": [0.4, 0.4], "rmsprop": [0.1, 0.1],
        }
        assert ranking_agreement(grid, deployed_flipped) is False

    def test_constants_match_paper(self):
        assert ADAPTATIONS == ("adam", "rmsprop", "adadelta")
        assert REG_STRENGTHS == (1e-2, 1e-3, 1e-4)


class TestExperiment2Sampling:
    def test_all_samplers_run(self):
        results = run_sampling_experiment(url_scenario("test"))
        assert set(results) == {"time", "window", "uniform"}
        averages = average_errors(results)
        assert all(0.0 <= v <= 1.0 for v in averages.values())


class TestExperiment3:
    def test_table4_small_scale(self):
        cells = table4(
            num_chunks=300, sample_size=10, sample_every=5, seed=1
        )
        assert len(cells) == 6  # 3 samplers x 2 rates
        for cell in cells:
            assert 0.0 <= cell.empirical <= 1.0
            if cell.sampler == "time":
                assert cell.theoretical is None
            else:
                assert cell.empirical == pytest.approx(
                    cell.theoretical, abs=0.08
                )

    def test_table4_time_beats_uniform(self):
        cells = table4(
            num_chunks=400, sample_size=20, sample_every=2, seed=0
        )
        by_key = {(c.sampler, c.rate): c.empirical for c in cells}
        assert by_key[("time", 0.2)] > by_key[("uniform", 0.2)]

    def test_figure7_costs_decrease_with_materialization(self):
        scenario = url_scenario("test")
        costs = figure7(
            scenario, rates=(0.0, 1.0), samplers=("uniform",)
        )
        assert costs[("uniform", 0.0)] > costs[("uniform", 1.0)]

    def test_figure7_no_optimization_is_most_expensive(self):
        scenario = url_scenario("test")
        optimized = figure7(
            scenario, rates=(1.0,), samplers=("time",)
        )[("time", 1.0)]
        no_opt = figure7_no_optimization(scenario)
        assert no_opt > optimized


class TestExperiment4:
    def test_points_from_results(self, url_results):
        points = tradeoff_points(url_results)
        assert {p.approach for p in points} == {
            "online", "periodical", "continuous",
        }

    def test_headline_claims(self, url_results):
        claims = headline_claims(tradeoff_points(url_results))
        assert claims["cost_ratio"] > 1.0
        assert np.isfinite(claims["quality_delta"])

    def test_run_tradeoff_taxi(self):
        points = run_tradeoff(taxi_scenario("test"))
        assert len(points) == 3


class TestExperiment5:
    """Gated canary rollout vs blind promotion (serving layer)."""

    @pytest.fixture(scope="class")
    def taxi_serving(self):
        from repro.experiments.exp5_serving import (
            run_serving_experiment,
        )

        return run_serving_experiment(taxi_scenario("test"))

    def test_all_policies_present(self, taxi_serving):
        assert set(taxi_serving) == {"frozen", "blind", "gated"}
        lengths = {
            len(point.error_history)
            for point in taxi_serving.values()
        }
        assert lengths == {30}

    def test_gated_beats_blind_under_corruption(self, taxi_serving):
        """The headline: blind promotion inherits every corrupted
        candidate's error; the gate pays only the canary fraction
        briefly, then rejects."""
        from repro.experiments.exp5_serving import headline_claims

        claims = headline_claims(taxi_serving)
        assert (
            claims["gated_average_error"]
            < claims["blind_average_error"]
        )
        assert claims["gated_vs_blind_improvement"] > 0

    def test_gate_took_protective_actions(self, taxi_serving):
        gated = taxi_serving["gated"].transitions
        assert gated.get("stage", 0) > 0
        assert (
            gated.get("reject", 0) + gated.get("rollback", 0) > 0
        )
        # Blind promotes everything, frozen does nothing.
        assert "promote" in taxi_serving["blind"].transitions
        assert taxi_serving["frozen"].transitions == {}
