"""Admission queue: bounded backlog, deterministic shed policy."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.traffic import AdmissionQueue, Request


def request(request_id, arrival_time, rows=2):
    return Request(
        request_id=request_id,
        arrival_time=float(arrival_time),
        user=request_id % 5,
        rows=np.arange(rows, dtype=np.int64),
    )


class TestBoundedQueue:
    def test_admits_until_capacity(self):
        queue = AdmissionQueue(capacity=3)
        for i in range(3):
            assert queue.offer(request(i, i * 0.1)) is None
        assert len(queue) == 3

    def test_tail_drop_sheds_latest_arrival(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer(request(0, 0.0))
        queue.offer(request(1, 0.1))
        shed = queue.offer(request(2, 0.2))
        assert shed is not None
        assert shed.request_id == 2
        assert len(queue) == 2

    def test_earlier_arrival_displaces_queued_tail(self):
        """A replayed out-of-order offer must shed exactly what the
        in-order run shed: the request ordered last, not the one that
        happened to arrive at a full queue."""
        queue = AdmissionQueue(capacity=2)
        queue.offer(request(0, 0.0))
        queue.offer(request(2, 0.2))
        shed = queue.offer(request(1, 0.1))
        assert shed is not None
        assert shed.request_id == 2
        assert [r.request_id for r in queue.take(2)] == [0, 1]

    def test_tie_breaks_toward_smaller_request_id(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer(request(7, 0.5))
        shed = queue.offer(request(3, 0.5))
        assert shed is not None
        assert shed.request_id == 7
        assert queue.take(1)[0].request_id == 3

    def test_equal_key_sheds_arrival(self):
        queue = AdmissionQueue(capacity=1)
        kept = request(4, 0.5)
        queue.offer(kept)
        shed = queue.offer(request(4, 0.5))
        assert shed is not None
        assert shed is not kept

    def test_capacity_validation(self):
        with pytest.raises(ValidationError, match="capacity"):
            AdmissionQueue(capacity=0)


class TestTake:
    def test_oldest_first(self):
        queue = AdmissionQueue(capacity=4)
        for i, t in ((2, 0.3), (0, 0.1), (1, 0.2)):
            queue.offer(request(i, t))
        assert queue.oldest_arrival == pytest.approx(0.1)
        taken = queue.take(2)
        assert [r.request_id for r in taken] == [0, 1]
        assert len(queue) == 1
        assert queue.oldest_arrival == pytest.approx(0.3)

    def test_take_drains_and_empties(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer(request(0, 0.0))
        assert len(queue.take(5)) == 1
        assert len(queue) == 0
        assert queue.oldest_arrival is None

    def test_take_limit_validation(self):
        with pytest.raises(ValidationError, match="limit"):
            AdmissionQueue(capacity=1).take(0)
