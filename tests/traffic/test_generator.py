"""Open-loop generator: byte-reproducibility and stream shape."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.traffic import (
    Arrivals,
    BurstEpisode,
    OpenLoopGenerator,
    TrafficPattern,
)


def make_generator(seed=11, **kwargs):
    kwargs.setdefault("pattern", TrafficPattern(base_rate=50.0))
    kwargs.setdefault("num_users", 1_000)
    kwargs.setdefault("pool_rows", 64)
    return OpenLoopGenerator(seed=seed, **kwargs)


class TestByteReproducibility:
    def test_same_seed_identical_stream(self):
        """Acceptance: two same-seed generators emit byte-identical
        arrival streams (times, users, and per-request rows)."""
        first = make_generator(seed=11).generate(2.0)
        second = make_generator(seed=11).generate(2.0)
        assert first.digest() == second.digest()
        assert np.array_equal(first.times, second.times)
        assert np.array_equal(first.users, second.users)
        assert np.array_equal(first.row_offsets, second.row_offsets)
        assert np.array_equal(first.row_indices, second.row_indices)

    def test_different_seed_different_stream(self):
        first = make_generator(seed=11).generate(2.0)
        second = make_generator(seed=12).generate(2.0)
        assert first.digest() != second.digest()

    def test_millions_of_users_constant_memory(self):
        """Per-user row sampling is hashed, not materialized: two
        million users cost nothing beyond the requests drawn."""
        arrivals = make_generator(num_users=2_000_000).generate(1.0)
        assert arrivals.num_requests > 0
        assert arrivals.users.max() < 2_000_000


class TestStreamShape:
    def test_times_monotone_within_horizon(self):
        arrivals = make_generator().generate(3.0)
        assert arrivals.num_requests > 50
        assert np.all(np.diff(arrivals.times) >= 0)
        assert arrivals.times[0] >= 0.0
        assert arrivals.times[-1] < 3.0

    def test_rows_within_pool_and_bounds(self):
        arrivals = make_generator(
            pool_rows=32, rows_per_request=(2, 5)
        ).generate(2.0)
        assert arrivals.row_indices.min() >= 0
        assert arrivals.row_indices.max() < 32
        counts = np.diff(arrivals.row_offsets)
        assert counts.min() >= 2
        assert counts.max() <= 5
        for i in (0, arrivals.num_requests - 1):
            rows = arrivals.request_rows(i)
            assert len(rows) == counts[i]

    def test_users_within_population(self):
        arrivals = make_generator(num_users=7).generate(2.0)
        assert arrivals.users.min() >= 0
        assert arrivals.users.max() < 7

    def test_zero_horizon_rejected(self):
        with pytest.raises(ValidationError, match="horizon"):
            make_generator().generate(0.0)

    def test_tiny_horizon_may_be_empty_but_stable(self):
        first = make_generator(
            pattern=TrafficPattern(base_rate=1e-6)
        ).generate(1e-9)
        second = make_generator(
            pattern=TrafficPattern(base_rate=1e-6)
        ).generate(1e-9)
        assert first.num_requests == 0
        assert first.num_rows == 0
        assert first.digest() == second.digest()


class TestRateCurve:
    def test_burst_raises_rate(self):
        burst = BurstEpisode(start=1.0, duration=0.5, multiplier=8.0)
        pattern = TrafficPattern(base_rate=10.0, bursts=(burst,))
        assert pattern.rate_at(0.5) == pytest.approx(10.0)
        assert pattern.rate_at(1.2) == pytest.approx(80.0)
        assert pattern.rate_at(1.6) == pytest.approx(10.0)

    def test_burst_inflates_arrivals(self):
        calm = make_generator().generate(2.0)
        bursty = make_generator(
            pattern=TrafficPattern(
                base_rate=50.0,
                bursts=(
                    BurstEpisode(start=0.5, duration=1.0, multiplier=10.0),
                ),
            )
        ).generate(2.0)
        assert bursty.num_requests > 2 * calm.num_requests

    def test_diurnal_modulation(self):
        pattern = TrafficPattern(
            base_rate=10.0, diurnal_amplitude=0.5, diurnal_period=1.0
        )
        rates = [pattern.rate_at(t) for t in np.linspace(0, 1, 9)]
        assert max(rates) > 10.0 > min(rates)


class TestValidation:
    def test_bad_tail_index(self):
        with pytest.raises(ValidationError, match="tail_index"):
            make_generator(tail_index=1.0)

    def test_bad_rows_per_request(self):
        with pytest.raises(ValidationError, match="rows_per_request"):
            make_generator(rows_per_request=(3, 2))

    def test_bad_population(self):
        with pytest.raises(ValidationError, match="num_users"):
            make_generator(num_users=0)

    def test_bad_burst(self):
        with pytest.raises(ValidationError):
            BurstEpisode(start=0.0, duration=-1.0, multiplier=2.0)


class TestArrivalsContainer:
    def test_digest_covers_every_array(self):
        base = make_generator().generate(1.0)
        tweaked = Arrivals(
            times=base.times,
            users=base.users.copy(),
            row_offsets=base.row_offsets,
            row_indices=base.row_indices,
        )
        tweaked.users[0] += 1
        assert tweaked.digest() != base.digest()
