"""Shared fixtures: a tiny URL serving world for traffic tests.

Small on purpose — two 40-row chunks, a 64-dim hash space, a handful
of SGD steps — because these tests exercise the *traffic* machinery
(queueing, batching, determinism), not model quality.
"""

from dataclasses import dataclass
from typing import Callable

import pytest

from repro.data.table import Table
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.ml.models import LinearSVM
from repro.ml.optim import Adam
from repro.ml.regularizers import L2
from repro.ml.sgd import SGDTrainer
from repro.serving import ModelRegistry, ServingEndpoint

HASH_DIM = 64
ROWS = 40
SEED = 23


@dataclass
class TrafficWorld:
    """A registry with a live version plus a replay pool."""

    registry: ModelRegistry
    pool: Table
    live_version: str
    candidate_version: str
    make_endpoint: Callable


@pytest.fixture
def traffic_world(tmp_path):
    generator = URLStreamGenerator(
        num_chunks=4, rows_per_chunk=ROWS, seed=SEED
    )

    def make_parts(train_chunks, steps=10):
        pipeline = make_url_pipeline(hash_features=HASH_DIM)
        model = LinearSVM(HASH_DIM, regularizer=L2(1e-3))
        optimizer = Adam(0.05)
        trainer = SGDTrainer(model, optimizer)
        for index in train_chunks:
            features = pipeline.update_transform_to_features(
                generator.chunk(index)
            )
            for __ in range(steps):
                trainer.step(features.matrix, features.labels)
        return pipeline, model, optimizer

    registry = ModelRegistry(tmp_path / "registry")
    live = registry.register(*make_parts(range(1)))
    registry.promote(live.version, reason="initial")
    candidate = registry.register(*make_parts(range(2)))
    pool = Table.concat([generator.chunk(2), generator.chunk(3)])

    def make_endpoint(**kwargs):
        kwargs.setdefault("seed", SEED)
        return ServingEndpoint(registry, **kwargs)

    return TrafficWorld(
        registry=registry,
        pool=pool,
        live_version=live.version,
        candidate_version=candidate.version,
        make_endpoint=make_endpoint,
    )
