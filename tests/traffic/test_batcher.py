"""Micro-batcher flush policy: size, wait, and drain boundaries."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.traffic import AdmissionQueue, MicroBatcher, Request


def request(request_id, arrival_time, rows=1):
    return Request(
        request_id=request_id,
        arrival_time=float(arrival_time),
        user=0,
        rows=np.arange(rows, dtype=np.int64),
    )


def batcher(max_batch_size=4, max_wait=0.05, capacity=16):
    queue = AdmissionQueue(capacity=capacity)
    return MicroBatcher(
        queue, max_batch_size=max_batch_size, max_wait=max_wait
    ), queue


class TestFlushBoundaries:
    def test_empty_queue_never_flushes(self):
        b, __ = batcher()
        assert b.flush_reason(10.0) is None
        assert b.flush_reason(10.0, drain=True) is None
        assert b.poll(10.0, drain=True) is None
        assert b.next_deadline() is None

    def test_full_at_exactly_max_batch_size(self):
        b, queue = batcher(max_batch_size=3)
        queue.offer(request(0, 0.0))
        queue.offer(request(1, 0.0))
        assert b.flush_reason(0.0) is None
        queue.offer(request(2, 0.0))
        assert b.flush_reason(0.0) == "full"

    def test_wait_fires_exactly_at_deadline(self):
        b, queue = batcher(max_wait=0.05)
        queue.offer(request(0, 1.0))
        deadline = b.next_deadline()
        assert deadline == 1.0 + 0.05
        assert b.flush_reason(np.nextafter(deadline, 0.0)) is None
        assert b.flush_reason(deadline) == "wait"

    def test_deadline_float_identity_regression(self):
        """The simulator schedules the flush event at the float value
        ``arrival + max_wait``; the policy must fire at exactly that
        time for *any* arrival. (The subtracted form
        ``now - oldest >= max_wait`` can round below ``max_wait`` and
        miss its own deadline, stalling the batch until the next
        unrelated event.)"""
        for arrival in np.linspace(0.0, 2000.0, 257):
            b, queue = batcher(max_wait=0.02)
            queue.offer(request(0, float(arrival)))
            assert b.flush_reason(b.next_deadline()) == "wait"

    def test_full_wins_over_wait(self):
        b, queue = batcher(max_batch_size=2, max_wait=0.01)
        queue.offer(request(0, 0.0))
        queue.offer(request(1, 0.0))
        assert b.flush_reason(5.0) == "full"

    def test_drain_flushes_partial_batch(self):
        b, queue = batcher(max_batch_size=4, max_wait=10.0)
        queue.offer(request(0, 0.0))
        assert b.flush_reason(0.0) is None
        flush = b.poll(0.0, drain=True)
        assert flush is not None
        assert flush.reason == "drain"
        assert flush.size == 1


class TestPoll:
    def test_single_request_batch(self):
        b, queue = batcher(max_wait=0.05)
        queue.offer(request(9, 2.0, rows=3))
        flush = b.poll(2.0 + 0.05)
        assert flush is not None
        assert flush.reason == "wait"
        assert flush.size == 1
        assert flush.num_rows == 3
        assert flush.requests[0].request_id == 9
        assert len(queue) == 0

    def test_poll_caps_at_max_batch_size_oldest_first(self):
        b, queue = batcher(max_batch_size=2)
        for i in range(5):
            queue.offer(request(i, i * 0.001))
        flush = b.poll(1.0)
        assert flush is not None
        assert flush.reason == "full"
        assert [r.request_id for r in flush.requests] == [0, 1]
        assert len(queue) == 3

    def test_no_flush_returns_none(self):
        b, queue = batcher(max_wait=1.0)
        queue.offer(request(0, 0.0))
        assert b.poll(0.5) is None
        assert len(queue) == 1


class TestValidation:
    def test_bad_batch_size(self):
        queue = AdmissionQueue(capacity=2)
        with pytest.raises(ValidationError, match="max_batch_size"):
            MicroBatcher(queue, max_batch_size=0, max_wait=0.1)

    def test_bad_max_wait(self):
        queue = AdmissionQueue(capacity=2)
        with pytest.raises(ValidationError, match="max_wait"):
            MicroBatcher(queue, max_batch_size=1, max_wait=-0.1)
