"""Discrete-event simulator: determinism, accounting, shedding."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.obs import Telemetry, names
from repro.traffic import (
    OpenLoopGenerator,
    SimulationConfig,
    TrafficPattern,
    TrafficSimulator,
    VirtualClock,
)


def arrivals_for(pool, rate=80.0, horizon=1.0, seed=29):
    generator = OpenLoopGenerator(
        pattern=TrafficPattern(base_rate=rate),
        num_users=500,
        pool_rows=pool.num_rows,
        rows_per_request=(1, 3),
        seed=seed,
    )
    return generator.generate(horizon)


def simulate(world, arrivals, config=None, telemetry=None):
    simulator = TrafficSimulator(
        world.make_endpoint(),
        world.pool,
        config=config or SimulationConfig(),
        telemetry=telemetry,
    )
    return simulator.run(arrivals)


class TestDeterminism:
    def test_two_runs_byte_identical(self, traffic_world):
        """Acceptance: same arrivals + fresh endpoints => the same
        prediction stream, dispatch order, and shed set, byte for
        byte."""
        arrivals = arrivals_for(traffic_world.pool)
        first = simulate(traffic_world, arrivals)
        second = simulate(traffic_world, arrivals)
        assert first.digest() == second.digest()
        assert first.dispatch_order == second.dispatch_order
        assert first.shed_ids == second.shed_ids
        assert np.array_equal(
            first.primary_stream, second.primary_stream
        )

    def test_report_is_reproducible(self, traffic_world):
        arrivals = arrivals_for(traffic_world.pool)
        first = simulate(traffic_world, arrivals).report
        second = simulate(traffic_world, arrivals).report
        assert first.to_dict() == second.to_dict()


class TestAccounting:
    def test_every_arrival_admitted_or_shed(self, traffic_world):
        arrivals = arrivals_for(traffic_world.pool)
        report = simulate(traffic_world, arrivals).report
        assert report.arrivals == arrivals.num_requests
        assert report.admitted + report.shed == report.arrivals
        assert report.completed == report.admitted

    def test_dispatch_covers_admitted(self, traffic_world):
        arrivals = arrivals_for(traffic_world.pool)
        result = simulate(traffic_world, arrivals)
        assert len(result.dispatch_order) == result.report.admitted
        assert (
            len(result.dispatch_order) + len(result.shed_ids)
            == arrivals.num_requests
        )
        assert sorted(result.dispatch_order + result.shed_ids) == list(
            range(arrivals.num_requests)
        )

    def test_latency_includes_queue_delay(self, traffic_world):
        arrivals = arrivals_for(traffic_world.pool)
        report = simulate(traffic_world, arrivals).report
        assert report.latency["p99"] >= report.queue_delay["p99"]
        assert report.latency["p50"] > 0.0


class TestOverload:
    def test_tiny_queue_sheds_deterministically(self, traffic_world):
        arrivals = arrivals_for(traffic_world.pool, rate=400.0)
        config = SimulationConfig(
            max_batch_size=2, max_wait=0.05, queue_capacity=2
        )
        first = simulate(traffic_world, arrivals, config=config)
        second = simulate(traffic_world, arrivals, config=config)
        assert first.report.shed > 0
        assert first.shed_ids == second.shed_ids
        assert 0.0 < first.report.shed_rate < 1.0

    def test_roomy_queue_sheds_nothing(self, traffic_world):
        arrivals = arrivals_for(traffic_world.pool, rate=30.0)
        config = SimulationConfig(queue_capacity=4096)
        report = simulate(traffic_world, arrivals, config=config).report
        assert report.shed == 0


class TestTelemetry:
    def test_traffic_counters_match_report(self, traffic_world):
        arrivals = arrivals_for(traffic_world.pool, rate=400.0)
        telemetry = Telemetry()
        result = simulate(
            traffic_world,
            arrivals,
            config=SimulationConfig(queue_capacity=2),
            telemetry=telemetry,
        )
        def count(name):
            return telemetry.metrics.counter(name).value

        assert count(names.TRAFFIC_ARRIVALS) == result.report.arrivals
        assert count(names.TRAFFIC_SHED) == result.report.shed
        assert count(names.TRAFFIC_COMPLETED) == result.report.completed
        assert count(names.BATCH_DISPATCHED) == result.report.batches


class TestVirtualClock:
    def test_monotone(self):
        clock = VirtualClock()
        clock.advance(1.0)
        assert clock() == pytest.approx(1.0)
        clock.advance(0.5)  # never goes backwards
        assert clock() == pytest.approx(1.0)

    def test_config_validation(self):
        with pytest.raises(ValidationError, match="concurrency"):
            SimulationConfig(concurrency=0)
