"""Golden recovery tests: kill at chunk *k*, recover, byte-identity.

The reliability layer's core invariant: a run killed after ``k``
chunks and recovered from its latest checkpoint finishes with
**byte-identical** results — prequential error history, cost history,
deployment counters, telemetry counters, model parameters, and served
predictions — to the same run uninterrupted. Checked for every
deployment strategy at three kill points.
"""

import numpy as np
import pytest

from repro.core.platform import ContinuousDeploymentPlatform
from repro.driftdetect import DDM
from repro.driftdetect.deployment import DriftAwareContinuousDeployment
from repro.exceptions import ReliabilityError
from repro.experiments.common import (
    APPROACHES,
    make_deployment,
    url_scenario,
)
from repro.obs import Telemetry
from repro.reliability import (
    CheckpointConfig,
    FaultPlan,
    SimulatedCrash,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)

#: Checkpoint every CADENCE chunks; kill after each KILLS[i] chunks.
CADENCE = 3
KILLS = (5, 8, 12)

_BASELINES = {}


def scenario():
    return url_scenario("test")


def fit(deployment, scn):
    deployment.initial_fit(
        scn.make_initial_data(), seed=scn.seed, **scn.initial_fit_kwargs
    )
    return deployment


def baseline(approach):
    """Uninterrupted reference run (cached per approach)."""
    if approach not in _BASELINES:
        scn = scenario()
        deployment = fit(make_deployment(scn, approach), scn)
        result = deployment.run(scn.make_stream())
        probe = scn.make_initial_data()[0]
        predictions, __ = deployment._predict(probe)
        _BASELINES[approach] = (result, deployment, predictions)
    return _BASELINES[approach]


def crash_then_recover(approach, kill_after, tmp_path, telemetry=None):
    """Run to the kill point, die, recover, finish.

    When ``telemetry`` is given, the crashing run gets its *own*
    fresh ``Telemetry`` (a real crash loses the in-memory registry;
    the checkpoint carries the metrics state) and the recovering run
    continues into ``telemetry``.
    """
    scn = scenario()
    config = CheckpointConfig(
        directory=tmp_path / f"{approach}-{kill_after}",
        cadence_chunks=CADENCE,
        keep=3,
    )
    crashing = fit(
        make_deployment(
            scn,
            approach,
            telemetry=Telemetry() if telemetry is not None else None,
            checkpoint=config,
            fault_plan=FaultPlan.crash_at("stream.read", kill_after + 1),
        ),
        scn,
    )
    with pytest.raises(SimulatedCrash):
        crashing.run(scn.make_stream())
    recovering = make_deployment(
        scn, approach, telemetry=telemetry, checkpoint=config
    )
    result = recovering.recover(scn.make_stream())
    return result, recovering, scn


@pytest.mark.parametrize("kill_after", KILLS)
@pytest.mark.parametrize("approach", APPROACHES)
class TestGoldenRecovery:
    def test_recovered_run_is_byte_identical(
        self, approach, kill_after, tmp_path
    ):
        reference, ref_deployment, ref_predictions = baseline(approach)
        result, recovered, scn = crash_then_recover(
            approach, kill_after, tmp_path
        )

        assert result.recovery is not None
        assert result.recovery.cursor == (
            (kill_after // CADENCE) * CADENCE
        )
        assert result.chunks_processed == reference.chunks_processed
        # exact equality, not approx: recovery must be bit-for-bit
        assert result.error_history == reference.error_history
        assert result.cost_history == reference.cost_history
        assert result.counters == reference.counters
        assert (
            recovered.model.params_vector().tobytes()
            == ref_deployment.model.params_vector().tobytes()
        )
        probe = scn.make_initial_data()[0]
        predictions, __ = recovered._predict(probe)
        assert predictions.tobytes() == ref_predictions.tobytes()


class TestTelemetryCounters:
    def test_counters_identical_after_recovery(self, tmp_path):
        """Telemetry counters survive the crash byte-for-byte.

        The baseline here checkpoints too (at the same cadence): the
        ``reliability.checkpoints_written`` counter is part of the
        metrics state, so both runs must write the same checkpoints.
        """
        scn = scenario()
        reference_telemetry = Telemetry()
        config = CheckpointConfig(
            directory=tmp_path / "reference",
            cadence_chunks=CADENCE,
            keep=3,
        )
        fit(
            make_deployment(
                scn,
                "continuous",
                telemetry=reference_telemetry,
                checkpoint=config,
            ),
            scn,
        ).run(scn.make_stream())

        telemetry = Telemetry()
        __, recovered, __ = crash_then_recover(
            "continuous", 8, tmp_path, telemetry=telemetry
        )
        assert (
            telemetry.metrics.snapshot()["counters"]
            == reference_telemetry.metrics.snapshot()["counters"]
        )


class TestDriftAwareRecovery:
    def make(self, scn, **reliability):
        return DriftAwareContinuousDeployment(
            scn.make_pipeline(),
            scn.make_model(),
            scn.make_optimizer(),
            detector=DDM(),
            config=scn.continuous_config,
            metric=scn.metric,
            seed=scn.seed,
            **reliability,
        )

    def test_detector_state_survives_recovery(self, tmp_path):
        scn = scenario()
        reference = fit(self.make(scn), scn).run(scn.make_stream())

        config = CheckpointConfig(
            directory=tmp_path, cadence_chunks=CADENCE, keep=3
        )
        crashing = fit(
            self.make(
                scn,
                checkpoint=config,
                fault_plan=FaultPlan.crash_at("stream.read", 9),
            ),
            scn,
        )
        with pytest.raises(SimulatedCrash):
            crashing.run(scn.make_stream())
        recovered = self.make(scn, checkpoint=config)
        result = recovered.recover(scn.make_stream())
        assert result.error_history == reference.error_history
        assert result.cost_history == reference.cost_history
        assert result.counters == reference.counters


class TestRecoveryEdgeCases:
    def test_recover_without_checkpoint_option_rejected(self):
        scn = scenario()
        deployment = make_deployment(scn, "online")
        with pytest.raises(ReliabilityError, match="checkpoint="):
            deployment.recover(scn.make_stream())

    def test_recover_under_wrong_approach_rejected(self, tmp_path):
        scn = scenario()
        config = CheckpointConfig(
            directory=tmp_path, cadence_chunks=CADENCE
        )
        crashing = fit(
            make_deployment(
                scn,
                "online",
                checkpoint=config,
                fault_plan=FaultPlan.crash_at("stream.read", 9),
            ),
            scn,
        )
        with pytest.raises(SimulatedCrash):
            crashing.run(scn.make_stream())
        mismatched = make_deployment(scn, "periodical", checkpoint=config)
        with pytest.raises(ReliabilityError, match="written by"):
            mismatched.recover(scn.make_stream())

    def test_crash_before_first_checkpoint_unrecoverable(
        self, tmp_path
    ):
        scn = scenario()
        config = CheckpointConfig(
            directory=tmp_path, cadence_chunks=CADENCE
        )
        crashing = fit(
            make_deployment(
                scn,
                "online",
                checkpoint=config,
                fault_plan=FaultPlan.crash_at("stream.read", 2),
            ),
            scn,
        )
        with pytest.raises(SimulatedCrash):
            crashing.run(scn.make_stream())
        recovering = make_deployment(scn, "online", checkpoint=config)
        with pytest.raises(ReliabilityError, match="no valid"):
            recovering.recover(scn.make_stream())


class TestPlatformRecover:
    def test_platform_classmethod_round_trip(self, tmp_path):
        """Standalone-platform checkpointing (no deployment loop)."""
        scn = scenario()

        def build(**kwargs):
            return ContinuousDeploymentPlatform(
                pipeline=scn.make_pipeline(),
                model=scn.make_model(),
                optimizer=scn.make_optimizer(),
                config=scn.continuous_config,
                seed=scn.seed,
                **kwargs,
            )

        def feed(platform, tables):
            for table in tables:
                platform.predict(table)
                platform.observe(table)

        chunks = list(scn.make_stream())[:12]
        initial = scn.make_initial_data()

        reference = build()
        reference.initial_fit(
            initial, seed=scn.seed, **scn.initial_fit_kwargs
        )
        feed(reference, chunks)

        config = CheckpointConfig(
            directory=tmp_path, cadence_chunks=4, keep=2
        )
        interrupted = build(checkpoint=config)
        interrupted.initial_fit(
            initial, seed=scn.seed, **scn.initial_fit_kwargs
        )
        feed(interrupted, chunks[:9])  # checkpoints at 4 and 8

        recovered = ContinuousDeploymentPlatform.recover(
            config, config=scn.continuous_config
        )
        assert recovered.chunks_observed == 8
        feed(recovered, chunks[8:])
        assert (
            recovered.model.params_vector().tobytes()
            == reference.model.params_vector().tobytes()
        )
        assert recovered.chunks_observed == reference.chunks_observed
