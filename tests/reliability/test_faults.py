"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.exceptions import ReliabilityError
from repro.obs import Telemetry
from repro.reliability import (
    KINDS,
    KNOWN_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
    TransientFault,
)


class TestFaultSpec:
    def test_occurrence_must_be_positive(self):
        with pytest.raises(ReliabilityError, match="occurrence"):
            FaultSpec("stream.read", 0, "crash")
        with pytest.raises(ReliabilityError, match="occurrence"):
            FaultSpec("stream.read", -3, "io_error")

    def test_kind_validated(self):
        with pytest.raises(ReliabilityError, match="kind"):
            FaultSpec("stream.read", 1, "explode")

    def test_all_known_kinds_accepted(self):
        for kind in KINDS:
            assert FaultSpec("storage.read", 2, kind).kind == kind


class TestFaultPlan:
    def test_duplicate_site_occurrence_rejected(self):
        with pytest.raises(ReliabilityError, match="duplicate"):
            FaultPlan.of(
                FaultSpec("stream.read", 3, "crash"),
                FaultSpec("stream.read", 3, "io_error"),
            )

    def test_same_occurrence_different_sites_allowed(self):
        plan = FaultPlan.of(
            FaultSpec("stream.read", 3, "crash"),
            FaultSpec("storage.read", 3, "io_error"),
        )
        assert len(plan) == 2

    def test_crash_at_is_single_crash(self):
        plan = FaultPlan.crash_at("stream.read", 12)
        assert plan.specs == (FaultSpec("stream.read", 12, "crash"),)

    def test_for_site_filters(self):
        plan = FaultPlan.of(
            FaultSpec("stream.read", 1, "io_error"),
            FaultSpec("stream.read", 4, "crash"),
            FaultSpec("checkpoint.write", 2, "corrupt"),
        )
        assert plan.for_site("stream.read") == {
            1: "io_error",
            4: "crash",
        }
        assert plan.for_site("checkpoint.write") == {2: "corrupt"}
        assert plan.for_site("storage.read") == {}

    def test_seeded_is_deterministic(self):
        first = FaultPlan.seeded(21, count=8)
        second = FaultPlan.seeded(21, count=8)
        assert first.specs == second.specs
        assert len(first) == 8
        for spec in first.specs:
            assert spec.site in KNOWN_SITES
            assert spec.kind in KINDS
            assert 1 <= spec.occurrence <= 50

    def test_seeded_differs_across_seeds(self):
        assert (
            FaultPlan.seeded(1, count=6).specs
            != FaultPlan.seeded(2, count=6).specs
        )

    def test_seeded_validation(self):
        with pytest.raises(ReliabilityError, match="count"):
            FaultPlan.seeded(0, count=-1)
        with pytest.raises(ReliabilityError, match="non-empty"):
            FaultPlan.seeded(0, count=1, sites=())


class TestFaultInjector:
    def test_crash_fires_on_exact_occurrence(self):
        injector = FaultInjector(FaultPlan.crash_at("stream.read", 3))
        injector.fire("stream.read")
        injector.fire("stream.read")
        with pytest.raises(SimulatedCrash, match="occurrence 3"):
            injector.fire("stream.read")
        assert injector.hits("stream.read") == 3

    def test_io_error_is_transient_and_oserror(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec("storage.read", 1, "io_error"))
        )
        with pytest.raises(TransientFault) as excinfo:
            injector.fire("storage.read")
        assert isinstance(excinfo.value, OSError)

    def test_sites_count_independently(self):
        injector = FaultInjector(FaultPlan.crash_at("stream.read", 2))
        injector.fire("stream.read")
        injector.fire("storage.read")
        injector.fire("storage.read")  # does not advance stream.read
        with pytest.raises(SimulatedCrash):
            injector.fire("stream.read")

    def test_corrupt_flips_exactly_one_byte(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec("checkpoint.write", 1, "corrupt"))
        )
        blob = bytes(range(64))
        injector.fire("checkpoint.write")  # corrupt does not raise
        mutated = injector.corrupt("checkpoint.write", blob)
        assert len(mutated) == len(blob)
        diff = [i for i in range(len(blob)) if mutated[i] != blob[i]]
        assert len(diff) == 1
        assert mutated[diff[0]] ^ blob[diff[0]] == 0xFF

    def test_corrupt_noop_when_not_scheduled(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec("checkpoint.write", 2, "corrupt"))
        )
        injector.fire("checkpoint.write")
        assert injector.corrupt("checkpoint.write", b"abc") == b"abc"
        assert injector.fired == []

    def test_fired_records_in_order(self):
        plan = FaultPlan.of(
            FaultSpec("stream.read", 2, "io_error"),
            FaultSpec("stream.read", 4, "io_error"),
        )
        injector = FaultInjector(plan)
        for _ in range(4):
            try:
                injector.fire("stream.read")
            except TransientFault:
                pass
        assert [
            (f.site, f.occurrence, f.kind) for f in injector.fired
        ] == [
            ("stream.read", 2, "io_error"),
            ("stream.read", 4, "io_error"),
        ]

    def test_two_invocations_fire_identically(self):
        """The acceptance property: same plan, same hits, same faults."""
        plan = FaultPlan.seeded(17, count=10, kinds=("io_error",))

        def drive():
            injector = FaultInjector(plan)
            outcomes = []
            for _ in range(60):
                for site in KNOWN_SITES:
                    try:
                        injector.fire(site)
                        outcomes.append((site, None))
                    except TransientFault:
                        outcomes.append((site, "io_error"))
            return outcomes, [
                (f.site, f.occurrence, f.kind) for f in injector.fired
            ]

        assert drive() == drive()

    def test_telemetry_counts_injected_faults(self):
        telemetry = Telemetry()
        injector = FaultInjector(
            FaultPlan.of(FaultSpec("stream.read", 1, "io_error")),
            telemetry=telemetry,
        )
        with pytest.raises(TransientFault):
            injector.fire("stream.read")
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["reliability.faults_injected"] == 1
