"""Tests for the bounded-backoff retry policy."""

import pytest

from repro.exceptions import ReliabilityError
from repro.obs import Telemetry
from repro.reliability import (
    Retrier,
    RetryExhausted,
    RetryPolicy,
    SimulatedCrash,
    TransientFault,
)


def flaky(failures, exception=TransientFault):
    """A callable that fails ``failures`` times, then returns 'ok'."""
    state = {"remaining": failures, "calls": 0}

    def fn():
        state["calls"] += 1
        if state["remaining"] > 0:
            state["remaining"] -= 1
            raise exception(f"boom #{state['calls']}")
        return "ok"

    return fn, state


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReliabilityError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReliabilityError, match="delays"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ReliabilityError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReliabilityError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5
        )
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)
        assert policy.backoff(3) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)


class TestRetrier:
    def test_success_after_transient_failures(self):
        fn, state = flaky(2)
        retrier = Retrier(RetryPolicy(max_attempts=4, seed=1))
        assert retrier.call(fn, site="stream.read") == "ok"
        assert state["calls"] == 3
        assert retrier.retries == 2
        assert retrier.total_delay > 0.0

    def test_exhaustion_chains_last_error(self):
        fn, state = flaky(10)
        retrier = Retrier(RetryPolicy(max_attempts=3, seed=1))
        with pytest.raises(RetryExhausted, match="3 attempts") as info:
            retrier.call(fn, site="storage.read")
        assert state["calls"] == 3
        assert isinstance(info.value.__cause__, TransientFault)

    def test_simulated_crash_never_retried(self):
        fn, state = flaky(5, exception=SimulatedCrash)
        retrier = Retrier(RetryPolicy(max_attempts=4))
        with pytest.raises(SimulatedCrash):
            retrier.call(fn)
        assert state["calls"] == 1
        assert retrier.retries == 0

    def test_non_retryable_propagates_immediately(self):
        fn, state = flaky(5, exception=ValueError)
        retrier = Retrier(RetryPolicy(max_attempts=4))
        with pytest.raises(ValueError):
            retrier.call(fn)
        assert state["calls"] == 1

    def test_plain_oserror_is_retryable_by_default(self):
        fn, state = flaky(1, exception=OSError)
        retrier = Retrier(RetryPolicy(max_attempts=3, seed=0))
        assert retrier.call(fn) == "ok"
        assert state["calls"] == 2

    def test_jitter_is_deterministic_across_retriers(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.5, seed=42)

        def total_delay():
            fn, _ = flaky(3)
            retrier = Retrier(policy)
            retrier.call(fn)
            return retrier.total_delay

        first, second = total_delay(), total_delay()
        assert first == second
        assert first > 0.0

    def test_delays_are_virtual_not_slept(self):
        import time

        fn, _ = flaky(3)
        policy = RetryPolicy(
            max_attempts=4, base_delay=5.0, max_delay=100.0, seed=0
        )
        retrier = Retrier(policy)
        started = time.perf_counter()
        retrier.call(fn)
        assert time.perf_counter() - started < 1.0
        assert retrier.total_delay >= 15.0  # 5 + 10 + 20 pre-jitter

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        fn, _ = flaky(2)
        retrier = Retrier(
            RetryPolicy(max_attempts=3, seed=0), telemetry=telemetry
        )
        retrier.call(fn, site="stream.read")
        always_fails, _ = flaky(99)
        with pytest.raises(RetryExhausted):
            retrier.call(always_fails, site="stream.read")
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["reliability.retries"] == 4  # 2 + 2
        assert counters["reliability.retries_exhausted"] == 1
