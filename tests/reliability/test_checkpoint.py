"""Tests for platform checkpoints: round-trip, retention, fallback."""

import json

import numpy as np
import pytest

from repro.data.chunk import FeatureChunk, RawChunk
from repro.data.storage import ChunkStorage
from repro.data.table import Table
from repro.datasets.url import make_url_pipeline
from repro.exceptions import ReliabilityError
from repro.ml.models import LinearSVM
from repro.ml.optim import Adam
from repro.obs import Telemetry
from repro.persistence import DeploymentBundle, PersistenceError
from repro.reliability import (
    CheckpointConfig,
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PlatformCheckpoint,
    Retrier,
    RetryPolicy,
    SimulatedCrash,
    as_store,
)


def small_bundle():
    return DeploymentBundle(
        pipeline=make_url_pipeline(hash_features=32),
        model=LinearSVM(num_features=32),
        optimizer=Adam(0.05),
    )


def make_checkpoint(cursor, **state):
    return PlatformCheckpoint(
        cursor=cursor,
        approach="online",
        bundle=small_bundle(),
        state=dict(state),
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(Exception, match="cadence_chunks"):
            CheckpointConfig(directory="x", cadence_chunks=0)
        with pytest.raises(Exception, match="keep"):
            CheckpointConfig(directory="x", keep=0)

    def test_cursor_must_be_non_negative(self):
        with pytest.raises(ReliabilityError, match="cursor"):
            make_checkpoint(-1)


class TestAsStore:
    def test_none_passes_through(self):
        assert as_store(None) is None

    def test_path_gets_defaults(self, tmp_path):
        store = as_store(str(tmp_path / "ckpts"))
        assert isinstance(store, CheckpointStore)
        assert store.cadence == 10
        assert store.keep == 3

    def test_config_and_store_accepted(self, tmp_path):
        config = CheckpointConfig(
            directory=tmp_path, cadence_chunks=4, keep=2
        )
        store = as_store(config)
        assert store.cadence == 4
        assert as_store(store) is store


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        store = CheckpointStore(tmp_path)
        original = make_checkpoint(
            5, prequential={"sum": 1.5, "count": 10}
        )
        path = store.write(original)
        assert path.name == "ckpt-00000005.ckpt"
        loaded = store.load(path)
        assert loaded.cursor == 5
        assert loaded.approach == "online"
        assert loaded.state["prequential"] == {
            "sum": 1.5,
            "count": 10,
        }

    def test_load_latest_prefers_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for cursor in (3, 6, 9):
            store.write(make_checkpoint(cursor))
        assert store.load_latest().cursor == 9

    def test_load_latest_empty_directory_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ReliabilityError, match="no valid"):
            store.load_latest()

    def test_refs_sidecar_written(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(make_checkpoint(7))
        refs = json.loads(
            (tmp_path / "ckpt-00000007.refs.json").read_text()
        )
        assert refs == {"cursor": 7, "chunks": []}


class TestCorruptionFallback:
    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        telemetry = Telemetry()
        store = CheckpointStore(tmp_path, telemetry=telemetry)
        store.write(make_checkpoint(5))
        newest = store.write(make_checkpoint(10))
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        newest.write_bytes(bytes(blob))
        assert store.load_latest().cursor == 5
        events = [
            e for e in telemetry.ring.events
            if e["name"] == "reliability.checkpoint_corrupt"
        ]
        assert len(events) == 1

    def test_all_corrupt_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.write(make_checkpoint(5))
        path.write_bytes(b"garbage")
        with pytest.raises(ReliabilityError, match="no valid"):
            store.load_latest()

    def test_truncated_checkpoint_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(make_checkpoint(5))
        newest = store.write(make_checkpoint(10))
        newest.write_bytes(newest.read_bytes()[:40])
        assert store.load_latest().cursor == 5

    def test_injected_corruption_caught_on_load(self, tmp_path):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec("checkpoint.write", 2, "corrupt"))
        )
        store = CheckpointStore(tmp_path, fault_injector=injector)
        store.write(make_checkpoint(5))
        bad = store.write(make_checkpoint(10))  # corrupted on disk
        with pytest.raises(PersistenceError):
            store.load(bad)
        assert store.load_latest().cursor == 5


class TestWriteFaults:
    def test_crash_on_write_propagates(self, tmp_path):
        injector = FaultInjector(
            FaultPlan.crash_at("checkpoint.write", 1)
        )
        store = CheckpointStore(tmp_path, fault_injector=injector)
        with pytest.raises(SimulatedCrash):
            store.write(make_checkpoint(5))
        assert not (tmp_path / "ckpt-00000005.ckpt").exists()

    def test_retry_masks_transient_write_fault(self, tmp_path):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec("checkpoint.write", 1, "io_error"))
        )
        retrier = Retrier(RetryPolicy(max_attempts=3, seed=0))
        store = CheckpointStore(
            tmp_path, fault_injector=injector, retrier=retrier
        )
        path = store.write(make_checkpoint(5))
        assert store.load(path).cursor == 5
        assert retrier.retries == 1


class TestRetention:
    def test_keep_last_k(self, tmp_path):
        config = CheckpointConfig(directory=tmp_path, keep=2)
        store = CheckpointStore(config)
        for cursor in (2, 4, 6, 8):
            store.write(make_checkpoint(cursor))
        names = [p.name for p in store.checkpoints()]
        assert names == ["ckpt-00000006.ckpt", "ckpt-00000008.ckpt"]
        # sidecars of pruned checkpoints are gone too
        assert sorted(
            p.name for p in tmp_path.glob("*.refs.json")
        ) == ["ckpt-00000006.refs.json", "ckpt-00000008.refs.json"]

    def test_orphaned_chunk_payloads_collected(self, tmp_path):
        storage = ChunkStorage()
        table = Table({"x": np.arange(4.0), "y": np.arange(4.0)})
        storage.put_raw(RawChunk(timestamp=0, table=table))
        storage.put_features(
            FeatureChunk(
                timestamp=0,
                raw_reference=0,
                features=np.ones((4, 2)),
                labels=np.zeros(4),
            )
        )
        config = CheckpointConfig(directory=tmp_path, keep=1)
        store = CheckpointStore(config)
        store.write(make_checkpoint(3), storage=storage)
        assert any(store.chunks_directory.iterdir())
        # A later checkpoint with empty storage supersedes it; the
        # old payloads lose their last reference and are collected.
        store.write(make_checkpoint(6), storage=ChunkStorage())
        assert list(store.chunks_directory.iterdir()) == []


class TestStorageSpill:
    def test_manifest_round_trip(self, tmp_path):
        storage = ChunkStorage(max_materialized=2)
        rng = np.random.default_rng(0)
        for timestamp in range(3):
            table = Table(
                {"x": rng.standard_normal(4), "y": np.arange(4.0)}
            )
            storage.put_raw(RawChunk(timestamp=timestamp, table=table))
            storage.put_features(
                FeatureChunk(
                    timestamp=timestamp,
                    raw_reference=timestamp,
                    features=rng.standard_normal((4, 2)),
                    labels=np.arange(4.0),
                )
            )
        # max_materialized=2 evicted the oldest to a stub
        assert storage.num_materialized == 2
        store = CheckpointStore(tmp_path)
        checkpoint = make_checkpoint(9)
        store.write(checkpoint, storage=storage)
        assert checkpoint.manifest is not None

        restored = ChunkStorage(max_materialized=2)
        store.restore_storage(restored, checkpoint.manifest)
        assert restored.manifest() == storage.manifest()
        for timestamp in storage.materialized_timestamps:
            original = storage.peek_features(timestamp)
            copy = restored.peek_features(timestamp)
            assert (
                copy.features.tobytes()
                == original.features.tobytes()
            )
            assert copy.labels.tobytes() == original.labels.tobytes()

    def test_missing_payload_reported(self, tmp_path):
        storage = ChunkStorage()
        table = Table({"x": np.arange(3.0), "y": np.arange(3.0)})
        storage.put_raw(RawChunk(timestamp=0, table=table))
        store = CheckpointStore(tmp_path)
        checkpoint = make_checkpoint(2)
        store.write(checkpoint, storage=storage)
        for payload in store.chunks_directory.iterdir():
            payload.unlink()
        with pytest.raises(ReliabilityError, match="missing chunk"):
            store.restore_storage(ChunkStorage(), checkpoint.manifest)
