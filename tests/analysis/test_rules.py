"""Per-rule corpus tests: each rule flags, passes, and respects noqa.

The per-file rules lint one written-out snippet; the whole-program
rules (REP009–REP014) lint a small written-out *file tree* so the
cross-file machinery — module naming, the import graph, the call
graph — is what the fixture actually exercises.
"""

from __future__ import annotations

import pytest

from repro.analysis import LintConfig, run_lint
from tests.analysis.corpus import (
    CORPUS,
    PROGRAM_CORPUS,
    PROGRAM_RULE_IDS,
    RULE_IDS,
)


def _lint_snippet(tmp_path, rule_id, source):
    target = tmp_path / "snippet.py"
    target.write_text(source, encoding="utf-8")
    config = LintConfig(
        roots=(".",), select=(rule_id,), per_path=(), baseline=None
    )
    return run_lint(tmp_path, config=config, paths=["snippet.py"])


def _lint_tree(tmp_path, rule_id, files):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    config = LintConfig(
        roots=("src",), select=(rule_id,), per_path=(), baseline=None
    )
    return run_lint(tmp_path, config=config)


def test_corpus_covers_every_shipped_rule():
    from repro.analysis import PROGRAM_RULES_BY_ID, RULES_BY_ID

    assert RULE_IDS == sorted(RULES_BY_ID)
    assert PROGRAM_RULE_IDS == sorted(PROGRAM_RULES_BY_ID)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_flags_the_bad_case(tmp_path, rule_id):
    result = _lint_snippet(tmp_path, rule_id, CORPUS[(rule_id, "flag")])
    assert result.findings, f"{rule_id} missed its flagging fixture"
    assert all(f.rule_id == rule_id for f in result.findings)
    assert not result.suppressed


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_passes_the_clean_case(tmp_path, rule_id):
    result = _lint_snippet(tmp_path, rule_id, CORPUS[(rule_id, "clean")])
    assert result.clean, [f.render() for f in result.findings]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_respects_noqa_suppression(tmp_path, rule_id):
    flagged = _lint_snippet(tmp_path, rule_id, CORPUS[(rule_id, "flag")])
    result = _lint_snippet(tmp_path, rule_id, CORPUS[(rule_id, "noqa")])
    assert result.clean, [f.render() for f in result.findings]
    # The suppression actually swallowed the same violations the flag
    # variant raises, rather than the rule going silent.
    assert len(result.suppressed) == len(flagged.findings)
    assert all(f.rule_id == rule_id for f in result.suppressed)


@pytest.mark.parametrize("rule_id", PROGRAM_RULE_IDS)
def test_program_rule_flags_the_bad_case(tmp_path, rule_id):
    result = _lint_tree(tmp_path, rule_id, PROGRAM_CORPUS[(rule_id, "flag")])
    assert result.program_ran
    assert result.findings, f"{rule_id} missed its flagging fixture"
    assert all(f.rule_id == rule_id for f in result.findings)
    assert not result.suppressed


@pytest.mark.parametrize("rule_id", PROGRAM_RULE_IDS)
def test_program_rule_passes_the_clean_case(tmp_path, rule_id):
    result = _lint_tree(tmp_path, rule_id, PROGRAM_CORPUS[(rule_id, "clean")])
    assert result.program_ran
    assert result.clean, [f.render() for f in result.findings]


@pytest.mark.parametrize("rule_id", PROGRAM_RULE_IDS)
def test_program_rule_respects_noqa_suppression(tmp_path, rule_id):
    flagged = _lint_tree(tmp_path, rule_id, PROGRAM_CORPUS[(rule_id, "flag")])
    result = _lint_tree(tmp_path, rule_id, PROGRAM_CORPUS[(rule_id, "noqa")])
    assert result.clean, [f.render() for f in result.findings]
    assert len(result.suppressed) == len(flagged.findings)
    assert all(f.rule_id == rule_id for f in result.suppressed)


def test_program_findings_anchor_at_definition_sites(tmp_path):
    # REP013 reports at the offending function's `def` line, not at
    # the wall read buried two modules away — the anchor is what noqa
    # and the baseline fingerprint key on.
    result = _lint_tree(tmp_path, "REP013", PROGRAM_CORPUS[("REP013", "flag")])
    (finding,) = result.findings
    assert finding.path == "src/repro/core/costs.py"
    assert finding.snippet.startswith("def chunk_cost")
    assert "time.time" in finding.message


def test_noqa_for_a_different_rule_does_not_suppress(tmp_path):
    source = CORPUS[("REP007", "flag")].replace(
        "except Exception:", "except Exception:  # repro: noqa[REP001]"
    )
    result = _lint_snippet(tmp_path, "REP007", source)
    assert not result.clean


def test_findings_carry_stable_fingerprints(tmp_path):
    source = CORPUS[("REP001", "flag")]
    first = _lint_snippet(tmp_path, "REP001", source)
    # Unrelated edits above the finding do not move the fingerprint.
    shifted = "# a new leading comment\n" + source
    second = _lint_snippet(tmp_path, "REP001", shifted)
    assert [f.fingerprint() for f in first.findings] == [
        f.fingerprint() for f in second.findings
    ]
    assert first.findings[0].line != second.findings[0].line
