"""The ``repro lint`` CLI contract: exit codes 0/1/2, JSON output, baselines."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from tests.analysis.corpus import CORPUS


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "ok.py").write_text(
        CORPUS[("REP001", "clean")], encoding="utf-8"
    )
    return tmp_path


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "bad.py").write_text(
        CORPUS[("REP001", "flag")], encoding="utf-8"
    )
    return tmp_path


def _config_file(tmp_path, **overrides):
    payload = {
        "roots": ["src"],
        "select": ["REP001"],
        "baseline": None,
    }
    payload.update(overrides)
    target = tmp_path / "lint.json"
    target.write_text(json.dumps(payload), encoding="utf-8")
    return str(target)


def test_exit_zero_on_clean_tree(clean_tree, capsys):
    code = main(
        [
            "lint",
            "--root",
            str(clean_tree),
            "--config",
            _config_file(clean_tree),
        ]
    )
    assert code == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_exit_one_on_findings(dirty_tree, capsys):
    code = main(
        [
            "lint",
            "--root",
            str(dirty_tree),
            "--config",
            _config_file(dirty_tree),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "REP001" in out and "bad.py" in out


def test_exit_two_on_config_error(dirty_tree, capsys):
    broken = dirty_tree / "lint.json"
    broken.write_text(json.dumps({"select": ["REP999"]}), encoding="utf-8")
    code = main(["lint", "--root", str(dirty_tree), "--config", str(broken)])
    assert code == 2
    assert "config error" in capsys.readouterr().err


def test_json_format_reports_machine_readable_findings(dirty_tree, capsys):
    code = main(
        [
            "lint",
            "--root",
            str(dirty_tree),
            "--config",
            _config_file(dirty_tree),
            "--format",
            "json",
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["findings"][0]["rule"] == "REP001"


def test_update_baseline_then_relint_is_clean(dirty_tree, capsys):
    config = _config_file(dirty_tree, baseline="baseline.json")
    code = main(
        [
            "lint",
            "--root",
            str(dirty_tree),
            "--config",
            config,
            "--update-baseline",
        ]
    )
    assert code == 0
    assert "grandfathered" in capsys.readouterr().out
    written = json.loads(
        (dirty_tree / "baseline.json").read_text(encoding="utf-8")
    )
    assert written["entries"] and written["entries"][0]["rule"] == "REP001"
    assert main(["lint", "--root", str(dirty_tree), "--config", config]) == 0


def test_select_overrides_configured_rules(dirty_tree):
    config = _config_file(dirty_tree)
    code = main(
        [
            "lint",
            "--root",
            str(dirty_tree),
            "--config",
            config,
            "--select",
            "REP007",
        ]
    )
    assert code == 0


def test_list_rules_documents_all_rules(capsys):
    from repro.analysis import RULES_BY_ID

    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES_BY_ID:
        assert rule_id in out
