"""The live ``src/`` tree must be clean under the shipped configuration.

This is the contract the ``lint-invariants`` CI job enforces; keeping a
copy in the tier-1 suite means a violation fails locally before it ever
reaches CI.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import default_config, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean_under_shipped_config():
    result = run_lint(REPO_ROOT, config=default_config())
    assert result.files_scanned > 50
    assert result.clean, "\n".join(f.render() for f in result.findings)


def test_shipped_baseline_is_empty():
    # The issue's bar: fix true positives rather than grandfathering
    # them. Anything added here needs a one-line justification and is
    # expected to trend back to zero.
    result = run_lint(REPO_ROOT, config=default_config())
    assert len(result.baselined) == 0
