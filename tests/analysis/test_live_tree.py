"""The live ``src/`` tree must be clean under the shipped configuration.

This is the contract the ``lint-invariants`` CI job enforces; keeping a
copy in the tier-1 suite means a violation fails locally before it ever
reaches CI.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import default_config, load_baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean_under_shipped_config():
    result = run_lint(REPO_ROOT, config=default_config())
    assert result.files_scanned > 50
    assert result.program_ran
    assert result.clean, "\n".join(f.render() for f in result.findings)


def test_program_pass_alone_is_clean():
    # The whole-program rules must hold on their own (what the CI
    # lint-invariants job runs as its standalone step).
    config = default_config()
    from dataclasses import replace

    config = replace(
        config,
        select=("REP009", "REP010", "REP011", "REP012", "REP013", "REP014"),
    )
    result = run_lint(REPO_ROOT, config=config)
    assert result.program_ran
    assert result.clean, "\n".join(f.render() for f in result.findings)


def test_shipped_baseline_is_tiny_and_justified():
    # The issue's bar: fix true positives rather than grandfathering
    # them. Every entry needs a one-line justification; the list is
    # expected to trend back to zero, so cap it hard.
    baseline = load_baseline(REPO_ROOT / "reprolint-baseline.json")
    assert len(baseline.entries) <= 2
    for entry in baseline.entries:
        assert entry.reason.strip(), entry
        assert len(entry.reason) >= 20, entry
    # ...and every committed entry must still match a live finding —
    # stale fingerprints mean the flagged code changed and the entry
    # must be deleted (or the finding re-fixed).
    result = run_lint(REPO_ROOT, config=default_config())
    matched = {f.fingerprint() for f in result.baselined}
    for entry in baseline.entries:
        assert entry.fingerprint in matched, (
            f"stale baseline entry: {entry}"
        )
