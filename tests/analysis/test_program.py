"""Unit tests of the whole-program model (DESIGN.md §14).

Each test builds a :class:`ProgramModel` from in-memory sources and
probes one layer directly — module naming, alias promotion, symbol
resolution, the import graphs, and the conservative call graph —
independent of any lint rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from textwrap import dedent

from repro.analysis.base import ParsedModule
from repro.analysis.program import (
    ProgramModel,
    is_mutable_value,
    module_name_for,
    subsystem_of,
)


def _build(files):
    parsed = []
    for relpath, source in sorted(files.items()):
        source = dedent(source)
        parsed.append(
            ParsedModule(
                path=Path(relpath),
                relpath=relpath,
                source=source,
                tree=ast.parse(source),
                lines=source.splitlines(),
                suppressions={},
            )
        )
    return ProgramModel.build(parsed)


def test_module_naming_and_subsystems():
    assert (
        module_name_for("src/repro/execution/engine.py")
        == "repro.execution.engine"
    )
    assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"
    assert module_name_for("snippet.py") == "snippet"
    assert subsystem_of("repro.execution.engine") == "execution"
    assert subsystem_of("repro.cli") == "cli"
    assert subsystem_of("snippet") == "snippet"


def test_mutability_verdicts():
    def value(expr):
        return ast.parse(expr, mode="eval").body

    assert is_mutable_value(value("[]"))
    assert is_mutable_value(value("{'a': 1}"))
    assert is_mutable_value(value("collections.defaultdict(list)"))
    assert not is_mutable_value(value("(1, 2)"))
    assert not is_mutable_value(value("frozenset({1})"))


def test_submodule_alias_promotion_and_attr_refs():
    # `from repro.obs import names` binds the *submodule* when one
    # exists; the scanner records it as a member alias and the build
    # promotes it, so `names.FOO` resolves to a module attribute ref.
    model = _build(
        {
            "src/repro/obs/names.py": """\
            FOO = "engine.foo"
            """,
            "src/repro/core/engine.py": """\
            from repro.obs import names

            def run(metrics):
                metrics.counter(names.FOO).inc()
            """,
        }
    )
    engine = model.modules["repro.core.engine"]
    assert engine.module_aliases["names"] == "repro.obs.names"
    assert "names" not in engine.member_aliases
    assert ("repro.obs.names", "FOO") in engine.attr_refs


def test_member_alias_stays_member_when_target_is_not_a_module():
    model = _build(
        {
            "src/repro/obs/metrics.py": """\
            class MetricsRegistry:
                def __init__(self):
                    self.series = {}
            """,
            "src/repro/core/engine.py": """\
            from repro.obs.metrics import MetricsRegistry

            def make():
                return MetricsRegistry()
            """,
        }
    )
    engine = model.modules["repro.core.engine"]
    assert engine.member_aliases["MetricsRegistry"] == (
        "repro.obs.metrics",
        "MetricsRegistry",
    )
    # ...and the call to the class resolves to its __init__.
    callees = model.call_graph["repro.core.engine.make"]
    assert callees == frozenset(
        {"repro.obs.metrics.MetricsRegistry.__init__"}
    )


def test_resolve_module_longest_prefix():
    model = _build(
        {
            "src/repro/obs/__init__.py": "",
            "src/repro/obs/names.py": "FOO = 'a.b'\n",
        }
    )
    assert model.resolve_module("repro.obs.names") == "repro.obs.names"
    assert model.resolve_module("repro.obs.names.FOO") == "repro.obs.names"
    assert model.resolve_module("repro.obs.metrics") == "repro.obs"
    assert model.resolve_module("numpy.random") is None


def test_call_chain_closure_and_skip():
    model = _build(
        {
            "src/repro/core/costs.py": """\
            from repro.utils.clock import stamp

            def chunk_cost(rows):
                return stamp() * len(rows)

            def total(chunks):
                return sum(chunk_cost(c) for c in chunks)
            """,
            "src/repro/utils/clock.py": """\
            import time

            def stamp():
                return tick() + 1

            def tick():
                return time.time()
            """,
        }
    )

    def reads_wall(qualname):
        return bool(model.functions[qualname].wall_reads)

    # total -> chunk_cost -> stamp -> tick, across modules, via the
    # from-import alias and plain same-module names.
    chain = model.call_chain_to("repro.core.costs.total", reads_wall)
    assert chain == [
        "repro.core.costs.total",
        "repro.core.costs.chunk_cost",
        "repro.utils.clock.stamp",
        "repro.utils.clock.tick",
    ]
    # Skipped functions neither match nor propagate: pruning `stamp`
    # severs the only route to the wall read.
    chain = model.call_chain_to(
        "repro.core.costs.total",
        reads_wall,
        skip=lambda q: q.endswith(".stamp"),
    )
    assert chain is None


def test_wall_reads_through_aliases():
    model = _build(
        {
            "src/repro/utils/clock.py": """\
            import time as _time
            from time import perf_counter
            from datetime import datetime

            def a():
                return _time.monotonic()

            def b():
                return perf_counter()

            def c():
                return datetime.now()

            def d():
                return len("no clock here")
            """,
        }
    )
    funcs = model.modules["repro.utils.clock"].functions
    reads = {
        f.name: [name for _, name in f.wall_reads] for f in funcs.values()
    }
    assert reads == {
        "a": ["_time.monotonic"],
        "b": ["perf_counter"],
        "c": ["datetime.now"],
        "d": [],
    }


def test_subsystem_cycle_detection():
    acyclic = _build(
        {
            "src/repro/serving/registry.py": """\
            from repro.ml import trainer
            """,
            "src/repro/ml/trainer.py": """\
            def train():
                return ()
            """,
        }
    )
    assert acyclic.find_subsystem_cycle() is None

    cyclic = _build(
        {
            "src/repro/serving/registry.py": """\
            from repro.ml import trainer
            """,
            "src/repro/ml/trainer.py": """\
            from repro.serving import registry
            """,
        }
    )
    cycle = cyclic.find_subsystem_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    assert set(cycle) == {"ml", "serving"}


def test_deferred_and_type_checking_import_classification():
    model = _build(
        {
            "src/repro/core/engine.py": """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.serving import registry

            def promote():
                from repro.ml import trainer

                return trainer.train()
            """,
            "src/repro/serving/registry.py": "",
            "src/repro/ml/trainer.py": """\
            def train():
                return ()
            """,
        }
    )
    edges = {
        edge.target: edge
        for edge in model.modules["repro.core.engine"].imports
    }
    assert edges["repro.serving.registry"].type_checking
    assert edges["repro.ml.trainer"].deferred
    assert not edges["repro.ml.trainer"].type_checking

    # The runtime module graph keeps the deferred edge (the import
    # executes at call time) but drops the annotation-only one...
    assert model.module_graph["repro.core.engine"] == {"repro.ml.trainer"}
    reachable = model.modules_reachable_from(["repro.core.engine"])
    assert "repro.ml.trainer" in reachable
    assert "repro.serving.registry" not in reachable
    # ...and neither contributes a top-level subsystem witness edge.
    assert "core" not in model.subsystem_graph or not model.subsystem_graph[
        "core"
    ]


def test_relative_imports_resolve_against_the_package():
    model = _build(
        {
            "src/repro/obs/__init__.py": """\
            from .names import FOO
            """,
            "src/repro/obs/names.py": "FOO = 'a.b'\n",
        }
    )
    targets = {
        edge.target for edge in model.modules["repro.obs"].imports
    }
    assert "repro.obs.names.FOO" in targets
    assert model.resolve_module("repro.obs.names.FOO") == "repro.obs.names"


def test_checkpoint_surface_extraction():
    model = _build(
        {
            "src/repro/core/cursor.py": """\
            class Cursor:
                def __init__(self):
                    self.rows = []
                    self.position = 0

                def state_dict(self):
                    return {"position": self.position}
            """,
        }
    )
    cls = model.modules["repro.core.cursor"].classes["Cursor"]
    assert set(cls.mutable_attrs) == {"rows"}
    assert cls.self_refs["state_dict"] == {"position"}
    assert cls.state_dict_keys == frozenset({"position"})
