"""The reprolint fixture corpus.

One (flagging, clean, noqa-suppressed) source triple per rule, kept
as strings so the deliberately-bad fixture code never reaches the
general linters (ruff/pyflakes) that sweep ``tests/``. The test
harness writes each snippet to a temp file and lints it with exactly
one rule selected.

Per-file rules (REP001–REP008) use single-source triples in
``CORPUS``; the whole-program rules (REP009–REP014, DESIGN.md §14)
need cross-file structure, so ``PROGRAM_CORPUS`` maps each variant to
a *file tree* (repo-relative path -> source) that the harness writes
under a temp root and lints whole.
"""

from __future__ import annotations

from textwrap import dedent
from typing import Dict, Tuple

#: (rule id, variant) -> source. Variants: flag / clean / noqa.
CORPUS: Dict[Tuple[str, str], str] = {}

#: (rule id, variant) -> {relpath: source}. Variants: flag / clean /
#: noqa. Paths follow the ``src/repro/<subsystem>/...`` layout so the
#: program model's module naming and subsystem mapping apply.
PROGRAM_CORPUS: Dict[Tuple[str, str], Dict[str, str]] = {}


def _add(rule: str, flag: str, clean: str, noqa: str) -> None:
    CORPUS[(rule, "flag")] = dedent(flag)
    CORPUS[(rule, "clean")] = dedent(clean)
    CORPUS[(rule, "noqa")] = dedent(noqa)


def _add_program(
    rule: str,
    flag: Dict[str, str],
    clean: Dict[str, str],
    noqa: Dict[str, str],
) -> None:
    PROGRAM_CORPUS[(rule, "flag")] = {
        path: dedent(source) for path, source in flag.items()
    }
    PROGRAM_CORPUS[(rule, "clean")] = {
        path: dedent(source) for path, source in clean.items()
    }
    PROGRAM_CORPUS[(rule, "noqa")] = {
        path: dedent(source) for path, source in noqa.items()
    }


_add(
    "REP001",
    flag="""\
    import numpy as np

    def jitter(n):
        return np.random.default_rng(0).normal(size=n)
    """,
    clean="""\
    from repro.utils.rng import ensure_rng

    def jitter(n, seed=None):
        return ensure_rng(seed).normal(size=n)
    """,
    noqa="""\
    import numpy as np

    def jitter(n):
        return np.random.default_rng(0).normal(size=n)  # repro: noqa[REP001]
    """,
)

_add(
    "REP002",
    flag="""\
    import time

    def stamp():
        return time.time()
    """,
    clean="""\
    def stamp(engine):
        return engine.total_cost()
    """,
    noqa="""\
    import time

    def stamp():
        return time.time()  # repro: noqa[REP002]
    """,
)

_add(
    "REP003",
    flag="""\
    class HalfPersistent:
        def state_dict(self):
            return {"cursor": self.cursor}
    """,
    clean="""\
    class Persistent:
        def state_dict(self):
            return {"cursor": self.cursor}

        def load_state_dict(self, state):
            self.cursor = state["cursor"]
    """,
    noqa="""\
    class HalfPersistent:
        def state_dict(self):  # repro: noqa[REP003]
            return {"cursor": self.cursor}
    """,
)

_add(
    "REP004",
    flag="""\
    class Skewed:
        def state_dict(self):
            return {"cursor": self.cursor, "extra": 1}

        def load_state_dict(self, state):
            self.cursor = state["cursor"]
            self.other = state["missing"]
    """,
    clean="""\
    class Symmetric:
        def state_dict(self):
            return {"cursor": self.cursor, "total": self.total}

        def load_state_dict(self, state):
            self.cursor = state["cursor"]
            self.total = state.get("total", 0.0)
    """,
    # One noqa per asymmetric side: REP004 reports the saved-but-never-
    # read key at state_dict and the read-but-never-saved key at
    # load_state_dict.
    noqa="""\
    class Skewed:
        def state_dict(self):  # repro: noqa[REP004]
            return {"cursor": self.cursor, "extra": 1}

        def load_state_dict(self, state):  # repro: noqa[REP004]
            self.cursor = state["cursor"]
            self.other = state["missing"]
    """,
)

_add(
    "REP005",
    flag="""\
    def record(telemetry):
        telemetry.metrics.counter("cache.bogus_event").inc()
        telemetry.tracer.point("camelCaseName", x=1)
    """,
    clean="""\
    from repro.obs import names

    def record(telemetry):
        telemetry.metrics.counter(names.CACHE_HITS).inc()
        telemetry.tracer.point(names.SCHEDULER_DECISION, x=1)
        telemetry.tracer.point(names.ROLLOUT_PREFIX + "promote", x=1)
        telemetry.tracer.point(names.PERF_CHECK, regressions=0)
        telemetry.metrics.counter(names.PERF_REGRESSIONS).inc()
        telemetry.tracer.point(names.ALERT_FIRING, rule="drift")
        telemetry.metrics.counter(names.ALERTS_FIRED).inc()
        telemetry.metrics.gauge(names.MONITOR_WINDOWS).set(24)
        telemetry.metrics.observe(names.SERVING_LATENCY, 0.01)
        telemetry.tracer.point(names.PLATFORM_CHUNK, error=0.4)
        telemetry.tracer.point(names.HEALTH_EXPORTED, path="h.json")
        telemetry.metrics.counter(names.TRAFFIC_ARRIVALS).inc()
        telemetry.metrics.counter(names.TRAFFIC_SHED).inc()
        telemetry.metrics.gauge(names.TRAFFIC_QUEUE_DEPTH).set(3)
        telemetry.metrics.counter(names.BATCH_DISPATCHED).inc()
        telemetry.metrics.observe(names.BATCH_WAIT, 0.002)
        telemetry.tracer.point(names.SLO_LATENCY, cost=0.01)
        telemetry.metrics.gauge(names.SLO_SHED_RATE).set(0.0)
        telemetry.tracer.point(names.FLEET_EPOCH, epoch=0)
        telemetry.metrics.counter(names.FLEET_TRAININGS).inc()
        telemetry.metrics.gauge(names.FLEET_BALANCE).set(0.25)
        telemetry.metrics.counter(names.FLEET_RESCUES).inc()
        telemetry.tracer.point(names.FLEET_OVERDRAFT, tenant="t0")
        telemetry.tracer.point(names.LINEAGE_NODE, kind="chunk")
        telemetry.metrics.counter(names.LINEAGE_NODES).inc()
        telemetry.metrics.counter(names.LINEAGE_EDGES).inc()
        telemetry.tracer.point(names.LINEAGE_EXPORTED, path="l.json")
    """,
    noqa="""\
    def record(telemetry):
        telemetry.metrics.counter("cache.bogus_event").inc()  # repro: noqa[REP005]
        telemetry.tracer.point("camelCaseName", x=1)  # repro: noqa
    """,
)

_add(
    "REP006",
    flag="""\
    def hammer(injector):
        injector.fire("stream.reed")
    """,
    clean="""\
    from repro.reliability.sites import STREAM_READ

    def hammer(injector):
        injector.fire(STREAM_READ)
        injector.fire("storage.read")
    """,
    noqa="""\
    def hammer(injector):
        injector.fire("stream.reed")  # repro: noqa[REP006]
    """,
)

_add(
    "REP007",
    flag="""\
    def swallow(op):
        try:
            return op()
        except Exception:
            return None
    """,
    # A blind handler that re-raises (error translation) is allowed;
    # so is catching a specific type.
    clean="""\
    def translate(op):
        try:
            return op()
        except ValueError as error:
            raise RuntimeError("bad value") from error
    """,
    noqa="""\
    def swallow(op):
        try:
            return op()
        except Exception:  # repro: noqa[REP007]
            return None
    """,
)

_add(
    "REP008",
    flag="""\
    def accumulate(value, into=[]):
        if value == 0.125:
            into.append(value)
        return into
    """,
    clean="""\
    import math

    def accumulate(value, into=None):
        into = [] if into is None else into
        if math.isclose(value, 0.125):
            into.append(value)
        return into
    """,
    noqa="""\
    def accumulate(value, into=[]):  # repro: noqa[REP008]
        if value == 0.125:  # repro: noqa[REP008]
            into.append(value)
        return into
    """,
)

# -- whole-program triples (REP009–REP014) ---------------------------

_add_program(
    "REP009",
    # `self.rows` is mutable and the checkpoint pair never touches it:
    # a recovered Cursor silently loses the buffered rows.
    flag={
        "src/repro/core/cursor.py": """\
        class Cursor:
            def __init__(self):
                self.rows = []
                self.position = 0

            def state_dict(self):
                return {"position": self.position}

            def load_state_dict(self, state):
                self.position = state["position"]
        """,
    },
    # Coverage through a helper: state_dict calls self._snapshot(),
    # which reads self.rows — the rule follows self.<method>() calls.
    clean={
        "src/repro/core/cursor.py": """\
        class Cursor:
            def __init__(self):
                self.rows = []
                self.position = 0

            def _snapshot(self):
                return {"rows": list(self.rows), "position": self.position}

            def state_dict(self):
                return self._snapshot()

            def load_state_dict(self, state):
                self.rows = list(state["rows"])
                self.position = state["position"]
        """,
    },
    noqa={
        "src/repro/core/cursor.py": """\
        class Cursor:
            def __init__(self):
                self.rows = []  # repro: noqa[REP009]
                self.position = 0

            def state_dict(self):
                return {"position": self.position}

            def load_state_dict(self, state):
                self.position = state["position"]
        """,
    },
)

_add_program(
    "REP010",
    flag={
        "src/repro/reliability/janitor.py": """\
        def sweep(directory):
            for stale in directory.glob("*.tmp"):
                stale.unlink()
        """,
    },
    clean={
        "src/repro/reliability/janitor.py": """\
        def sweep(directory):
            for stale in sorted(directory.glob("*.tmp")):
                stale.unlink()
        """,
    },
    noqa={
        "src/repro/reliability/janitor.py": """\
        def sweep(directory):
            for stale in directory.glob("*.tmp"):  # repro: noqa[REP010]
                stale.unlink()
        """,
    },
)

_add_program(
    "REP011",
    # The mutable lives in repro.utils — outside the sharded
    # subsystems — but an ml module imports it, so it lands in every
    # worker shard's import closure and gets flagged there.
    flag={
        "src/repro/ml/model.py": """\
        from repro.utils import pool

        def warm():
            return pool.POOL
        """,
        "src/repro/utils/pool.py": """\
        POOL = []
        """,
    },
    # Immutable binding is fine; so is a mutable in a module nothing
    # shard-side imports (reachability, not mere existence, triggers).
    clean={
        "src/repro/ml/model.py": """\
        from repro.utils import pool

        def warm():
            return pool.POOL
        """,
        "src/repro/utils/pool.py": """\
        POOL = ("slot_a", "slot_b")
        """,
        "src/repro/viz/state.py": """\
        PENDING = []
        """,
    },
    noqa={
        "src/repro/ml/model.py": """\
        from repro.utils import pool

        def warm():
            return pool.POOL
        """,
        "src/repro/utils/pool.py": """\
        POOL = []  # repro: noqa[REP011]
        """,
    },
)

_add_program(
    "REP012",
    # ml (layer 2) importing serving (layer 9) points *up* the table.
    flag={
        "src/repro/ml/trainer.py": """\
        from repro.serving import registry

        def train():
            return registry.ROUTES
        """,
        "src/repro/serving/registry.py": """\
        ROUTES = ()
        """,
    },
    # The reverse direction points strictly down and is legal.
    clean={
        "src/repro/ml/trainer.py": """\
        def train():
            return ()
        """,
        "src/repro/serving/registry.py": """\
        from repro.ml import trainer

        def routes():
            return trainer.train()
        """,
    },
    noqa={
        "src/repro/ml/trainer.py": """\
        from repro.serving import registry  # repro: noqa[REP012]

        def train():
            return registry.ROUTES
        """,
        "src/repro/serving/registry.py": """\
        ROUTES = ()
        """,
    },
)

_add_program(
    "REP013",
    # chunk_cost never touches time.* itself; the call graph connects
    # it to the wall read two hops away in another module.
    flag={
        "src/repro/core/costs.py": """\
        from repro.utils.clock import stamp

        def chunk_cost(rows):
            return stamp() * len(rows)
        """,
        "src/repro/utils/clock.py": """\
        import time

        def stamp():
            return time.time()
        """,
    },
    clean={
        "src/repro/core/costs.py": """\
        from repro.utils.clock import stamp

        def chunk_cost(rows):
            return stamp() * len(rows)
        """,
        "src/repro/utils/clock.py": """\
        _TICKS = 0


        def stamp():
            global _TICKS
            _TICKS += 1
            return _TICKS
        """,
    },
    noqa={
        "src/repro/core/costs.py": """\
        from repro.utils.clock import stamp

        def chunk_cost(rows):  # repro: noqa[REP013]
            return stamp() * len(rows)
        """,
        "src/repro/utils/clock.py": """\
        import time

        def stamp():
            return time.time()
        """,
    },
)

_add_program(
    "REP014",
    # DEAD_NAME is declared in the vocabulary but nothing emits it.
    flag={
        "src/repro/obs/names.py": """\
        CHUNKS_PROCESSED = "engine.chunks_processed"
        DEAD_NAME = "engine.never_emitted"
        """,
        "src/repro/core/engine.py": """\
        from repro.obs import names

        def run(metrics):
            metrics.counter(names.CHUNKS_PROCESSED).inc()
        """,
    },
    # Live via constant reference AND via raw string value; the
    # trailing-dot prefix constant is a wildcard family and exempt.
    clean={
        "src/repro/obs/names.py": """\
        CHUNKS_PROCESSED = "engine.chunks_processed"
        ROWS_SEEN = "engine.rows_seen"
        ENGINE_PREFIX = "engine."
        """,
        "src/repro/core/engine.py": """\
        from repro.obs import names

        def run(metrics):
            metrics.counter(names.CHUNKS_PROCESSED).inc()
            metrics.gauge("engine.rows_seen").set(0)
        """,
    },
    noqa={
        "src/repro/obs/names.py": """\
        CHUNKS_PROCESSED = "engine.chunks_processed"
        DEAD_NAME = "engine.never_emitted"  # repro: noqa[REP014]
        """,
        "src/repro/core/engine.py": """\
        from repro.obs import names

        def run(metrics):
            metrics.counter(names.CHUNKS_PROCESSED).inc()
        """,
    },
)

#: Rule ids covered by the per-file corpus.
RULE_IDS = sorted({rule for rule, _ in CORPUS})

#: Rule ids covered by the whole-program corpus.
PROGRAM_RULE_IDS = sorted({rule for rule, _ in PROGRAM_CORPUS})
