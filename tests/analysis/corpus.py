"""The reprolint fixture corpus.

One (flagging, clean, noqa-suppressed) source triple per rule, kept
as strings so the deliberately-bad fixture code never reaches the
general linters (ruff/pyflakes) that sweep ``tests/``. The test
harness writes each snippet to a temp file and lints it with exactly
one rule selected.
"""

from __future__ import annotations

from textwrap import dedent
from typing import Dict, Tuple

#: (rule id, variant) -> source. Variants: flag / clean / noqa.
CORPUS: Dict[Tuple[str, str], str] = {}


def _add(rule: str, flag: str, clean: str, noqa: str) -> None:
    CORPUS[(rule, "flag")] = dedent(flag)
    CORPUS[(rule, "clean")] = dedent(clean)
    CORPUS[(rule, "noqa")] = dedent(noqa)


_add(
    "REP001",
    flag="""\
    import numpy as np

    def jitter(n):
        return np.random.default_rng(0).normal(size=n)
    """,
    clean="""\
    from repro.utils.rng import ensure_rng

    def jitter(n, seed=None):
        return ensure_rng(seed).normal(size=n)
    """,
    noqa="""\
    import numpy as np

    def jitter(n):
        return np.random.default_rng(0).normal(size=n)  # repro: noqa[REP001]
    """,
)

_add(
    "REP002",
    flag="""\
    import time

    def stamp():
        return time.time()
    """,
    clean="""\
    def stamp(engine):
        return engine.total_cost()
    """,
    noqa="""\
    import time

    def stamp():
        return time.time()  # repro: noqa[REP002]
    """,
)

_add(
    "REP003",
    flag="""\
    class HalfPersistent:
        def state_dict(self):
            return {"cursor": self.cursor}
    """,
    clean="""\
    class Persistent:
        def state_dict(self):
            return {"cursor": self.cursor}

        def load_state_dict(self, state):
            self.cursor = state["cursor"]
    """,
    noqa="""\
    class HalfPersistent:
        def state_dict(self):  # repro: noqa[REP003]
            return {"cursor": self.cursor}
    """,
)

_add(
    "REP004",
    flag="""\
    class Skewed:
        def state_dict(self):
            return {"cursor": self.cursor, "extra": 1}

        def load_state_dict(self, state):
            self.cursor = state["cursor"]
            self.other = state["missing"]
    """,
    clean="""\
    class Symmetric:
        def state_dict(self):
            return {"cursor": self.cursor, "total": self.total}

        def load_state_dict(self, state):
            self.cursor = state["cursor"]
            self.total = state.get("total", 0.0)
    """,
    # One noqa per asymmetric side: REP004 reports the saved-but-never-
    # read key at state_dict and the read-but-never-saved key at
    # load_state_dict.
    noqa="""\
    class Skewed:
        def state_dict(self):  # repro: noqa[REP004]
            return {"cursor": self.cursor, "extra": 1}

        def load_state_dict(self, state):  # repro: noqa[REP004]
            self.cursor = state["cursor"]
            self.other = state["missing"]
    """,
)

_add(
    "REP005",
    flag="""\
    def record(telemetry):
        telemetry.metrics.counter("cache.bogus_event").inc()
        telemetry.tracer.point("camelCaseName", x=1)
    """,
    clean="""\
    from repro.obs import names

    def record(telemetry):
        telemetry.metrics.counter(names.CACHE_HITS).inc()
        telemetry.tracer.point(names.SCHEDULER_DECISION, x=1)
        telemetry.tracer.point(names.ROLLOUT_PREFIX + "promote", x=1)
        telemetry.tracer.point(names.PERF_CHECK, regressions=0)
        telemetry.metrics.counter(names.PERF_REGRESSIONS).inc()
        telemetry.tracer.point(names.ALERT_FIRING, rule="drift")
        telemetry.metrics.counter(names.ALERTS_FIRED).inc()
        telemetry.metrics.gauge(names.MONITOR_WINDOWS).set(24)
        telemetry.metrics.observe(names.SERVING_LATENCY, 0.01)
        telemetry.tracer.point(names.PLATFORM_CHUNK, error=0.4)
        telemetry.tracer.point(names.HEALTH_EXPORTED, path="h.json")
        telemetry.metrics.counter(names.TRAFFIC_ARRIVALS).inc()
        telemetry.metrics.counter(names.TRAFFIC_SHED).inc()
        telemetry.metrics.gauge(names.TRAFFIC_QUEUE_DEPTH).set(3)
        telemetry.metrics.counter(names.BATCH_DISPATCHED).inc()
        telemetry.metrics.observe(names.BATCH_WAIT, 0.002)
        telemetry.tracer.point(names.SLO_LATENCY, cost=0.01)
        telemetry.metrics.gauge(names.SLO_SHED_RATE).set(0.0)
        telemetry.tracer.point(names.FLEET_EPOCH, epoch=0)
        telemetry.metrics.counter(names.FLEET_TRAININGS).inc()
        telemetry.metrics.gauge(names.FLEET_BALANCE).set(0.25)
        telemetry.metrics.counter(names.FLEET_RESCUES).inc()
        telemetry.tracer.point(names.FLEET_OVERDRAFT, tenant="t0")
    """,
    noqa="""\
    def record(telemetry):
        telemetry.metrics.counter("cache.bogus_event").inc()  # repro: noqa[REP005]
        telemetry.tracer.point("camelCaseName", x=1)  # repro: noqa
    """,
)

_add(
    "REP006",
    flag="""\
    def hammer(injector):
        injector.fire("stream.reed")
    """,
    clean="""\
    from repro.reliability.sites import STREAM_READ

    def hammer(injector):
        injector.fire(STREAM_READ)
        injector.fire("storage.read")
    """,
    noqa="""\
    def hammer(injector):
        injector.fire("stream.reed")  # repro: noqa[REP006]
    """,
)

_add(
    "REP007",
    flag="""\
    def swallow(op):
        try:
            return op()
        except Exception:
            return None
    """,
    # A blind handler that re-raises (error translation) is allowed;
    # so is catching a specific type.
    clean="""\
    def translate(op):
        try:
            return op()
        except ValueError as error:
            raise RuntimeError("bad value") from error
    """,
    noqa="""\
    def swallow(op):
        try:
            return op()
        except Exception:  # repro: noqa[REP007]
            return None
    """,
)

_add(
    "REP008",
    flag="""\
    def accumulate(value, into=[]):
        if value == 0.125:
            into.append(value)
        return into
    """,
    clean="""\
    import math

    def accumulate(value, into=None):
        into = [] if into is None else into
        if math.isclose(value, 0.125):
            into.append(value)
        return into
    """,
    noqa="""\
    def accumulate(value, into=[]):  # repro: noqa[REP008]
        if value == 0.125:  # repro: noqa[REP008]
            into.append(value)
        return into
    """,
)

#: Rule ids covered by the corpus (all shipped rules).
RULE_IDS = sorted({rule for rule, _ in CORPUS})
