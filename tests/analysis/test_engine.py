"""Engine, config, and baseline behaviour of reprolint."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    ConfigError,
    LintConfig,
    PathPolicy,
    default_config,
    load_baseline,
    load_config,
    run_lint,
    write_baseline,
)
from repro.analysis.engine import PARSE_ERROR_RULE

BAD_RNG = "import numpy as np\nx = np.random.rand(3)\n"
BAD_CLOCK = "import time\nnow = time.time()\n"


def _tree(tmp_path, files):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")


def test_per_path_policies_scope_rules(tmp_path):
    _tree(
        tmp_path,
        {
            "src/core/clock.py": BAD_CLOCK,
            "src/util/clock.py": BAD_CLOCK,
        },
    )
    config = LintConfig(
        roots=("src",),
        select=(),
        per_path=(PathPolicy("src/core/*", enable=("REP002",)),),
        baseline=None,
    )
    result = run_lint(tmp_path, config=config)
    assert [f.path for f in result.findings] == ["src/core/clock.py"]


def test_policy_disable_wins_over_select(tmp_path):
    _tree(tmp_path, {"src/gen.py": BAD_RNG})
    config = LintConfig(
        roots=("src",),
        select=("REP001",),
        per_path=(PathPolicy("src/gen.py", disable=("REP001",)),),
        baseline=None,
    )
    assert run_lint(tmp_path, config=config).clean


def test_unknown_rule_id_is_a_config_error():
    with pytest.raises(ConfigError):
        LintConfig(select=("REP999",))
    with pytest.raises(ConfigError):
        LintConfig(per_path=(PathPolicy("*", enable=("NOPE",)),))


def test_syntax_error_reports_rep000(tmp_path):
    _tree(tmp_path, {"src/broken.py": "def nope(:\n"})
    config = LintConfig(roots=("src",), select=("REP001",), baseline=None)
    result = run_lint(tmp_path, config=config)
    assert [f.rule_id for f in result.findings] == [PARSE_ERROR_RULE]


def test_missing_explicit_target_is_a_config_error(tmp_path):
    config = LintConfig(roots=(".",), baseline=None)
    with pytest.raises(ConfigError):
        run_lint(tmp_path, config=config, paths=["nothing_here.py"])


def test_excluded_paths_are_skipped(tmp_path):
    _tree(tmp_path, {"src/vendored/gen.py": BAD_RNG})
    config = LintConfig(
        roots=("src",),
        select=("REP001",),
        exclude=("*vendored*",),
        baseline=None,
    )
    result = run_lint(tmp_path, config=config)
    assert result.clean and result.files_scanned == 0


def test_baseline_filters_matching_findings_only(tmp_path):
    _tree(tmp_path, {"src/gen.py": BAD_RNG})
    config = LintConfig(roots=("src",), select=("REP001",), baseline=None)
    first = run_lint(tmp_path, config=config)
    assert len(first.findings) == 1
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.findings, reason="legacy generator")
    config = LintConfig(
        roots=("src",), select=("REP001",), baseline="baseline.json"
    )
    second = run_lint(tmp_path, config=config)
    assert second.clean
    assert len(second.baselined) == 1
    # Changing the flagged line invalidates the grandfathering.
    _tree(tmp_path, {"src/gen.py": "import numpy as np\ny = np.random.rand(9)\n"})
    third = run_lint(tmp_path, config=config)
    assert not third.clean


def test_baseline_without_reason_is_rejected(tmp_path):
    payload = {
        "version": 1,
        "entries": [
            {"rule": "REP001", "path": "x.py", "fingerprint": "ab", "reason": ""}
        ],
    }
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(target)


def test_malformed_baseline_is_a_config_error(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text("not json", encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(target)
    target.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ConfigError):
        load_baseline(target)


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json").entries == ()


def test_load_config_round_trip(tmp_path):
    raw = {
        "roots": ["src"],
        "select": ["REP001", "REP007"],
        "per_path": [{"pattern": "src/core/*", "enable": ["REP002"]}],
        "exclude": ["*skip*"],
        "baseline": None,
    }
    target = tmp_path / "lint.json"
    target.write_text(json.dumps(raw), encoding="utf-8")
    config = load_config(target)
    assert config.select == ("REP001", "REP007")
    assert config.rules_for_path("src/core/x.py") == (
        "REP001",
        "REP002",
        "REP007",
    )
    assert config.baseline is None


def test_load_config_rejects_unknown_fields(tmp_path):
    target = tmp_path / "lint.json"
    target.write_text(json.dumps({"rulez": []}), encoding="utf-8")
    with pytest.raises(ConfigError):
        load_config(target)
    target.write_text(json.dumps({"per_path": [{"enable": []}]}))
    with pytest.raises(ConfigError):
        load_config(target)
    target.write_text("{broken", encoding="utf-8")
    with pytest.raises(ConfigError):
        load_config(target)


WALLED_TREE = {
    "src/repro/core/costs.py": (
        "from repro.utils.clock import stamp\n"
        "\n"
        "def chunk_cost(rows):\n"
        "    return stamp() * len(rows)\n"
    ),
    "src/repro/utils/clock.py": (
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
    ),
}


def test_rep013_policy_disable_sanctions_chain_endpoints(tmp_path):
    _tree(tmp_path, WALLED_TREE)
    config = LintConfig(
        roots=("src",), select=("REP013",), per_path=(), baseline=None
    )
    assert not run_lint(tmp_path, config=config).clean
    # Disabling REP013 on the clock module does more than spare its
    # own defs: it marks the module as a sanctioned wall reader, so
    # chains *through* it stop matching everywhere.
    config = LintConfig(
        roots=("src",),
        select=("REP013",),
        per_path=(PathPolicy("src/repro/utils/clock.py", disable=("REP013",)),),
        baseline=None,
    )
    assert run_lint(tmp_path, config=config).clean


def test_program_pass_can_be_disabled(tmp_path):
    _tree(tmp_path, WALLED_TREE)
    config = LintConfig(
        roots=("src",), select=("REP013",), per_path=(), baseline=None
    )
    result = run_lint(tmp_path, config=config, program=False)
    assert not result.program_ran
    assert result.clean


def test_path_narrowing_keeps_whole_tree_model(tmp_path):
    # Linting only costs.py must still build the model from the full
    # tree (the chain ends in clock.py) — and findings anchored in
    # files outside the narrowed set are dropped from the output.
    _tree(tmp_path, WALLED_TREE)
    config = LintConfig(
        roots=("src",), select=("REP013",), per_path=(), baseline=None
    )
    result = run_lint(
        tmp_path, config=config, paths=["src/repro/core/costs.py"]
    )
    assert [f.path for f in result.findings] == ["src/repro/core/costs.py"]
    result = run_lint(
        tmp_path, config=config, paths=["src/repro/utils/clock.py"]
    )
    assert result.clean


def test_baseline_applies_to_program_findings(tmp_path):
    _tree(tmp_path, WALLED_TREE)
    config = LintConfig(
        roots=("src",), select=("REP013",), per_path=(), baseline=None
    )
    first = run_lint(tmp_path, config=config)
    assert len(first.findings) == 1
    write_baseline(
        tmp_path / "baseline.json", first.findings, reason="legacy wall read"
    )
    config = LintConfig(
        roots=("src",),
        select=("REP013",),
        per_path=(),
        baseline="baseline.json",
    )
    second = run_lint(tmp_path, config=config)
    assert second.clean
    assert len(second.baselined) == 1


def test_default_config_scopes_match_the_declared_policy():
    config = default_config()
    assert "REP002" in config.rules_for_path("src/repro/core/scheduler.py")
    assert "REP002" in config.rules_for_path("src/repro/execution/cost.py")
    assert "REP002" not in config.rules_for_path("src/repro/obs/trace.py")
    assert "REP007" in config.rules_for_path("src/repro/serving/registry.py")
    assert "REP007" not in config.rules_for_path("src/repro/io/csvio.py")
    assert "REP008" in config.rules_for_path("src/repro/ml/sgd.py")
    assert "REP001" not in config.rules_for_path("src/repro/utils/rng.py")
    assert "REP001" in config.rules_for_path("src/repro/utils/timer.py")
