"""Unit tests for the Pipeline chain."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import PipelineError
from repro.execution.cost import CostTracker
from repro.pipeline.component import (
    Batch,
    Features,
    StatelessComponent,
)
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.components.scaler import StandardScaler
from repro.pipeline.pipeline import Pipeline


class AddOne(StatelessComponent):
    def transform(self, batch: Batch) -> Batch:
        return batch.with_column("x", np.asarray(batch["x"]) + 1.0)


class CountingScaler(StandardScaler):
    """StandardScaler that counts update calls."""

    def __init__(self, columns, name=None):
        super().__init__(columns, name=name)
        self.updates = 0

    def update(self, batch):
        self.updates += 1
        super().update(batch)


def make_pipeline():
    return Pipeline(
        [
            AddOne(name="add_one"),
            CountingScaler(["x"], name="scaler"),
            FeatureAssembler(["x"], "y", name="assembler"),
        ]
    )


def sample_table():
    return Table({"x": [0.0, 2.0], "y": [1.0, -1.0]})


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(PipelineError, match="at least one"):
            Pipeline([])

    def test_non_component_rejected(self):
        with pytest.raises(PipelineError, match="not a PipelineComponent"):
            Pipeline([object()])

    def test_duplicate_names_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            Pipeline([AddOne(name="a"), AddOne(name="a")])

    def test_component_lookup(self):
        pipeline = make_pipeline()
        assert pipeline.component("scaler").name == "scaler"
        with pytest.raises(PipelineError, match="no component"):
            pipeline.component("nope")

    def test_introspection(self):
        pipeline = make_pipeline()
        assert len(pipeline) == 3
        assert pipeline.component_names == [
            "add_one", "scaler", "assembler",
        ]
        assert [c.name for c in pipeline.stateful_components] == [
            "scaler"
        ]

    def test_components_returns_copy(self):
        pipeline = make_pipeline()
        pipeline.components.clear()
        assert len(pipeline) == 3


class TestExecutionPaths:
    def test_update_transform_updates_statistics(self):
        pipeline = make_pipeline()
        pipeline.update_transform(sample_table())
        assert pipeline.component("scaler").updates == 1

    def test_transform_does_not_update_statistics(self):
        pipeline = make_pipeline()
        pipeline.transform(sample_table())
        assert pipeline.component("scaler").updates == 0

    def test_terminal_features(self):
        pipeline = make_pipeline()
        result = pipeline.update_transform_to_features(sample_table())
        assert isinstance(result, Features)
        assert result.num_rows == 2

    def test_transform_to_features_requires_terminal(self):
        pipeline = Pipeline([AddOne()])
        with pytest.raises(PipelineError, match="terminate"):
            pipeline.transform_to_features(sample_table())

    def test_train_serve_consistency(self):
        """The serving path must apply the same transformations the
        training path fitted — the §4.3 guarantee."""
        pipeline = make_pipeline()
        trained = pipeline.update_transform_to_features(sample_table())
        served = pipeline.transform_to_features(sample_table())
        assert np.allclose(trained.matrix, served.matrix)

    def test_reset_clears_all_statistics(self):
        pipeline = make_pipeline()
        pipeline.update_transform(sample_table())
        pipeline.reset()
        # After reset the scaler is an identity again.
        result = pipeline.transform_to_features(sample_table())
        assert np.allclose(result.matrix.ravel(), [1.0, 3.0])


class TestCostCharging:
    def test_online_pass_charges_statistics_and_transform(self):
        pipeline = make_pipeline()
        tracker = CostTracker()
        pipeline.update_transform(sample_table(), tracker)
        breakdown = tracker.breakdown()
        assert breakdown.by_category["preprocessing"] > 0
        assert breakdown.by_category["statistics"] > 0

    def test_transform_only_charges_no_statistics(self):
        pipeline = make_pipeline()
        tracker = CostTracker()
        pipeline.transform(sample_table(), tracker)
        assert tracker.category("statistics") == 0.0
        assert tracker.category("preprocessing") > 0

    def test_per_component_labels(self):
        pipeline = make_pipeline()
        tracker = CostTracker()
        pipeline.transform(sample_table(), tracker)
        labels = tracker.breakdown().by_label
        assert "add_one" in labels
        assert "scaler" in labels
        assert "assembler" in labels

    def test_stateless_components_skip_statistics_charge(self):
        pipeline = Pipeline(
            [AddOne(name="a"), FeatureAssembler(["x"], "y")]
        )
        tracker = CostTracker()
        pipeline.update_transform(sample_table(), tracker)
        assert tracker.category("statistics") == 0.0
