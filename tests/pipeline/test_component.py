"""Unit tests for the component contract and Features batches."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.table import Table
from repro.pipeline.component import (
    Batch,
    ComponentKind,
    Features,
    PipelineComponent,
    StatelessComponent,
    union_features,
)


class Recorder(PipelineComponent):
    """Stateful component recording call order for contract tests."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def update(self, batch: Batch) -> None:
        self.calls.append("update")

    def transform(self, batch: Batch) -> Batch:
        self.calls.append("transform")
        return batch


class TestFeatures:
    def test_dense_properties(self):
        features = Features(matrix=np.ones((3, 4)), labels=np.ones(3))
        assert features.num_rows == 3
        assert features.num_features == 4
        assert features.num_values() == 12 + 3

    def test_sparse_num_values_uses_nnz(self):
        matrix = sp.csr_matrix((np.ones(2), ([0, 1], [0, 5])), shape=(2, 100))
        features = Features(matrix=matrix, labels=np.ones(2))
        assert features.num_values() == 2 + 2


class TestUnionFeatures:
    def test_dense_union(self):
        parts = [
            Features(matrix=np.ones((2, 3)), labels=np.zeros(2)),
            Features(matrix=2 * np.ones((1, 3)), labels=np.ones(1)),
        ]
        merged = union_features(parts)
        assert merged.matrix.shape == (3, 3)
        assert merged.labels.tolist() == [0.0, 0.0, 1.0]

    def test_sparse_union(self):
        parts = [
            Features(matrix=sp.csr_matrix(np.eye(2)), labels=np.ones(2)),
            Features(matrix=sp.csr_matrix(np.eye(2)), labels=np.ones(2)),
        ]
        merged = union_features(parts)
        assert sp.issparse(merged.matrix)
        assert merged.matrix.shape == (4, 2)

    def test_mixed_rejected(self):
        parts = [
            Features(matrix=np.eye(2), labels=np.ones(2)),
            Features(matrix=sp.csr_matrix(np.eye(2)), labels=np.ones(2)),
        ]
        with pytest.raises(ValueError, match="sparse and dense"):
            union_features(parts)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            union_features([])

    def test_accepts_generator(self):
        merged = union_features(
            Features(matrix=np.ones((1, 1)), labels=np.ones(1))
            for __ in range(2)
        )
        assert merged.num_rows == 2


class TestComponentContract:
    def test_update_transform_order(self):
        component = Recorder()
        component.update_transform(Table({"a": [1]}))
        assert component.calls == ["update", "transform"]

    def test_default_name_is_class_name(self):
        assert Recorder().name == "Recorder"

    def test_custom_name(self):
        class Named(StatelessComponent):
            def transform(self, batch):
                return batch

        assert Named(name="boop").name == "boop"

    def test_stateless_component_flags(self):
        class Passthrough(StatelessComponent):
            def transform(self, batch):
                return batch

        component = Passthrough()
        assert not component.is_stateful
        component.update(Table({"a": [1]}))  # no-op

    def test_batch_num_values_table(self):
        table = Table({"a": [1.0, 2.0]})
        assert PipelineComponent.batch_num_values(table) == 2

    def test_batch_num_values_features(self):
        features = Features(matrix=np.ones((2, 2)), labels=np.ones(2))
        assert PipelineComponent.batch_num_values(features) == 6

    def test_default_reset_is_noop(self):
        Recorder().reset()

    def test_kind_default(self):
        assert Recorder.kind is ComponentKind.DATA_TRANSFORMATION
