"""Unit tests for incremental statistics (Welford, min-max,
vocabularies, sparse moments)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.pipeline.statistics import (
    CategoryTable,
    RunningMinMax,
    RunningMoments,
    SparseMoments,
)


class TestRunningMoments:
    def test_matches_numpy_single_batch(self, rng):
        data = rng.standard_normal((100, 3))
        moments = RunningMoments()
        moments.update(data)
        assert moments.mean() == pytest.approx(data.mean(axis=0))
        assert moments.variance() == pytest.approx(data.var(axis=0))

    def test_matches_numpy_across_batches(self, rng):
        data = rng.standard_normal((90, 4))
        moments = RunningMoments()
        for start in range(0, 90, 7):
            moments.update(data[start:start + 7])
        assert moments.mean() == pytest.approx(data.mean(axis=0))
        assert moments.std() == pytest.approx(data.std(axis=0))

    def test_1d_batch_treated_as_single_coordinate(self):
        moments = RunningMoments()
        moments.update(np.array([1.0, 2.0, 3.0]))
        assert moments.mean() == pytest.approx([2.0])

    def test_nan_skipped_per_coordinate(self):
        moments = RunningMoments()
        moments.update(
            np.array([[1.0, np.nan], [3.0, 10.0], [5.0, 20.0]])
        )
        assert moments.mean() == pytest.approx([3.0, 15.0])
        assert moments.count.tolist() == [3.0, 2.0]

    def test_all_nan_coordinate_mean_zero(self):
        moments = RunningMoments()
        moments.update(np.array([[np.nan, 1.0], [np.nan, 3.0]]))
        assert moments.mean() == pytest.approx([0.0, 2.0])

    def test_merge_equals_single_pass(self, rng):
        data = rng.standard_normal((60, 2))
        left, right = RunningMoments(), RunningMoments()
        left.update(data[:25])
        right.update(data[25:])
        left.merge(right)
        assert left.mean() == pytest.approx(data.mean(axis=0))
        assert left.variance() == pytest.approx(data.var(axis=0))

    def test_merge_into_empty(self, rng):
        data = rng.standard_normal((10, 2))
        filled = RunningMoments()
        filled.update(data)
        empty = RunningMoments()
        empty.merge(filled)
        assert empty.mean() == pytest.approx(data.mean(axis=0))

    def test_dim_mismatch_rejected(self):
        moments = RunningMoments(dim=2)
        with pytest.raises(ValidationError):
            moments.update(np.ones((3, 4)))

    def test_merge_dim_mismatch_rejected(self):
        left, right = RunningMoments(dim=2), RunningMoments(dim=3)
        right.update(np.ones((2, 3)))
        with pytest.raises(ValidationError):
            left.merge(right)

    def test_unseen_raises(self):
        with pytest.raises(NotFittedError):
            RunningMoments().mean()

    def test_empty_batch_noop(self):
        moments = RunningMoments(dim=2)
        moments.update(np.empty((0, 2)))
        assert moments.total_count == 0

    def test_numerical_stability_large_offset(self):
        """Welford must not cancel catastrophically at large means."""
        data = 1e9 + np.array([1.0, 2.0, 3.0, 4.0])
        moments = RunningMoments()
        moments.update(data[:, None])
        assert moments.variance()[0] == pytest.approx(1.25, rel=1e-6)


class TestRunningMinMax:
    def test_tracks_extrema(self, rng):
        data = rng.standard_normal((50, 3))
        extrema = RunningMinMax()
        for start in range(0, 50, 9):
            extrema.update(data[start:start + 9])
        assert extrema.minimum() == pytest.approx(data.min(axis=0))
        assert extrema.maximum() == pytest.approx(data.max(axis=0))

    def test_nan_ignored(self):
        extrema = RunningMinMax()
        extrema.update(np.array([[1.0], [np.nan], [3.0]]))
        assert extrema.minimum() == pytest.approx([1.0])
        assert extrema.maximum() == pytest.approx([3.0])

    def test_span(self):
        extrema = RunningMinMax()
        extrema.update(np.array([[1.0, 5.0], [3.0, 5.0]]))
        assert extrema.span() == pytest.approx([2.0, 0.0])

    def test_merge(self):
        left, right = RunningMinMax(), RunningMinMax()
        left.update(np.array([[1.0], [2.0]]))
        right.update(np.array([[-4.0], [0.5]]))
        left.merge(right)
        assert left.minimum() == pytest.approx([-4.0])
        assert left.maximum() == pytest.approx([2.0])

    def test_unseen_raises(self):
        with pytest.raises(NotFittedError):
            RunningMinMax().minimum()


class TestCategoryTable:
    def test_first_seen_order(self):
        table = CategoryTable()
        table.update(["b", "a", "b", "c"])
        assert table.categories() == ["b", "a", "c"]
        assert table.lookup("a") == 1

    def test_unseen_lookup_none(self):
        assert CategoryTable().lookup("x") is None

    def test_encode_with_unseen(self):
        table = CategoryTable()
        table.update(["x", "y"])
        encoded = table.encode(["y", "z", "x"])
        assert encoded.tolist() == [1, -1, 0]

    def test_merge_keeps_local_indices(self):
        left, right = CategoryTable(), CategoryTable()
        left.update(["a"])
        right.update(["b", "a"])
        left.merge(right)
        assert left.categories() == ["a", "b"]

    def test_len_and_contains(self):
        table = CategoryTable()
        table.update([1, 2, 2])
        assert len(table) == 2
        assert 1 in table
        assert 9 not in table


class TestSparseMoments:
    def test_matches_dense_welford(self, rng):
        dense = rng.standard_normal((40, 3))
        sparse_rows = [
            {j: float(dense[i, j]) for j in range(3)} for i in range(40)
        ]
        sparse = SparseMoments()
        sparse.update(sparse_rows)
        for j in range(3):
            assert sparse.mean(j) == pytest.approx(dense[:, j].mean())
            assert sparse.std(j) == pytest.approx(dense[:, j].std())

    def test_nan_values_skipped(self):
        moments = SparseMoments()
        moments.update([{0: 1.0}, {0: float("nan")}, {0: 3.0}])
        assert moments.count(0) == 2
        assert moments.mean(0) == pytest.approx(2.0)

    def test_defaults_for_unseen(self):
        moments = SparseMoments()
        assert moments.mean(7, default=0.5) == 0.5
        assert moments.std(7, default=1.5) == 1.5
        assert moments.count(7) == 0

    def test_zero_variance_std_default(self):
        moments = SparseMoments()
        moments.update([{0: 2.0}, {0: 2.0}])
        assert moments.std(0, default=1.0) == 1.0

    def test_merge_matches_single_pass(self, rng):
        values = rng.standard_normal(30)
        rows = [{0: float(v)} for v in values]
        whole = SparseMoments()
        whole.update(rows)
        left, right = SparseMoments(), SparseMoments()
        left.update(rows[:11])
        right.update(rows[11:])
        left.merge(right)
        assert left.mean(0) == pytest.approx(whole.mean(0))
        assert left.std(0) == pytest.approx(whole.std(0))

    def test_indices(self):
        moments = SparseMoments()
        moments.update([{3: 1.0, 8: 2.0}])
        assert sorted(moments.indices()) == [3, 8]


class TestMomentsMergeAssociativity:
    def test_three_way_merge_order_independent(self, rng):
        data = rng.standard_normal((90, 2))
        parts = [data[:30], data[30:60], data[60:]]

        def accumulate(order):
            total = RunningMoments()
            for index in order:
                part = RunningMoments()
                part.update(parts[index])
                total.merge(part)
            return total

        forward = accumulate([0, 1, 2])
        backward = accumulate([2, 1, 0])
        assert forward.mean() == pytest.approx(backward.mean())
        assert forward.variance() == pytest.approx(
            backward.variance(), rel=1e-9, abs=1e-9
        )

    def test_merge_empty_is_identity(self, rng):
        data = rng.standard_normal((20, 2))
        filled = RunningMoments()
        filled.update(data)
        before_mean = filled.mean().copy()
        filled.merge(RunningMoments())
        assert np.array_equal(filled.mean(), before_mean)
