"""Tests for pipeline-component fingerprints."""

import numpy as np

from repro.data.table import Table
from repro.pipeline import (
    Pipeline,
    component_fingerprint,
    pipeline_fingerprint,
)
from repro.pipeline.components.scaler import MinMaxScaler, StandardScaler
from repro.pipeline.fingerprint import _canonical, code_digest


def scaler(**kwargs):
    return StandardScaler(["a", "b"], **kwargs)


def batch():
    return Table({"a": [1.0, 2.0, 3.0], "b": [4.0, 5.0, 6.0]})


class TestComponentFingerprint:
    def test_identical_instances_identical_digest(self):
        assert component_fingerprint(scaler()) == component_fingerprint(
            scaler()
        )

    def test_has_all_digest_fields(self):
        fp = component_fingerprint(scaler())
        for key in ("name", "kind", "stateful", "code", "config",
                    "stats", "digest"):
            assert key in fp

    def test_config_change_moves_config_digest_only(self):
        base = component_fingerprint(scaler())
        changed = component_fingerprint(scaler(with_mean=False))
        assert changed["code"] == base["code"]
        assert changed["config"] != base["config"]
        assert changed["digest"] != base["digest"]

    def test_fitting_moves_stats_digest_only(self):
        fitted = scaler()
        fitted.update(batch())
        base = component_fingerprint(scaler())
        after = component_fingerprint(fitted)
        assert after["code"] == base["code"]
        assert after["config"] == base["config"]
        assert after["stats"] != base["stats"]
        assert after["digest"] != base["digest"]

    def test_same_fit_same_digest(self):
        first, second = scaler(), scaler()
        first.update(batch())
        second.update(batch())
        assert component_fingerprint(first) == component_fingerprint(
            second
        )

    def test_code_digest_distinguishes_classes(self):
        assert code_digest(scaler()) != code_digest(
            MinMaxScaler(["a"])
        )
        assert code_digest(scaler()) == code_digest(scaler())


class TestPipelineFingerprint:
    def test_chain_order_preserved(self):
        pipeline = Pipeline(
            [StandardScaler(["a"], name="first"),
             MinMaxScaler(["a"], name="second")]
        )
        prints = pipeline_fingerprint(pipeline)
        assert [fp["name"] for fp in prints] == ["first", "second"]

    def test_reordering_changes_sequence(self):
        forward = pipeline_fingerprint(
            Pipeline([StandardScaler(["a"]), MinMaxScaler(["a"])])
        )
        backward = pipeline_fingerprint(
            Pipeline([MinMaxScaler(["a"]), StandardScaler(["a"])])
        )
        assert [fp["digest"] for fp in forward] != [
            fp["digest"] for fp in backward
        ]


class TestCanonical:
    def test_scalars_pass_through(self):
        assert _canonical(True) is True
        assert _canonical(None) is None
        assert _canonical(3) == 3
        assert _canonical("x") == "x"

    def test_float_uses_repr(self):
        assert _canonical(0.1) == {"__float__": "0.1"}
        assert _canonical(np.float64(0.1)) == {"__float__": "0.1"}

    def test_ndarray_includes_dtype_and_shape(self):
        ints = _canonical(np.array([1, 2], dtype=np.int32))
        longs = _canonical(np.array([1, 2], dtype=np.int64))
        assert ints != longs
        assert _canonical(np.zeros((2, 3)))["__ndarray__"][1] == [2, 3]

    def test_dict_sorted_by_key(self):
        assert _canonical({"b": 1, "a": 2}) == _canonical(
            dict([("a", 2), ("b", 1)])
        )

    def test_nested_object_recurses(self):
        rendered = _canonical(scaler())
        assert rendered["__obj__"] == "StandardScaler"

    def test_recursion_guard(self):
        loop = []
        loop.append(loop)
        rendered = _canonical(loop)
        # Terminates; the innermost level is the guard marker.
        text = str(rendered)
        assert "__deep__" in text
