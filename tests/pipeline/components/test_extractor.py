"""Unit tests for feature extraction components."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.components.extractor import (
    ColumnDifference,
    ColumnExtractor,
    DayOfWeekExtractor,
    HourOfDayExtractor,
)


class TestColumnExtractor:
    def test_single_input(self):
        component = ColumnExtractor(
            inputs=["x"], function=lambda x: x * 2, output="doubled"
        )
        result = component.transform(Table({"x": [1.0, 2.0]}))
        assert np.array_equal(result["doubled"], [2.0, 4.0])

    def test_multiple_inputs(self):
        component = ColumnExtractor(
            inputs=["a", "b"],
            function=lambda a, b: a + b,
            output="sum",
        )
        result = component.transform(Table({"a": [1.0], "b": [2.0]}))
        assert result["sum"][0] == 3.0

    def test_replaces_existing_column(self):
        component = ColumnExtractor(
            inputs=["x"], function=lambda x: x + 1, output="x"
        )
        result = component.transform(Table({"x": [1.0]}))
        assert result["x"][0] == 2.0

    def test_wrong_output_shape_rejected(self):
        component = ColumnExtractor(
            inputs=["x"], function=lambda x: np.array([[1.0]]), output="y"
        )
        with pytest.raises(PipelineError, match="shape"):
            component.transform(Table({"x": [1.0]}))

    def test_missing_input_column(self):
        component = ColumnExtractor(
            inputs=["zz"], function=lambda x: x, output="y"
        )
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            component.transform(Table({"x": [1.0]}))

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValidationError):
            ColumnExtractor(inputs=[], function=lambda: None, output="y")


class TestColumnDifference:
    def test_difference(self):
        component = ColumnDifference(
            minuend="end", subtrahend="start", output="duration"
        )
        result = component.transform(
            Table({"end": [100.0, 50.0], "start": [40.0, 50.0]})
        )
        assert np.array_equal(result["duration"], [60.0, 0.0])


class TestCalendarExtractors:
    def test_hour_of_day(self):
        component = HourOfDayExtractor("ts")
        # 1970-01-01 00:30, 13:15
        table = Table({"ts": [1800.0, 13 * 3600 + 900.0]})
        result = component.transform(table)
        assert result["hour_of_day"].tolist() == [0.0, 13.0]

    def test_hour_wraps_across_days(self):
        component = HourOfDayExtractor("ts")
        table = Table({"ts": [86_400.0 + 3 * 3600]})
        assert component.transform(table)["hour_of_day"][0] == 3.0

    def test_day_of_week_epoch_is_thursday(self):
        component = DayOfWeekExtractor("ts")
        # 1970-01-01 was a Thursday = weekday 3 (Monday = 0).
        assert component.transform(Table({"ts": [0.0]}))[
            "day_of_week"
        ][0] == 3.0

    def test_day_of_week_cycles(self):
        component = DayOfWeekExtractor("ts")
        table = Table({"ts": [4 * 86_400.0]})  # Thursday + 4 = Monday
        assert component.transform(table)["day_of_week"][0] == 0.0

    def test_custom_output_name(self):
        component = HourOfDayExtractor("ts", output="h")
        assert "h" in component.transform(Table({"ts": [0.0]}))
