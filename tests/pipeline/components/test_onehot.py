"""Unit tests for the incremental one-hot encoder."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import Features
from repro.pipeline.components.onehot import OneHotEncoder


def categorical_table(colors, sizes=None, label=None):
    columns = {"color": np.array(colors, dtype=object)}
    if sizes is not None:
        columns["size"] = np.array(sizes, dtype=np.float64)
    columns["label"] = np.array(
        label if label is not None else np.ones(len(colors))
    )
    return Table(columns)


class TestOneHotEncoder:
    def test_basic_encoding(self):
        encoder = OneHotEncoder(
            categorical_columns=["color"], label_column="label"
        )
        table = categorical_table(["red", "blue", "red"])
        encoder.update(table)
        result = encoder.transform(table)
        assert isinstance(result, Features)
        dense = result.matrix.toarray()
        assert dense.shape == (3, 2)
        assert np.array_equal(dense[0], dense[2])
        assert not np.array_equal(dense[0], dense[1])
        assert dense.sum(axis=1).tolist() == [1.0, 1.0, 1.0]

    def test_sparse_output(self):
        encoder = OneHotEncoder(["color"], "label")
        table = categorical_table(["a", "b"])
        encoder.update(table)
        assert sp.issparse(encoder.transform(table).matrix)

    def test_unseen_category_encodes_to_zero(self):
        encoder = OneHotEncoder(["color"], "label")
        encoder.update(categorical_table(["red"]))
        result = encoder.transform(categorical_table(["green"]))
        assert result.matrix.nnz == 0

    def test_vocabulary_grows_incrementally(self):
        encoder = OneHotEncoder(["color"], "label")
        encoder.update(categorical_table(["red"]))
        assert encoder.output_width == 1
        encoder.update(categorical_table(["blue"]))
        assert encoder.output_width == 2
        assert encoder.vocabulary("color") == ["red", "blue"]

    def test_numeric_passthrough_columns(self):
        encoder = OneHotEncoder(
            ["color"], "label", numeric_columns=["size"]
        )
        table = categorical_table(["red", "blue"], sizes=[1.5, 0.0])
        encoder.update(table)
        dense = encoder.transform(table).matrix.toarray()
        assert dense.shape == (2, 3)
        assert dense[0, 0] == 1.5
        assert dense[1, 0] == 0.0

    def test_max_categories_fixed_width(self):
        encoder = OneHotEncoder(
            ["color"], "label", max_categories=3
        )
        table = categorical_table(["a", "b", "c", "d"])
        encoder.update(table)
        result = encoder.transform(table)
        assert result.matrix.shape == (4, 3)
        # The overflow category "d" maps to the zero vector.
        assert result.matrix.toarray()[3].sum() == 0.0

    def test_labels_extracted(self):
        encoder = OneHotEncoder(["color"], "label")
        table = categorical_table(["x"], label=[-1.0])
        encoder.update(table)
        assert encoder.transform(table).labels.tolist() == [-1.0]

    def test_multiple_categorical_columns(self):
        encoder = OneHotEncoder(["c1", "c2"], "label")
        table = Table(
            {
                "c1": np.array(["a", "b"], dtype=object),
                "c2": np.array(["x", "x"], dtype=object),
                "label": np.ones(2),
            }
        )
        encoder.update(table)
        dense = encoder.transform(table).matrix.toarray()
        assert dense.shape == (2, 3)  # {a, b} + {x}
        assert dense.sum(axis=1).tolist() == [2.0, 2.0]

    def test_reset(self):
        encoder = OneHotEncoder(["color"], "label")
        encoder.update(categorical_table(["red"]))
        encoder.reset()
        assert encoder.output_width == 0

    def test_vocabulary_unknown_column(self):
        encoder = OneHotEncoder(["color"], "label")
        with pytest.raises(PipelineError):
            encoder.vocabulary("shape")

    def test_validation(self):
        with pytest.raises(ValidationError):
            OneHotEncoder([], "label")
        with pytest.raises(ValidationError):
            OneHotEncoder(["c"], "label", max_categories=0)
