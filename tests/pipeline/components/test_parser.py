"""Unit tests for the svmlight input parser."""

import math

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import PipelineError
from repro.pipeline.component import ComponentKind
from repro.pipeline.components.parser import SvmLightParser


def lines_table(*lines: str) -> Table:
    return Table({"line": np.array(lines, dtype=object)})


class TestSvmLightParser:
    def test_parses_labels_and_features(self):
        parser = SvmLightParser()
        table = parser.transform(
            lines_table("1 0:1.5 3:2.0", "-1 1:0.25")
        )
        assert np.array_equal(table["label"], [1.0, -1.0])
        assert table["features"][0] == {0: 1.5, 3: 2.0}
        assert table["features"][1] == {1: 0.25}

    def test_line_column_removed(self):
        table = SvmLightParser().transform(lines_table("1 0:1.0"))
        assert "line" not in table

    def test_nan_values_parsed(self):
        table = SvmLightParser().transform(lines_table("1 2:nan"))
        assert math.isnan(table["features"][0][2])

    def test_label_only_line(self):
        table = SvmLightParser().transform(lines_table("-1"))
        assert table["features"][0] == {}

    def test_empty_line_rejected(self):
        with pytest.raises(PipelineError, match="empty"):
            SvmLightParser().transform(lines_table(""))

    def test_bad_label_rejected(self):
        with pytest.raises(PipelineError, match="bad label"):
            SvmLightParser().transform(lines_table("spam 0:1"))

    def test_bad_token_rejected(self):
        with pytest.raises(PipelineError, match="bad token"):
            SvmLightParser().transform(lines_table("1 nocolon"))
        with pytest.raises(PipelineError, match="bad token"):
            SvmLightParser().transform(lines_table("1 a:b"))

    def test_custom_column_names(self):
        parser = SvmLightParser(
            line_column="raw", label_column="y", features_column="x"
        )
        table = parser.transform(
            Table({"raw": np.array(["1 0:2.0"], dtype=object)})
        )
        assert "y" in table and "x" in table

    def test_is_stateless(self):
        parser = SvmLightParser()
        assert not parser.is_stateful
        parser.update(lines_table("1 0:1.0"))  # no-op, must not raise

    def test_kind(self):
        assert (
            SvmLightParser.kind is ComponentKind.DATA_TRANSFORMATION
        )

    def test_requires_table(self):
        from repro.pipeline.component import Features

        with pytest.raises(PipelineError, match="expects a Table"):
            SvmLightParser().transform(
                Features(matrix=np.ones((1, 1)), labels=np.ones(1))
            )

    def test_roundtrip_with_generator_format(self):
        """The URL generator's lines must parse cleanly."""
        from repro.datasets.url import URLStreamGenerator

        generator = URLStreamGenerator(
            num_chunks=2, rows_per_chunk=5, seed=1
        )
        table = SvmLightParser().transform(generator.chunk(0))
        assert table.num_rows == 5
        assert set(np.unique(table["label"])) <= {-1.0, 1.0}
