"""Unit tests for the terminal feature assembler."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import Features
from repro.pipeline.components.assembler import FeatureAssembler


class TestFeatureAssembler:
    def test_stacks_columns_in_order(self):
        assembler = FeatureAssembler(
            feature_columns=["b", "a"], label_column="y"
        )
        table = Table({"a": [1.0], "b": [2.0], "y": [5.0]})
        result = assembler.transform(table)
        assert isinstance(result, Features)
        assert result.matrix.tolist() == [[2.0, 1.0]]
        assert result.labels.tolist() == [5.0]

    def test_label_transform(self):
        assembler = FeatureAssembler(
            feature_columns=["a"],
            label_column="y",
            label_transform=np.log1p,
        )
        table = Table({"a": [1.0], "y": [np.e - 1.0]})
        result = assembler.transform(table)
        assert result.labels[0] == pytest.approx(1.0)

    def test_empty_table_produces_empty_features(self):
        assembler = FeatureAssembler(["a"], "y")
        table = Table({"a": np.array([]), "y": np.array([])})
        result = assembler.transform(table)
        assert result.num_rows == 0
        assert result.num_features == 1

    def test_dtype_is_float(self):
        assembler = FeatureAssembler(["a"], "y")
        table = Table({"a": [1, 2], "y": [0, 1]})
        result = assembler.transform(table)
        assert result.matrix.dtype == np.float64
        assert result.labels.dtype == np.float64

    def test_no_feature_columns_rejected(self):
        with pytest.raises(ValidationError):
            FeatureAssembler([], "y")

    def test_requires_table(self):
        assembler = FeatureAssembler(["a"], "y")
        with pytest.raises(PipelineError):
            assembler.transform(
                Features(matrix=np.ones((1, 1)), labels=np.ones(1))
            )

    def test_is_stateless(self):
        assert not FeatureAssembler(["a"], "y").is_stateful
