"""Unit tests for the feature scalers."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.components.scaler import (
    MinMaxScaler,
    SparseStandardScaler,
    StandardScaler,
)


class TestStandardScaler:
    def test_zscores_after_update(self, rng):
        data = rng.standard_normal(200) * 5 + 10
        table = Table({"x": data})
        scaler = StandardScaler(columns=["x"])
        scaler.update(table)
        scaled = scaler.transform(table)["x"]
        assert scaled.mean() == pytest.approx(0.0, abs=1e-9)
        assert scaled.std() == pytest.approx(1.0, abs=1e-9)

    def test_identity_before_any_update(self):
        scaler = StandardScaler(columns=["x"])
        table = Table({"x": [5.0, 7.0]})
        assert np.array_equal(scaler.transform(table)["x"], [5.0, 7.0])

    def test_online_statistics_accumulate(self, rng):
        data = rng.standard_normal(100) * 3 + 4
        scaler = StandardScaler(columns=["x"])
        for start in range(0, 100, 10):
            scaler.update(Table({"x": data[start:start + 10]}))
        assert scaler.mean()[0] == pytest.approx(data.mean())
        assert scaler.std()[0] == pytest.approx(data.std())

    def test_zero_variance_column_not_divided(self):
        scaler = StandardScaler(columns=["x"])
        table = Table({"x": [2.0, 2.0, 2.0]})
        scaler.update(table)
        scaled = scaler.transform(table)["x"]
        assert np.allclose(scaled, 0.0)  # centered, not divided by 0

    def test_with_std_only(self):
        scaler = StandardScaler(columns=["x"], with_mean=False)
        table = Table({"x": [0.0, 10.0]})
        scaler.update(table)
        scaled = scaler.transform(table)["x"]
        assert scaled[0] == 0.0  # no centering
        assert scaled[1] == pytest.approx(2.0)  # std = 5

    def test_neither_mean_nor_std_rejected(self):
        with pytest.raises(ValidationError, match="identity"):
            StandardScaler(
                columns=["x"], with_mean=False, with_std=False
            )

    def test_untouched_columns_pass_through(self):
        scaler = StandardScaler(columns=["x"])
        table = Table({"x": [1.0, 3.0], "y": [5.0, 6.0]})
        scaler.update(table)
        assert np.array_equal(scaler.transform(table)["y"], [5.0, 6.0])

    def test_reset(self):
        scaler = StandardScaler(columns=["x"])
        scaler.update(Table({"x": [1.0, 9.0]}))
        scaler.reset()
        table = Table({"x": [5.0]})
        assert scaler.transform(table)["x"][0] == 5.0

    def test_requires_table(self):
        from repro.pipeline.component import Features

        with pytest.raises(PipelineError):
            StandardScaler(columns=["x"]).transform(
                Features(matrix=np.ones((1, 1)), labels=np.ones(1))
            )

    def test_empty_columns_rejected(self):
        with pytest.raises(ValidationError):
            StandardScaler(columns=[])


class TestMinMaxScaler:
    def test_scales_to_unit_interval(self):
        scaler = MinMaxScaler(columns=["x"])
        table = Table({"x": [0.0, 5.0, 10.0]})
        scaler.update(table)
        assert scaler.transform(table)["x"] == pytest.approx(
            [0.0, 0.5, 1.0]
        )

    def test_extrapolates_outside_seen_range(self):
        scaler = MinMaxScaler(columns=["x"])
        scaler.update(Table({"x": [0.0, 10.0]}))
        scaled = scaler.transform(Table({"x": [20.0]}))["x"]
        assert scaled[0] == pytest.approx(2.0)

    def test_constant_column_maps_to_zero(self):
        scaler = MinMaxScaler(columns=["x"])
        table = Table({"x": [3.0, 3.0]})
        scaler.update(table)
        assert np.allclose(scaler.transform(table)["x"], 0.0)

    def test_identity_before_update(self):
        scaler = MinMaxScaler(columns=["x"])
        table = Table({"x": [4.0]})
        assert scaler.transform(table)["x"][0] == 4.0

    def test_reset(self):
        scaler = MinMaxScaler(columns=["x"])
        scaler.update(Table({"x": [0.0, 2.0]}))
        scaler.reset()
        assert scaler.transform(Table({"x": [2.0]}))["x"][0] == 2.0


class TestSparseStandardScaler:
    def test_scales_by_index_std(self):
        rows = np.empty(4, dtype=object)
        for i, v in enumerate([1.0, 3.0, 5.0, 7.0]):
            rows[i] = {0: v}
        table = Table({"features": rows, "label": np.ones(4)})
        scaler = SparseStandardScaler()
        scaler.update(table)
        std = np.array([1.0, 3.0, 5.0, 7.0]).std()
        scaled = scaler.transform(table)["features"]
        assert scaled[0][0] == pytest.approx(1.0 / std)

    def test_no_centering(self):
        """Sparse scaling must not shift zero entries (sparsity!)."""
        rows = np.empty(2, dtype=object)
        rows[0] = {0: 2.0}
        rows[1] = {0: 4.0}
        table = Table({"features": rows, "label": np.ones(2)})
        scaler = SparseStandardScaler()
        scaler.update(table)
        scaled = scaler.transform(table)["features"]
        # Both values stay positive: scaled, never centered.
        assert scaled[0][0] > 0 and scaled[1][0] > 0

    def test_unseen_index_passes_through(self):
        rows = np.empty(1, dtype=object)
        rows[0] = {99: 4.0}
        table = Table({"features": rows, "label": np.ones(1)})
        scaler = SparseStandardScaler()
        scaled = scaler.transform(table)["features"]
        assert scaled[0][99] == 4.0

    def test_std_accessor(self):
        scaler = SparseStandardScaler()
        assert scaler.std(3) == 1.0

    def test_reset(self):
        rows = np.empty(2, dtype=object)
        rows[0] = {0: 1.0}
        rows[1] = {0: 9.0}
        table = Table({"features": rows, "label": np.ones(2)})
        scaler = SparseStandardScaler()
        scaler.update(table)
        assert scaler.num_indices_seen == 1
        scaler.reset()
        assert scaler.num_indices_seen == 0
