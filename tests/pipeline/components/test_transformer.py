"""Unit tests for elementwise column transformers."""

import pickle

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.components.transformer import (
    ColumnTransformer,
    absolute_transformer,
    log1p_transformer,
    sqrt_transformer,
)


class TestColumnTransformer:
    def test_applies_function(self):
        component = ColumnTransformer(["x"], np.negative)
        result = component.transform(Table({"x": [1.0, -2.0]}))
        assert np.array_equal(result["x"], [-1.0, 2.0])

    def test_multiple_columns(self):
        component = ColumnTransformer(["a", "b"], np.abs)
        result = component.transform(
            Table({"a": [-1.0], "b": [-2.0], "c": [-3.0]})
        )
        assert result["a"][0] == 1.0
        assert result["b"][0] == 2.0
        assert result["c"][0] == -3.0  # untouched

    def test_shape_change_rejected(self):
        component = ColumnTransformer(["x"], lambda v: v[:1])
        with pytest.raises(PipelineError, match="shape"):
            component.transform(Table({"x": [1.0, 2.0]}))

    def test_empty_columns_rejected(self):
        with pytest.raises(ValidationError):
            ColumnTransformer([], np.abs)

    def test_requires_table(self):
        from repro.pipeline.component import Features

        with pytest.raises(PipelineError):
            ColumnTransformer(["x"], np.abs).transform(
                Features(matrix=np.ones((1, 1)), labels=np.ones(1))
            )


class TestFactories:
    def test_log1p(self):
        component = log1p_transformer(["x"])
        result = component.transform(Table({"x": [np.e - 1.0]}))
        assert result["x"][0] == pytest.approx(1.0)

    def test_sqrt(self):
        component = sqrt_transformer(["x"])
        result = component.transform(Table({"x": [9.0]}))
        assert result["x"][0] == 3.0

    def test_abs(self):
        component = absolute_transformer(["x"])
        result = component.transform(Table({"x": [-4.0]}))
        assert result["x"][0] == 4.0

    @pytest.mark.parametrize(
        "factory",
        [log1p_transformer, sqrt_transformer, absolute_transformer],
    )
    def test_factories_picklable(self, factory):
        component = factory(["x"])
        clone = pickle.loads(pickle.dumps(component))
        result = clone.transform(Table({"x": [4.0]}))
        assert np.isfinite(result["x"][0])
