"""Unit tests for the missing-value imputers."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.components.imputer import (
    MissingValueImputer,
    SparseMeanImputer,
)


class TestMissingValueImputer:
    def test_mean_strategy(self, numeric_table):
        imputer = MissingValueImputer(columns=["b"])
        imputer.update(numeric_table)
        result = imputer.transform(numeric_table)
        # Mean of the observed values 10, 30, 40.
        assert result["b"][1] == pytest.approx(80.0 / 3.0)
        # Observed values untouched.
        assert result["b"][0] == 10.0

    def test_mean_accumulates_across_batches(self):
        imputer = MissingValueImputer(columns=["a"])
        imputer.update(Table({"a": [2.0, 4.0]}))
        imputer.update(Table({"a": [12.0]}))
        result = imputer.transform(Table({"a": [np.nan]}))
        assert result["a"][0] == pytest.approx(6.0)

    def test_constant_strategy(self):
        imputer = MissingValueImputer(
            columns=["a"], strategy="constant", fill_value=-9.0
        )
        result = imputer.transform(Table({"a": [np.nan, 2.0]}))
        assert result["a"][0] == -9.0
        assert result["a"][1] == 2.0

    def test_before_any_update_uses_fill_value(self):
        imputer = MissingValueImputer(columns=["a"], fill_value=7.0)
        result = imputer.transform(Table({"a": [np.nan]}))
        assert result["a"][0] == 7.0

    def test_transform_does_not_change_state(self, numeric_table):
        imputer = MissingValueImputer(columns=["b"])
        imputer.update(numeric_table)
        first = imputer.transform(numeric_table)["b"][1]
        second = imputer.transform(numeric_table)["b"][1]
        assert first == second

    def test_reset(self, numeric_table):
        imputer = MissingValueImputer(columns=["b"], fill_value=0.0)
        imputer.update(numeric_table)
        imputer.reset()
        result = imputer.transform(Table({"b": [np.nan]}))
        assert result["b"][0] == 0.0

    def test_invalid_strategy(self):
        with pytest.raises(ValidationError, match="strategy"):
            MissingValueImputer(columns=["a"], strategy="median")

    def test_empty_columns(self):
        with pytest.raises(ValidationError):
            MissingValueImputer(columns=[])

    def test_requires_table(self):
        from repro.pipeline.component import Features

        imputer = MissingValueImputer(columns=["a"])
        with pytest.raises(PipelineError):
            imputer.transform(
                Features(matrix=np.ones((1, 1)), labels=np.ones(1))
            )

    def test_is_stateful(self):
        assert MissingValueImputer(columns=["a"]).is_stateful


class TestSparseMeanImputer:
    def test_fills_nan_with_index_mean(self, sparse_table):
        imputer = SparseMeanImputer()
        imputer.update(sparse_table)
        result = imputer.transform(sparse_table)
        # Index 5 observed once (2.0); NaN filled with that mean.
        assert result["features"][1][5] == pytest.approx(2.0)
        # Non-NaN entries untouched.
        assert result["features"][0][5] == 2.0

    def test_unseen_index_uses_fill_value(self):
        rows = np.empty(1, dtype=object)
        rows[0] = {42: float("nan")}
        table = Table({"features": rows, "label": [1.0]})
        imputer = SparseMeanImputer(fill_value=0.25)
        result = imputer.transform(table)
        assert result["features"][0][42] == 0.25

    def test_rows_without_nan_pass_through_identically(self):
        rows = np.empty(1, dtype=object)
        rows[0] = {1: 3.0}
        table = Table({"features": rows, "label": [1.0]})
        imputer = SparseMeanImputer()
        result = imputer.transform(table)
        assert result["features"][0] is rows[0]

    def test_num_indices_seen(self, sparse_table):
        imputer = SparseMeanImputer()
        imputer.update(sparse_table)
        # Indices 0, 1, 5 carry non-NaN observations.
        assert imputer.num_indices_seen == 3

    def test_reset(self, sparse_table):
        imputer = SparseMeanImputer()
        imputer.update(sparse_table)
        imputer.reset()
        assert imputer.num_indices_seen == 0
