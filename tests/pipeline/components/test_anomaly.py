"""Unit tests for row-filtering components."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.components.anomaly import AnomalyFilter, RangeFilter


class TestAnomalyFilter:
    def test_keeps_rows_where_predicate_true(self):
        component = AnomalyFilter(lambda t: np.asarray(t["x"]) > 0)
        table = Table({"x": [-1.0, 2.0, 3.0]})
        result = component.transform(table)
        assert np.array_equal(result["x"], [2.0, 3.0])

    def test_counts_drops(self):
        component = AnomalyFilter(lambda t: np.asarray(t["x"]) > 0)
        component.transform(Table({"x": [-1.0, 2.0]}))
        component.transform(Table({"x": [-1.0, -2.0]}))
        assert component.rows_seen == 4
        assert component.rows_dropped == 3
        assert component.drop_rate == pytest.approx(0.75)

    def test_drop_rate_when_unused(self):
        assert AnomalyFilter(lambda t: t["x"] > 0).drop_rate == 0.0

    def test_bad_mask_shape_rejected(self):
        component = AnomalyFilter(lambda t: np.array([True]))
        with pytest.raises(PipelineError, match="shape"):
            component.transform(Table({"x": [1.0, 2.0]}))

    def test_requires_table(self):
        from repro.pipeline.component import Features

        component = AnomalyFilter(lambda t: np.array([True]))
        with pytest.raises(PipelineError):
            component.transform(
                Features(matrix=np.ones((1, 1)), labels=np.ones(1))
            )

    def test_is_stateless(self):
        assert not AnomalyFilter(lambda t: t["x"] > 0).is_stateful


class TestRangeFilter:
    def test_both_bounds(self):
        component = RangeFilter("x", minimum=1.0, maximum=3.0)
        result = component.transform(Table({"x": [0.0, 1.0, 2.5, 4.0]}))
        assert np.array_equal(result["x"], [1.0, 2.5])

    def test_bounds_inclusive(self):
        component = RangeFilter("x", minimum=1.0, maximum=2.0)
        result = component.transform(Table({"x": [1.0, 2.0]}))
        assert result.num_rows == 2

    def test_minimum_only(self):
        component = RangeFilter("x", minimum=0.0)
        result = component.transform(Table({"x": [-5.0, 5.0]}))
        assert np.array_equal(result["x"], [5.0])

    def test_maximum_only(self):
        component = RangeFilter("x", maximum=0.0)
        result = component.transform(Table({"x": [-5.0, 5.0]}))
        assert np.array_equal(result["x"], [-5.0])

    def test_nan_always_dropped(self):
        component = RangeFilter("x", minimum=-1e9)
        result = component.transform(Table({"x": [np.nan, 1.0]}))
        assert result.num_rows == 1

    def test_no_bounds_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            RangeFilter("x")

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ValidationError, match="exceeds"):
            RangeFilter("x", minimum=5.0, maximum=1.0)


class TestTaxiAnomalyRules:
    """The paper's trip filters, via the taxi pipeline factory."""

    def test_filters_paper_anomalies(self):
        from repro.datasets.taxi import make_taxi_pipeline

        pipeline = make_taxi_pipeline()
        table = Table(
            {
                "pickup_datetime": [0.0, 0.0, 0.0],
                # Trip 0: fine (600 s). Trip 1: instant (5 s).
                # Trip 2: over-long (23 h).
                "dropoff_datetime": [600.0, 5.0, 23.0 * 3600],
                "pickup_lat": [40.75, 40.75, 40.75],
                "pickup_lon": [-73.98, -73.98, -73.98],
                "dropoff_lat": [40.80, 40.80, 40.80],
                "dropoff_lon": [-73.90, -73.90, -73.90],
                "passenger_count": [1.0, 1.0, 1.0],
            }
        )
        features = pipeline.transform(table)
        assert features.num_rows == 1

    def test_filters_zero_distance(self):
        from repro.datasets.taxi import make_taxi_pipeline

        pipeline = make_taxi_pipeline()
        table = Table(
            {
                "pickup_datetime": [0.0],
                "dropoff_datetime": [600.0],
                "pickup_lat": [40.75],
                "pickup_lon": [-73.98],
                "dropoff_lat": [40.75],
                "dropoff_lon": [-73.98],
                "passenger_count": [1.0],
            }
        )
        features = pipeline.transform(table)
        assert features.num_rows == 0
