"""Unit tests for the feature hasher."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.component import Features
from repro.pipeline.components.hasher import FeatureHasher, hash_index


def sparse_rows_table(*rows):
    array = np.empty(len(rows), dtype=object)
    for i, row in enumerate(rows):
        array[i] = row
    labels = np.ones(len(rows))
    return Table({"label": labels, "features": array})


class TestHashIndex:
    def test_deterministic(self):
        assert hash_index(12345, 64) == hash_index(12345, 64)

    def test_bucket_in_range(self):
        for index in range(1000):
            bucket, sign = hash_index(index, 32)
            assert 0 <= bucket < 32
            assert sign in (1.0, -1.0)

    def test_signs_roughly_balanced(self):
        signs = [hash_index(i, 8)[1] for i in range(2000)]
        positive = sum(1 for s in signs if s > 0)
        assert 800 < positive < 1200

    def test_buckets_roughly_uniform(self):
        counts = np.zeros(16)
        for i in range(4000):
            counts[hash_index(i, 16)[0]] += 1
        assert counts.min() > 150


class TestFeatureHasher:
    def test_output_shape_and_type(self):
        hasher = FeatureHasher(num_features=32)
        result = hasher.transform(
            sparse_rows_table({0: 1.0, 7: 2.0}, {3: 1.0})
        )
        assert isinstance(result, Features)
        assert sp.issparse(result.matrix)
        assert result.matrix.shape == (2, 32)
        assert result.labels.shape == (2,)

    def test_deterministic_across_instances(self):
        table = sparse_rows_table({0: 1.0, 5: 3.0})
        first = FeatureHasher(num_features=16).transform(table)
        second = FeatureHasher(num_features=16).transform(table)
        assert np.array_equal(
            first.matrix.toarray(), second.matrix.toarray()
        )

    def test_value_preserved_up_to_sign(self):
        result = FeatureHasher(num_features=64).transform(
            sparse_rows_table({11: 2.5})
        )
        dense = result.matrix.toarray()[0]
        nonzero = dense[dense != 0]
        assert len(nonzero) == 1
        assert abs(nonzero[0]) == 2.5

    def test_unsigned_mode(self):
        result = FeatureHasher(num_features=64, signed=False).transform(
            sparse_rows_table({11: 2.5})
        )
        assert result.matrix.sum() == 2.5

    def test_collisions_aggregate(self):
        """Two indices in the same bucket must sum, not overwrite."""
        hasher = FeatureHasher(num_features=1)
        result = hasher.transform(
            sparse_rows_table({0: 1.0, 1: 1.0, 2: 1.0})
        )
        __, sign0 = hash_index(0, 1)
        __, sign1 = hash_index(1, 1)
        __, sign2 = hash_index(2, 1)
        expected = sign0 + sign1 + sign2
        assert result.matrix.toarray()[0, 0] == pytest.approx(expected)

    def test_empty_row_encodes_to_zero_vector(self):
        result = FeatureHasher(num_features=8).transform(
            sparse_rows_table({})
        )
        assert result.matrix.nnz == 0

    def test_csr_is_canonical(self):
        result = FeatureHasher(num_features=4).transform(
            sparse_rows_table({0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0})
        )
        indices = result.matrix.indices
        assert np.all(np.diff(indices) > 0)  # sorted within the row

    def test_invalid_width(self):
        with pytest.raises(ValidationError):
            FeatureHasher(num_features=0)

    def test_requires_table(self):
        hasher = FeatureHasher(num_features=4)
        with pytest.raises(PipelineError):
            hasher.transform(
                Features(matrix=np.ones((1, 1)), labels=np.ones(1))
            )

    def test_is_stateless(self):
        assert not FeatureHasher(num_features=4).is_stateful
