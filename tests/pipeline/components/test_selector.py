"""Unit tests for variance-threshold feature selection."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import ValidationError
from repro.pipeline.component import ComponentKind
from repro.pipeline.components.selector import VarianceThreshold


class TestVarianceThreshold:
    def test_drops_constant_column(self):
        selector = VarianceThreshold(columns=["a", "b"])
        table = Table({"a": [1.0, 1.0, 1.0], "b": [1.0, 2.0, 3.0]})
        selector.update(table)
        result = selector.transform(table)
        assert "a" not in result
        assert "b" in result

    def test_keeps_all_before_update(self):
        selector = VarianceThreshold(columns=["a"])
        table = Table({"a": [1.0, 1.0]})
        assert "a" in selector.transform(table)

    def test_threshold(self):
        selector = VarianceThreshold(columns=["a"], threshold=0.5)
        table = Table({"a": [1.0, 1.5, 1.0, 1.5]})  # variance 0.0625
        selector.update(table)
        assert selector.dropped_columns() == ["a"]

    def test_kept_and_dropped_partition(self):
        selector = VarianceThreshold(columns=["a", "b"])
        table = Table({"a": [2.0, 2.0], "b": [0.0, 9.0]})
        selector.update(table)
        assert selector.dropped_columns() == ["a"]
        assert selector.kept_columns() == ["b"]

    def test_adapts_as_stream_evolves(self):
        selector = VarianceThreshold(columns=["a"])
        selector.update(Table({"a": [5.0, 5.0]}))
        assert selector.dropped_columns() == ["a"]
        selector.update(Table({"a": [0.0, 10.0]}))
        assert selector.dropped_columns() == []

    def test_transform_tolerates_already_missing_column(self):
        selector = VarianceThreshold(columns=["a", "b"])
        selector.update(Table({"a": [1.0, 1.0], "b": [0.0, 1.0]}))
        result = selector.transform(Table({"b": [0.5]}))
        assert result.column_names == ["b"]

    def test_reset(self):
        selector = VarianceThreshold(columns=["a"])
        selector.update(Table({"a": [1.0, 1.0]}))
        selector.reset()
        assert selector.dropped_columns() == []

    def test_kind_is_feature_selection(self):
        assert (
            VarianceThreshold.kind is ComponentKind.FEATURE_SELECTION
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            VarianceThreshold(columns=[])
        with pytest.raises(ValidationError):
            VarianceThreshold(columns=["a"], threshold=-1.0)
