"""Unit tests for the geospatial feature math."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.pipeline.components.geo import (
    EARTH_RADIUS_KM,
    bearing,
    bearing_component,
    haversine_component,
    haversine_distance,
)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_distance(
            np.array([40.0]), np.array([-74.0]),
            np.array([40.0]), np.array([-74.0]),
        )[0] == pytest.approx(0.0)

    def test_known_distance_equator_degree(self):
        """One degree of longitude at the equator ≈ 111.19 km."""
        distance = haversine_distance(
            np.array([0.0]), np.array([0.0]),
            np.array([0.0]), np.array([1.0]),
        )[0]
        expected = EARTH_RADIUS_KM * np.pi / 180.0
        assert distance == pytest.approx(expected, rel=1e-6)

    def test_symmetry(self):
        forward = haversine_distance(
            np.array([40.7]), np.array([-74.0]),
            np.array([41.0]), np.array([-73.5]),
        )
        backward = haversine_distance(
            np.array([41.0]), np.array([-73.5]),
            np.array([40.7]), np.array([-74.0]),
        )
        assert forward[0] == pytest.approx(backward[0])

    def test_antipodal_is_half_circumference(self):
        distance = haversine_distance(
            np.array([0.0]), np.array([0.0]),
            np.array([0.0]), np.array([180.0]),
        )[0]
        assert distance == pytest.approx(
            EARTH_RADIUS_KM * np.pi, rel=1e-6
        )

    def test_vectorized(self):
        distances = haversine_distance(
            np.zeros(5), np.zeros(5), np.zeros(5), np.arange(5.0)
        )
        assert distances.shape == (5,)
        assert np.all(np.diff(distances) > 0)


class TestBearing:
    def test_due_north(self):
        value = bearing(
            np.array([0.0]), np.array([0.0]),
            np.array([1.0]), np.array([0.0]),
        )[0]
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_due_east(self):
        value = bearing(
            np.array([0.0]), np.array([0.0]),
            np.array([0.0]), np.array([1.0]),
        )[0]
        assert value == pytest.approx(90.0)

    def test_due_south(self):
        value = bearing(
            np.array([1.0]), np.array([0.0]),
            np.array([0.0]), np.array([0.0]),
        )[0]
        assert value == pytest.approx(180.0)

    def test_due_west_wraps_to_270(self):
        value = bearing(
            np.array([0.0]), np.array([1.0]),
            np.array([0.0]), np.array([0.0]),
        )[0]
        assert value == pytest.approx(270.0)

    def test_range(self, rng):
        values = bearing(
            rng.uniform(-60, 60, 100),
            rng.uniform(-179, 179, 100),
            rng.uniform(-60, 60, 100),
            rng.uniform(-179, 179, 100),
        )
        assert np.all((values >= 0.0) & (values < 360.0))


class TestComponents:
    def _table(self):
        return Table(
            {
                "plat": [40.75], "plon": [-73.98],
                "dlat": [40.80], "dlon": [-73.90],
            }
        )

    def test_haversine_component(self):
        component = haversine_component("plat", "plon", "dlat", "dlon")
        result = component.transform(self._table())
        assert result["distance_km"][0] > 0

    def test_bearing_component(self):
        component = bearing_component("plat", "plon", "dlat", "dlon")
        result = component.transform(self._table())
        assert 0 <= result["bearing_deg"][0] < 360
