"""Unit tests for polynomial interaction features."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import PipelineError, ValidationError
from repro.pipeline.components.polynomial import PolynomialInteractions


def table():
    return Table({"a": [1.0, 2.0], "b": [3.0, 4.0], "c": [5.0, 6.0]})


class TestPolynomialInteractions:
    def test_pairwise_products(self):
        component = PolynomialInteractions(columns=["a", "b"])
        result = component.transform(table())
        assert np.array_equal(result["a*b"], [3.0, 8.0])
        assert result.num_columns == 4

    def test_three_columns_produce_three_pairs(self):
        component = PolynomialInteractions(columns=["a", "b", "c"])
        result = component.transform(table())
        assert component.output_columns() == ["a*b", "a*c", "b*c"]
        assert np.array_equal(result["b*c"], [15.0, 24.0])

    def test_include_squares(self):
        component = PolynomialInteractions(
            columns=["a", "b"], include_squares=True
        )
        result = component.transform(table())
        assert np.array_equal(result["a*a"], [1.0, 4.0])
        assert np.array_equal(result["b*b"], [9.0, 16.0])
        assert "a*b" in result

    def test_single_column_squares_only(self):
        component = PolynomialInteractions(
            columns=["a"], include_squares=True
        )
        result = component.transform(table())
        assert component.output_columns() == ["a*a"]
        assert np.array_equal(result["a*a"], [1.0, 4.0])

    def test_original_columns_untouched(self):
        component = PolynomialInteractions(columns=["a", "b"])
        result = component.transform(table())
        assert np.array_equal(result["a"], [1.0, 2.0])

    def test_custom_separator(self):
        component = PolynomialInteractions(
            columns=["a", "b"], separator="_x_"
        )
        assert component.output_columns() == ["a_x_b"]

    def test_linear_size_growth(self):
        """Interaction output is O(p): pairs of k columns, not rows²."""
        component = PolynomialInteractions(columns=["a", "b", "c"])
        result = component.transform(table())
        assert result.num_columns == 3 + 3

    def test_is_stateless(self):
        assert not PolynomialInteractions(["a", "b"]).is_stateful

    def test_validation(self):
        with pytest.raises(ValidationError):
            PolynomialInteractions(columns=[])
        with pytest.raises(ValidationError):
            PolynomialInteractions(columns=["a"])
        with pytest.raises(ValidationError):
            PolynomialInteractions(columns=["a", "a"])

    def test_requires_table(self):
        from repro.pipeline.component import Features

        with pytest.raises(PipelineError):
            PolynomialInteractions(["a", "b"]).transform(
                Features(matrix=np.ones((1, 1)), labels=np.ones(1))
            )
