"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.chunk import FeatureChunk, RawChunk
from repro.data.table import Table


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def numeric_table() -> Table:
    """A small numeric table with a NaN for imputer tests."""
    return Table(
        {
            "a": np.array([1.0, 2.0, 3.0, 4.0]),
            "b": np.array([10.0, np.nan, 30.0, 40.0]),
            "label": np.array([0.0, 1.0, 0.0, 1.0]),
        }
    )


@pytest.fixture
def sparse_table() -> Table:
    """URL-style table: object column of sparse dicts plus labels."""
    rows = np.empty(3, dtype=object)
    rows[0] = {0: 1.0, 5: 2.0}
    rows[1] = {1: 3.0, 5: float("nan")}
    rows[2] = {0: 0.5}
    return Table(
        {
            "label": np.array([1.0, -1.0, 1.0]),
            "features": rows,
        }
    )


def make_feature_chunk(
    timestamp: int, rows: int = 4, dim: int = 3, seed: int = 0
) -> FeatureChunk:
    """A small dense feature chunk for storage/sampling tests."""
    generator = np.random.default_rng(seed + timestamp)
    return FeatureChunk(
        timestamp=timestamp,
        raw_reference=timestamp,
        features=generator.standard_normal((rows, dim)),
        labels=generator.choice([-1.0, 1.0], size=rows),
    )


def make_raw_chunk(timestamp: int, rows: int = 4, seed: int = 0) -> RawChunk:
    """A small raw chunk whose table has two numeric columns."""
    generator = np.random.default_rng(seed + timestamp)
    return RawChunk(
        timestamp=timestamp,
        table=Table(
            {
                "x": generator.standard_normal(rows),
                "label": generator.choice([-1.0, 1.0], size=rows),
            }
        ),
    )


@pytest.fixture
def feature_chunk() -> FeatureChunk:
    return make_feature_chunk(0)


@pytest.fixture
def raw_chunk() -> RawChunk:
    return make_raw_chunk(0)
