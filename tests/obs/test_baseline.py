"""Unit tests for bench records and the baseline trajectory store."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs.baseline import (
    RECORD_SCHEMA,
    BaselineStore,
    BenchRecord,
    MetricValue,
    current_git_sha,
    environment_fingerprint,
    make_record,
)
from repro.obs.telemetry import Telemetry


def record(name="bench_a", **metrics):
    return BenchRecord(
        name=name,
        metrics=metrics
        or {"total_cost": MetricValue(1.5, "cost")},
        seed=7,
        params={"num_chunks": 40},
    )


class TestMetricValue:
    def test_kind_vocabulary_enforced(self):
        with pytest.raises(ValidationError):
            MetricValue(1.0, "latency")

    @pytest.mark.parametrize(
        ("kind", "exact"),
        [
            ("cost", True),
            ("quality", True),
            ("count", True),
            ("wall", False),
        ],
    )
    def test_exact_split(self, kind, exact):
        assert MetricValue(1.0, kind).exact is exact


class TestBenchRecord:
    def test_name_must_be_bare(self):
        with pytest.raises(ValidationError):
            record(name="has space")
        with pytest.raises(ValidationError):
            record(name="has/slash")
        with pytest.raises(ValidationError):
            record(name="")

    def test_metric_lookup_error_names_alternatives(self):
        with pytest.raises(ValidationError, match="total_cost"):
            record().metric("nope")

    def test_round_trip(self):
        original = record()
        restored = BenchRecord.from_dict(original.to_dict())
        assert restored == original

    def test_from_dict_rejects_other_schema(self):
        raw = record().to_dict()
        raw["schema"] = RECORD_SCHEMA + 1
        with pytest.raises(ValidationError, match="schema"):
            BenchRecord.from_dict(raw)

    def test_make_record_stamps_provenance(self):
        built = make_record(
            "bench_a",
            {"total_cost": MetricValue(1.0, "cost")},
            seed=3,
        )
        assert built.env == environment_fingerprint()
        assert built.git_sha == current_git_sha()
        assert built.created_unix > 0
        assert built.seed == 3


class TestBaselineStore:
    def test_append_and_load_round_trip(self, tmp_path):
        store = BaselineStore(tmp_path / "baselines")
        first = record()
        second = record(
            total_cost=MetricValue(2.0, "cost"),
        )
        path = store.append(first)
        store.append(second)
        assert path == store.path_for("bench_a")
        assert path.name == "BENCH_bench_a.json"
        loaded = store.load("bench_a")
        assert [r.metrics["total_cost"].value for r in loaded] == [
            1.5,
            2.0,
        ]
        assert store.latest("bench_a") == loaded[-1]

    def test_missing_trajectory_is_empty(self, tmp_path):
        store = BaselineStore(tmp_path)
        assert store.load("absent") == []
        assert store.latest("absent") is None
        assert store.names() == []

    def test_names_sorted(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.append(record(name="zz"))
        store.append(record(name="aa"))
        assert store.names() == ["aa", "zz"]

    def test_load_rejects_foreign_json(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.path_for("bad").parent.mkdir(
            parents=True, exist_ok=True
        )
        store.path_for("bad").write_text(json.dumps({"records": 3}))
        with pytest.raises(ValidationError):
            store.load("bad")

    def test_file_is_schema_versioned_and_newline_terminated(
        self, tmp_path
    ):
        store = BaselineStore(tmp_path)
        path = store.append(record())
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == RECORD_SCHEMA

    def test_append_emits_telemetry(self, tmp_path):
        telemetry = Telemetry()
        store = BaselineStore(tmp_path, telemetry=telemetry)
        store.append(record())
        telemetry.flush_metrics()
        points = [
            event
            for event in telemetry.events
            if event["name"] == "perf.record"
        ]
        assert len(points) == 1
