"""Unit tests for trace summarization and rendering."""

import pytest

from repro.obs.summary import (
    format_summary,
    format_tail,
    summarize_events,
    summarize_trace,
)
from repro.obs.sink import JsonlSink
from repro.obs.telemetry import Telemetry


def span_event(name, dur, seq=1, t=0.0, wall_s=0.0, **attrs):
    return {
        "seq": seq,
        "kind": "span",
        "name": name,
        "t": t,
        "dur": dur,
        "wall_s": wall_s,
        "attrs": attrs,
    }


def point_event(name, seq=1, t=0.0, **attrs):
    return {
        "seq": seq,
        "kind": "point",
        "name": name,
        "t": t,
        "dur": 0.0,
        "wall_s": 0.0,
        "attrs": attrs,
    }


class TestSummarizeEvents:
    def test_empty(self):
        summary = summarize_events([])
        assert summary.events == 0
        assert summary.spans == []
        assert summary.total_span_dur == 0.0

    def test_span_aggregation_exact_percentiles(self):
        events = [
            span_event("work", float(dur), seq=index)
            for index, dur in enumerate(range(1, 101), start=1)
        ]
        summary = summarize_events(events)
        (span,) = summary.spans
        assert span.count == 100
        assert span.p50 == pytest.approx(50.5)
        assert span.p95 == pytest.approx(95.05)
        assert span.max_dur == 100.0

    def test_spans_sorted_by_total_duration(self):
        events = [
            span_event("small", 1.0, seq=1),
            span_event("big", 10.0, seq=2),
        ]
        summary = summarize_events(events)
        assert [s.name for s in summary.spans] == ["big", "small"]

    def test_points_counted(self):
        events = [point_event("decision", seq=i) for i in range(3)]
        assert summarize_events(events).points == {"decision": 3}

    def test_counters_from_last_metrics_event(self):
        events = [
            {
                "seq": 1,
                "kind": "metrics",
                "name": "metrics.snapshot",
                "t": 0.0,
                "dur": 0.0,
                "wall_s": 0.0,
                "attrs": {"counters": {"c": 1.0}, "gauges": {}},
            },
            {
                "seq": 2,
                "kind": "metrics",
                "name": "metrics.snapshot",
                "t": 1.0,
                "dur": 0.0,
                "wall_s": 0.0,
                "attrs": {
                    "counters": {"c": 5.0},
                    "gauges": {"g": 2.0},
                    "histograms": {
                        "h": {"count": 3, "mean": 1.0, "p50": 1.0,
                              "p95": 1.0, "p99": 1.0, "max": 1.0},
                    },
                },
            },
        ]
        summary = summarize_events(events)
        assert summary.counters == {"c": 5.0}
        assert summary.gauges == {"g": 2.0}
        assert summary.histograms["h"]["count"] == 3

    def test_single_span_percentiles_collapse(self):
        summary = summarize_events([span_event("only", 2.5)])
        (span,) = summary.spans
        assert span.count == 1
        assert span.p50 == span.p95 == span.p99 == 2.5
        assert span.max_dur == 2.5
        assert summary.total_span_dur == 2.5

    def test_zero_cost_spans_summarize_without_division(self):
        # Spans from pure-bookkeeping paths can carry dur == 0; the
        # summary (and its rendering) must cope with an all-zero
        # total rather than dividing by it.
        events = [
            span_event("noop", 0.0, seq=index) for index in (1, 2, 3)
        ]
        summary = summarize_events(events)
        (span,) = summary.spans
        assert span.count == 3
        assert span.total_dur == 0.0
        assert span.p99 == 0.0
        assert summary.total_span_dur == 0.0
        text = format_summary(summary)
        assert "noop" in text
        assert "events: 3" in text

    def test_explicit_snapshot_overrides_events(self):
        events = [
            {
                "seq": 1,
                "kind": "metrics",
                "name": "metrics.snapshot",
                "t": 0.0,
                "dur": 0.0,
                "wall_s": 0.0,
                "attrs": {"counters": {"c": 1.0}},
            }
        ]
        summary = summarize_events(
            events, metrics_snapshot={"counters": {"c": 9.0}, "gauges": {}}
        )
        assert summary.counters == {"c": 9.0}


class TestSummarizeTrace:
    def test_from_jsonl_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sink=JsonlSink(path))
        with telemetry.tracer.span("work"):
            pass
        telemetry.metrics.counter("hits").inc(2)
        telemetry.flush_metrics()
        telemetry.close()
        summary = summarize_trace(path)
        assert summary.events == 2
        assert summary.spans[0].name == "work"
        assert summary.counters == {"hits": 2.0}


class TestRendering:
    def test_format_summary_sections(self):
        events = [
            span_event("engine.predict", 0.5, seq=1),
            point_event("scheduler.decision", seq=2),
            {
                "seq": 3,
                "kind": "metrics",
                "name": "metrics.snapshot",
                "t": 1.0,
                "dur": 0.0,
                "wall_s": 0.0,
                "attrs": {
                    "counters": {"cache.hits": 4.0},
                    "gauges": {"cache.materialized_chunks": 2.0},
                    "histograms": {
                        "sampler.chunk_age": {
                            "count": 4, "mean": 1.0, "min": 0.0,
                            "max": 2.0, "p50": 1.0, "p95": 2.0,
                            "p99": 2.0,
                        },
                    },
                },
            },
        ]
        text = format_summary(summarize_events(events))
        assert "events: 3" in text
        assert "engine.predict" in text
        assert "p50" in text and "p95" in text
        assert "scheduler.decision" in text
        assert "cache.hits" in text
        assert "cache.materialized_chunks" in text
        assert "sampler.chunk_age" in text

    def test_format_summary_empty_trace(self):
        assert format_summary(summarize_events([])) == "events: 0"

    def test_format_tail_limit_and_shapes(self):
        events = [point_event("tick", seq=i, t=float(i)) for i in range(30)]
        events.append(span_event("work", 1.0, seq=31, t=30.0, rows=5))
        text = format_tail(events, limit=3)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "span" in lines[-1]
        assert "rows=5" in lines[-1]

    def test_format_tail_zero_limit(self):
        assert format_tail([point_event("tick")], limit=0) == ""
