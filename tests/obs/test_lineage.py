"""Unit and integration tests for the provenance ledger."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs import (
    LineageLedger,
    Telemetry,
    lineage_digest,
    load_lineage,
)
from repro.obs.lineage import format_blame, format_lineage, format_trace
from repro.obs.monitor import HealthMonitor, MonitorConfig
from repro.obs.rules import AlertRule

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def small_graph():
    """Two chunks feed one training; its model derives into a child."""
    ledger = LineageLedger()
    ledger.record_chunk(0, "d0", rows=8)
    ledger.record_chunk(1, "d1", rows=8)
    ledger.record_component({"name": "scaler", "digest": "c" * 64})
    training = ledger.record_training(
        chunks=[("chunk:0", 0.75), ("chunk:1", 0.25)],
        components=["comp:" + "c" * 12],
        rows=16,
        objective=0.5,
    )
    ledger.record_model(
        "main", "v0001", checksum="k1", training=training
    )
    ledger.record_transition("main", "v0001", "promote")
    return ledger, training


class TestRecording:
    def test_counts_and_len(self):
        ledger, _ = small_graph()
        counts = ledger.counts()
        assert counts["chunk"] == 2
        assert counts["component"] == 1
        assert counts["training"] == 1
        assert counts["model"] == 1
        assert counts["edges"] == 4  # 2 fed + 1 used + 1 produced

    def test_chunk_idempotent(self):
        ledger = LineageLedger()
        first = ledger.record_chunk(3, "dd", rows=4)
        second = ledger.record_chunk(3, "dd", rows=4)
        assert first == second
        assert ledger.counts()["chunk"] == 1

    def test_component_content_addressed(self):
        ledger = LineageLedger()
        fp = {"name": "scaler", "digest": "a" * 64}
        assert ledger.record_component(fp) == ledger.record_component(fp)
        assert ledger.counts()["component"] == 1

    def test_scoped_chunk_ids(self):
        assert LineageLedger.chunk_id(4) == "chunk:4"
        assert LineageLedger.chunk_id(4, "t01") == "chunk:t01:4"

    def test_transition_updates_live_map(self):
        ledger, _ = small_graph()
        assert ledger.live_version("main") == "model:main:v0001"
        assert ledger.live_version() == "model:main:v0001"
        ledger.record_model("main", "v0002", checksum="k2", parent="v0001")
        ledger.record_transition("main", "v0002", "promote")
        assert ledger.live_version("main") == "model:main:v0002"
        ledger.record_transition("main", "v0001", "rollback")
        assert ledger.live_version("main") == "model:main:v0001"

    def test_incident_implicates_model(self):
        ledger, _ = small_graph()
        node = ledger.record_incident(
            "latency", "serving.latency", model="model:main:v0001"
        )
        assert node == "incident:0"
        report = ledger.trace("chunk:0")
        assert report["incidents"] == ["incident:0"]


class TestResolve:
    def test_full_id_and_suffix(self):
        ledger, _ = small_graph()
        assert ledger.resolve("model:main:v0001") == "model:main:v0001"
        assert ledger.resolve("v0001") == "model:main:v0001"
        assert ledger.resolve("1") == "chunk:1"

    def test_bare_counter_suffix_is_ambiguous(self):
        # "0" matches both chunk:0 and train:0 — resolve refuses to
        # guess.
        ledger, _ = small_graph()
        with pytest.raises(ValidationError, match="ambiguous"):
            ledger.resolve("0")

    def test_missing_reference_raises(self):
        ledger, _ = small_graph()
        with pytest.raises(ValidationError, match="no lineage node"):
            ledger.resolve("v9999")

    def test_ambiguous_reference_lists_candidates(self):
        ledger, _ = small_graph()
        ledger.record_model("other", "v0001", checksum="k9")
        with pytest.raises(ValidationError, match="ambiguous"):
            ledger.resolve("v0001")


class TestQueries:
    def test_blame_weights(self):
        ledger, _ = small_graph()
        report = ledger.blame("v0001")
        assert report["version"] == "model:main:v0001"
        assert [c["chunk"] for c in report["chunks"]] == [
            "chunk:0",
            "chunk:1",
        ]
        assert report["chunks"][0]["weight"] == pytest.approx(0.75)
        assert report["chunks"][0]["digest"] == "d0"

    def test_blame_aggregates_over_derivation_chain(self):
        ledger, _ = small_graph()
        second = ledger.record_training(
            chunks=[("chunk:1", 1.0)],
            components=[],
            rows=8,
            objective=0.4,
        )
        ledger.record_model(
            "main", "v0002", checksum="k2",
            parent="v0001", training=second,
        )
        report = ledger.blame("v0002")
        assert report["derivation"] == [
            "model:main:v0002",
            "model:main:v0001",
        ]
        assert report["trainings"] == ["train:0", "train:1"]
        weights = {c["chunk"]: c["weight"] for c in report["chunks"]}
        assert weights["chunk:1"] == pytest.approx(1.25)
        assert weights["chunk:0"] == pytest.approx(0.75)

    def test_blame_rejects_non_model(self):
        ledger, _ = small_graph()
        with pytest.raises(ValidationError, match="model version"):
            ledger.blame("chunk:0")

    def test_trace_walks_downstream(self):
        ledger, _ = small_graph()
        report = ledger.trace("chunk:0")
        assert report["trainings"] == ["train:0"]
        assert report["models"] == ["model:main:v0001"]
        assert report["incidents"] == []

    def test_trace_rejects_non_chunk(self):
        ledger, _ = small_graph()
        with pytest.raises(ValidationError, match="chunk"):
            ledger.trace("train:0")


class TestDigestAndState:
    def test_identical_builds_identical_digest(self):
        first, _ = small_graph()
        second, _ = small_graph()
        assert first.digest() == second.digest()

    def test_append_changes_digest(self):
        ledger, _ = small_graph()
        before = ledger.digest()
        ledger.record_chunk(2, "d2", rows=8)
        assert ledger.digest() != before

    def test_state_roundtrip_preserves_queries(self):
        ledger, _ = small_graph()
        restored = LineageLedger()
        restored.load_state_dict(ledger.state_dict())
        assert restored.digest() == ledger.digest()
        assert restored.blame("v0001") == ledger.blame("v0001")
        assert restored.trace("chunk:0") == ledger.trace("chunk:0")
        assert restored.live_version("main") == "model:main:v0001"
        # Counters continue from the restored positions.
        assert restored.record_training([], [], rows=0, objective=0.0) == (
            "train:1"
        )
        assert restored.record_incident("r", "s") == "incident:0"

    def test_state_schema_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="schema"):
            LineageLedger().load_state_dict({"schema": 99, "entries": []})

    def test_digest_helper_matches_method(self):
        ledger, _ = small_graph()
        assert lineage_digest(ledger.entries) == ledger.digest()


class TestExport:
    def test_write_load_roundtrip(self, tmp_path):
        ledger, _ = small_graph()
        path = tmp_path / "lineage.json"
        payload = ledger.write(path)
        assert payload["digest"] == ledger.digest()
        restored = load_lineage(path)
        assert restored.digest() == ledger.digest()
        assert restored.blame("v0001") == ledger.blame("v0001")

    def test_write_is_byte_stable(self, tmp_path):
        ledger, _ = small_graph()
        ledger.write(tmp_path / "a.json")
        ledger.write(tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    def test_tampered_export_rejected(self, tmp_path):
        ledger, _ = small_graph()
        path = tmp_path / "lineage.json"
        ledger.write(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["entries"][0]["attrs"]["digest"] = "evil"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValidationError, match="digest mismatch"):
            load_lineage(path)

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "lineage.json"
        path.write_text(json.dumps({"schema": 99}), encoding="utf-8")
        with pytest.raises(ValidationError, match="schema"):
            load_lineage(path)


class TestFormatting:
    def test_format_lineage_mentions_live_and_digest(self):
        ledger, _ = small_graph()
        text = format_lineage(ledger)
        assert "live[main] = model:main:v0001" in text
        assert ledger.digest()[:16] in text

    def test_format_blame_limits_rows(self):
        ledger, _ = small_graph()
        text = format_blame(ledger.blame("v0001"), limit=1)
        assert "chunk:0" in text
        assert "... 1 more" in text

    def test_format_trace(self):
        ledger, _ = small_graph()
        text = format_trace(ledger.trace("chunk:1"))
        assert "train:0" in text
        assert "model:main:v0001" in text


class TestTelemetryIntegration:
    def test_attach_ledger_emits_growth_telemetry(self):
        telemetry = Telemetry()
        ledger = telemetry.attach_ledger()
        ledger.record_chunk(0, "d0", rows=4)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"]["lineage.nodes"] == 1
        points = [
            e for e in telemetry.events if e["name"] == "lineage.node"
        ]
        assert points and points[0]["attrs"]["kind"] == "chunk"

    def test_double_attach_rejected(self):
        telemetry = Telemetry()
        telemetry.attach_ledger()
        with pytest.raises(ValidationError, match="already"):
            telemetry.attach_ledger()

    def test_disabled_bundle_rejected(self):
        from repro.obs import NULL_TELEMETRY

        with pytest.raises(ValidationError, match="disabled"):
            NULL_TELEMETRY.attach_ledger()

    def test_write_emits_exported_point(self, tmp_path):
        telemetry = Telemetry()
        ledger = telemetry.attach_ledger()
        ledger.record_chunk(0, "d0", rows=4)
        ledger.write(tmp_path / "lineage.json")
        exported = [
            e for e in telemetry.events if e["name"] == "lineage.exported"
        ]
        assert len(exported) == 1
        assert exported[0]["attrs"]["entries"] == 1


class TestMonitorEvidence:
    def serving_rule(self):
        return AlertRule(
            name="latency",
            signal="serving.latency",
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
        )

    def fire(self, monitor):
        monitor.emit(
            {
                "seq": 0,
                "kind": "point",
                "name": "serving.latency",
                "t": 0.5,
                "dur": 0.0,
                "wall_s": 0.0,
                "attrs": {},
            }
        )
        monitor.flush()

    def test_incident_evidence_carries_lineage(self):
        ledger, _ = small_graph()
        monitor = HealthMonitor(
            rules=[self.serving_rule()], config=MonitorConfig(window=1.0)
        )
        monitor.bind(ledger=ledger)
        self.fire(monitor)
        (incident,) = monitor.incidents.incidents
        evidence = incident.evidence[-1]
        assert evidence["kind"] == "lineage"
        assert evidence["live_version"] == "model:main:v0001"
        assert evidence["node"] == "incident:0"
        assert evidence["lineage_digest"] == ledger.digest()
        # The ledger gained an incident implicating the live model.
        report = ledger.trace("chunk:0")
        assert report["incidents"] == ["incident:0"]

    def test_non_serving_rule_untouched(self):
        ledger, _ = small_graph()
        rule = AlertRule(
            name="drift",
            signal="platform.chunk",
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
        )
        monitor = HealthMonitor(
            rules=[rule], config=MonitorConfig(window=1.0)
        )
        monitor.bind(ledger=ledger)
        monitor.emit(
            {
                "seq": 0,
                "kind": "point",
                "name": "platform.chunk",
                "t": 0.5,
                "dur": 0.0,
                "wall_s": 0.0,
                "attrs": {},
            }
        )
        monitor.flush()
        (incident,) = monitor.incidents.incidents
        assert all(
            e.get("kind") != "lineage" for e in incident.evidence
        )
        assert ledger.counts()["incident"] == 0

    def test_without_ledger_no_evidence(self):
        monitor = HealthMonitor(
            rules=[self.serving_rule()], config=MonitorConfig(window=1.0)
        )
        self.fire(monitor)
        (incident,) = monitor.incidents.incidents
        assert all(
            e.get("kind") != "lineage" for e in incident.evidence
        )

    def test_attach_order_cross_binds(self):
        for ledger_first in (True, False):
            telemetry = Telemetry()
            if ledger_first:
                ledger = telemetry.attach_ledger()
                monitor = telemetry.attach_monitor(
                    rules=[self.serving_rule()]
                )
            else:
                monitor = telemetry.attach_monitor(
                    rules=[self.serving_rule()]
                )
                ledger = telemetry.attach_ledger()
            assert monitor._ledger is ledger
