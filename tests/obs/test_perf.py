"""Unit tests for the regression detector and its CLI workloads."""

from dataclasses import replace

import pytest

from repro.exceptions import ValidationError
from repro.experiments.common import url_scenario
from repro.obs.baseline import BenchRecord, MetricValue
from repro.obs.perf import (
    FAILING_VERDICTS,
    RegressionReport,
    TolerancePolicy,
    check_record,
    format_report,
    format_trajectory,
    run_workload,
    workload_name,
)
from repro.obs.telemetry import Telemetry


def record(digest=None, **overrides):
    metrics = {
        "total_cost": MetricValue(10.0, "cost"),
        "final_error": MetricValue(0.25, "quality"),
        "chunks": MetricValue(40.0, "count"),
        "wall_s": MetricValue(1.0, "wall"),
    }
    metrics.update(overrides)
    return BenchRecord(
        name="bench_a",
        metrics=metrics,
        seed=7,
        profile_digest=digest,
    )


def verdict_of(report, metric):
    (check,) = [c for c in report.checks if c.metric == metric]
    return check.verdict


class TestTolerancePolicy:
    def test_rejects_negative_budget(self):
        with pytest.raises(ValidationError):
            TolerancePolicy(wall_budget=-0.1)

    def test_rejects_empty_window(self):
        with pytest.raises(ValidationError):
            TolerancePolicy(window=0)


class TestCheckRecord:
    def test_empty_history_founds_baseline(self):
        report = check_record(record(), [])
        assert report.ok
        assert report.exit_code() == 0
        assert {c.verdict for c in report.checks} == {"new"}

    def test_self_comparison_is_all_ok(self):
        report = check_record(
            record(digest="abc"), [record(digest="abc")]
        )
        assert report.ok
        assert {c.verdict for c in report.checks} == {"ok"}

    def test_cost_inflation_is_a_regression(self):
        fresh = record(total_cost=MetricValue(20.0, "cost"))
        report = check_record(fresh, [record()])
        assert not report.ok
        assert report.exit_code() == 1
        assert verdict_of(report, "total_cost") == "regression"

    def test_cost_drop_is_an_improvement_and_passes(self):
        fresh = record(total_cost=MetricValue(5.0, "cost"))
        report = check_record(fresh, [record()])
        assert report.ok
        assert verdict_of(report, "total_cost") == "improvement"

    def test_any_count_drift_is_a_regression(self):
        fewer = record(chunks=MetricValue(39.0, "count"))
        report = check_record(fewer, [record()])
        assert verdict_of(report, "chunks") == "regression"

    def test_wall_within_budget_is_ok(self):
        fresh = record(wall_s=MetricValue(1.4, "wall"))
        report = check_record(
            fresh, [record()], TolerancePolicy(wall_budget=0.5)
        )
        assert verdict_of(report, "wall_s") == "ok"

    def test_wall_over_budget_regresses(self):
        fresh = record(wall_s=MetricValue(1.6, "wall"))
        report = check_record(
            fresh, [record()], TolerancePolicy(wall_budget=0.5)
        )
        assert verdict_of(report, "wall_s") == "regression"

    def test_wall_compares_against_median_of_window(self):
        history = [
            record(wall_s=MetricValue(w, "wall"))
            for w in (1.0, 1.0, 9.0, 1.0, 1.0)
        ]
        fresh = record(wall_s=MetricValue(1.2, "wall"))
        report = check_record(
            fresh, history, TolerancePolicy(wall_budget=0.5, window=5)
        )
        # Median of {1, 1, 9, 1, 1} is 1: the one hot run in the
        # window does not shift the gate.
        assert verdict_of(report, "wall_s") == "ok"

    def test_metric_missing_from_fresh_run_fails(self):
        fresh = record()
        del fresh.metrics["final_error"]
        report = check_record(fresh, [record()])
        assert verdict_of(report, "final_error") == "missing"
        assert not report.ok

    def test_metric_new_in_fresh_run_passes(self):
        fresh = record(extra=MetricValue(1.0, "cost"))
        report = check_record(fresh, [record()])
        assert verdict_of(report, "extra") == "new"
        assert report.ok

    def test_digest_change_warns_by_default(self):
        report = check_record(
            record(digest="bbb"), [record(digest="aaa")]
        )
        assert verdict_of(report, "profile_digest") == "changed"
        assert report.ok

    def test_digest_change_gates_with_policy(self):
        report = check_record(
            record(digest="bbb"),
            [record(digest="aaa")],
            TolerancePolicy(gate_profile=True),
        )
        assert verdict_of(report, "profile_digest") == "regression"
        assert not report.ok

    def test_digest_absent_on_one_side_is_skipped(self):
        report = check_record(record(), [record(digest="aaa")])
        assert verdict_of(report, "profile_digest") == "ok"

    def test_emits_telemetry_on_regression(self):
        telemetry = Telemetry()
        fresh = record(total_cost=MetricValue(20.0, "cost"))
        check_record(fresh, [record()], telemetry=telemetry)
        telemetry.flush_metrics()
        names = [event["name"] for event in telemetry.events]
        assert "perf.check" in names
        snapshot = telemetry.events[-1]["attrs"]
        assert snapshot["counters"]["perf.regressions"] == 1.0


class TestRendering:
    def test_format_report_states_the_verdict(self):
        passing = check_record(record(), [record()])
        failing = check_record(
            record(total_cost=MetricValue(20.0, "cost")), [record()]
        )
        assert "OK — no regressions" in format_report(passing)
        assert "REGRESSION in total_cost" in format_report(failing)

    def test_format_trajectory_lists_each_record(self):
        text = format_trajectory("bench_a", [record(), record()])
        assert "2 record(s)" in text
        assert "total_cost=10" in text

    def test_failing_verdicts_vocabulary(self):
        assert set(FAILING_VERDICTS) == {"regression", "missing"}
        assert RegressionReport(name="x").ok


class TestRunWorkload:
    def test_identical_seeds_gate_clean(self):
        scenario = url_scenario("test")
        baseline, _ = run_workload(scenario, "continuous")
        fresh, root = run_workload(scenario, "continuous")
        assert baseline.name == workload_name(
            scenario.name, "continuous"
        )
        assert fresh.profile_digest == baseline.profile_digest
        assert root.cum_cost > 0.0
        report = check_record(fresh, [baseline])
        assert report.ok, format_report(report)
        exact = [c for c in report.checks if c.kind != "wall"]
        assert all(c.verdict == "ok" for c in exact)

    def test_inflated_cost_is_flagged(self):
        scenario = url_scenario("test")
        baseline, _ = run_workload(scenario, "continuous")
        fresh, _ = run_workload(scenario, "continuous")
        fresh.metrics["total_cost"] = MetricValue(
            baseline.metrics["total_cost"].value * 2.0, "cost"
        )
        report = check_record(fresh, [baseline])
        assert not report.ok
        assert verdict_of(report, "total_cost") == "regression"

    def test_record_carries_reproduction_knobs(self):
        scenario = url_scenario("test")
        built, _ = run_workload(scenario, "online")
        assert built.seed == scenario.seed
        assert built.params["num_chunks"] == scenario.num_chunks
        assert built.params["approach"] == "online"


def test_report_dataclass_replace_keeps_contract():
    policy = TolerancePolicy()
    assert replace(policy, wall_budget=1.0).wall_budget == 1.0
    with pytest.raises(ValidationError):
        replace(policy, window=0)
