"""Unit tests for the metrics primitives."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_decrease(self):
        with pytest.raises(ValidationError):
            Counter("hits").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("level")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3.0


class TestStreamingHistogram:
    def test_empty_quantile_is_zero(self):
        assert StreamingHistogram("h").quantile(0.5) == 0.0

    def test_tracks_count_mean_min_max(self):
        hist = StreamingHistogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.add(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_quantiles_within_bucket_error(self):
        """Relative error of the sketch is bounded by the bucket base."""
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=0.0, sigma=1.5, size=5000)
        hist = StreamingHistogram("h")
        for value in values:
            hist.add(value)
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            estimate = hist.quantile(q)
            assert estimate == pytest.approx(exact, rel=0.15)

    def test_zero_and_negative_values_bucketed(self):
        hist = StreamingHistogram("h")
        for value in (0.0, -1.0, 0.0, 5.0):
            hist.add(value)
        assert hist.quantile(0.5) <= 0.0
        assert hist.quantile(1.0) == pytest.approx(5.0, rel=0.06)

    def test_quantile_clamped_to_observed_range(self):
        hist = StreamingHistogram("h")
        hist.add(7.0)
        assert hist.quantile(0.5) == 7.0
        assert hist.quantile(0.99) == 7.0

    def test_invalid_quantile_and_base(self):
        with pytest.raises(ValidationError):
            StreamingHistogram("h").quantile(1.5)
        with pytest.raises(ValidationError):
            StreamingHistogram("h", base=1.0)

    def test_percentiles_trio(self):
        hist = StreamingHistogram("h")
        hist.add(1.0)
        assert set(hist.percentiles()) == {"p50", "p95", "p99"}


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_observe_shorthand(self):
        registry = MetricsRegistry()
        registry.observe("latency", 2.0)
        assert registry.histogram("latency").count == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.observe("h", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3.0}
        assert snapshot["gauges"] == {"g": 7.0}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["p50"] == pytest.approx(1.5)

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestHistogramStateRoundTrip:
    """The checkpoint contract: state_dict restores the full sketch
    bit-identically, including through strict-JSON serialization (the
    monitor's windows ride in platform checkpoints as JSON-safe
    state)."""

    def _populated(self):
        hist = StreamingHistogram("h")
        rng = np.random.default_rng(11)
        for value in rng.exponential(scale=3.0, size=500):
            hist.add(float(value))
        hist.add(0.0)
        hist.add(-2.5)
        return hist

    def test_json_round_trip_is_bit_identical(self):
        import json

        hist = self._populated()
        state = json.loads(
            json.dumps(hist.state_dict(), allow_nan=False)
        )
        clone = StreamingHistogram("h")
        clone.load_state_dict(state)
        assert clone.state_dict() == hist.state_dict()
        assert clone.count == hist.count
        assert clone.total == hist.total
        assert clone.min == hist.min
        assert clone.max == hist.max
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert clone.quantile(q) == hist.quantile(q)
        # The restored sketch keeps absorbing samples identically.
        hist.add(7.7)
        clone.add(7.7)
        assert clone.state_dict() == hist.state_dict()

    def test_empty_sketch_round_trip(self):
        import json

        state = json.loads(
            json.dumps(
                StreamingHistogram("h").state_dict(), allow_nan=False
            )
        )
        clone = StreamingHistogram("h")
        clone.load_state_dict(state)
        assert clone.count == 0
        assert clone.quantile(0.5) == 0.0
        clone.add(4.0)
        assert clone.min == 4.0 and clone.max == 4.0

    def test_legacy_dict_buckets_accepted(self):
        # Pre-JSON-safe checkpoints stored buckets as {index: count}.
        hist = self._populated()
        state = hist.state_dict()
        state["buckets"] = {
            index: count for index, count in state["buckets"]
        }
        state["min"] = hist.min
        state["max"] = hist.max
        clone = StreamingHistogram("h")
        clone.load_state_dict(state)
        assert clone.state_dict() == hist.state_dict()


class TestHistogramMerge:
    def test_merge_equals_combined_stream(self):
        left = StreamingHistogram("l")
        right = StreamingHistogram("r")
        combined = StreamingHistogram("c")
        rng = np.random.default_rng(5)
        for index, value in enumerate(rng.uniform(0.1, 9.0, size=200)):
            (left if index % 2 else right).add(float(value))
            combined.add(float(value))
        left.merge(right)
        assert left.count == combined.count
        assert left.total == pytest.approx(combined.total)
        assert left.min == combined.min
        assert left.max == combined.max
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == combined.quantile(q)

    def test_merge_empty_keeps_minmax(self):
        left = StreamingHistogram("l")
        left.add(2.0)
        left.merge(StreamingHistogram("r"))
        assert left.min == 2.0 and left.max == 2.0
        assert left.count == 1

    def test_merge_base_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            StreamingHistogram("l").merge(
                StreamingHistogram("r", base=1.5)
            )
