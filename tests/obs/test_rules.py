"""Unit tests for declarative alert rules (repro.obs.rules)."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs.rules import AlertRule, RuleState
from repro.obs.windows import SeriesWindows


def _series_with(values, width=1.0, history=4):
    """One closed window per value, at consecutive virtual times."""
    series = SeriesWindows("sig", width=width, history=history)
    for index, value in enumerate(values):
        if value is not None:
            series.observe(index * width, value)
        series.close_window()
    return series


class TestAlertRuleValidation:
    def test_defaults_build(self):
        rule = AlertRule(name="r", signal="sig")
        assert rule.kind == "threshold"
        assert rule.stat == "count"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"signal": ""},
            {"kind": "bogus"},
            {"stat": "median"},
            {"op": "=="},
            {"severity": "catastrophic"},
            {"window": 0},
            {"for_windows": 0},
            {"clear_windows": 0},
            {"kind": "absence", "stale_after": 0.0},
            {"kind": "mean_shift", "warmup": 1},
            {"kind": "mean_shift", "drift_h": 0.0},
            {"kind": "mean_shift", "drift_k": -0.1},
        ],
    )
    def test_invalid_declarations_rejected(self, kwargs):
        base = {"name": "r", "signal": "sig"}
        base.update(kwargs)
        with pytest.raises(ValidationError):
            AlertRule(**base)

    def test_dict_round_trip(self):
        rule = AlertRule(
            name="r",
            signal="sig",
            kind="rate_of_change",
            stat="sum",
            op=">",
            value=2.0,
            window=3,
            severity="critical",
        )
        clone = AlertRule.from_dict(json.loads(json.dumps(rule.to_dict())))
        assert clone == rule

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError):
            AlertRule.from_dict({"name": "r", "signal": "s", "wat": 1})

    def test_quantile_stats_flagged(self):
        assert AlertRule(name="r", signal="s", stat="p95").needs_quantiles
        assert not AlertRule(name="r", signal="s").needs_quantiles


class TestThreshold:
    def test_breaches_on_count(self):
        series = _series_with([1.0])
        state = RuleState(AlertRule(name="r", signal="sig"))
        result = state.evaluate(series.view(1), 1.0, series.last_sample_t)
        assert result.breached
        assert result.value == 1.0

    def test_value_stat_none_cannot_breach(self):
        # An empty window yields mean=None: "no data" is not "breach".
        series = _series_with([None])
        rule = AlertRule(
            name="r", signal="sig", stat="mean", op=">", value=0.0
        )
        state = RuleState(rule)
        result = state.evaluate(series.view(1), 1.0, series.last_sample_t)
        assert not result.breached
        assert result.value is None

    def test_sliding_window_accumulates(self):
        rule = AlertRule(
            name="r", signal="sig", stat="count", op=">=", value=3.0,
            window=2,
        )
        series = SeriesWindows("sig", width=1.0, history=2)
        state = RuleState(rule)
        series.observe(0.1, 1.0)
        series.observe(0.2, 1.0)
        series.close_window()
        assert not state.evaluate(series.view(2), 1.0, 0.2).breached
        series.observe(1.1, 1.0)
        series.close_window()
        assert state.evaluate(series.view(2), 2.0, 1.1).breached


class TestRateOfChange:
    def test_first_observation_never_breaches(self):
        rule = AlertRule(
            name="r", signal="sig", kind="rate_of_change",
            stat="sum", op=">=", value=1.0,
        )
        state = RuleState(rule)
        series = _series_with([5.0])
        result = state.evaluate(series.view(1), 1.0, series.last_sample_t)
        assert not result.breached

    def test_delta_between_closes(self):
        rule = AlertRule(
            name="r", signal="sig", kind="rate_of_change",
            stat="sum", op=">=", value=3.0,
        )
        state = RuleState(rule)
        series = SeriesWindows("sig", width=1.0, history=1)
        series.observe(0.5, 1.0)
        series.close_window()
        state.evaluate(series.view(1), 1.0, 0.5)
        series.observe(1.5, 5.0)
        series.close_window()
        result = state.evaluate(series.view(1), 2.0, 1.5)
        assert result.breached
        assert result.value == pytest.approx(4.0)


class TestAbsence:
    def _rule(self):
        return AlertRule(
            name="r", signal="sig", kind="absence", stale_after=2.0
        )

    def test_never_seen_signal_never_breaches(self):
        state = RuleState(self._rule())
        series = _series_with([None, None])
        assert not state.evaluate(series.view(1), 2.0, None).breached

    def test_fires_after_silence_budget(self):
        state = RuleState(self._rule())
        assert not state.evaluate(
            _series_with([1.0]).view(1), 2.0, 0.0
        ).breached
        result = state.evaluate(_series_with([1.0]).view(1), 3.5, 0.0)
        assert result.breached
        assert result.value == pytest.approx(3.5)


class TestMeanShift:
    def _rule(self, warmup=3, h=3.0, k=0.5):
        return AlertRule(
            name="r", signal="sig", kind="mean_shift", stat="mean",
            warmup=warmup, drift_h=h, drift_k=k,
        )

    def _drive(self, state, values):
        results = []
        for index, value in enumerate(values):
            series = _series_with([value])
            results.append(
                state.evaluate(series.view(1), index + 1.0, float(index))
            )
        return results

    def test_warmup_never_breaches(self):
        state = RuleState(self._rule(warmup=3))
        results = self._drive(state, [1.0, 100.0, -50.0])
        assert not any(r.breached for r in results)

    def test_shift_accumulates_and_decays(self):
        state = RuleState(self._rule(warmup=3, h=3.0, k=0.5))
        # Stable reference, then a sustained upward shift.
        self._drive(state, [1.0, 1.1, 0.9])
        (shifted,) = self._drive(state, [5.0])
        assert shifted.breached
        # Back to the reference level: the CUSUM decays by k per
        # window and the rule stops breaching.
        recovered = self._drive(state, [1.0] * 80)
        assert not recovered[-1].breached

    def test_constant_warmup_sigma_floored(self):
        state = RuleState(self._rule(warmup=3, h=3.0))
        self._drive(state, [2.0, 2.0, 2.0])
        result = self._drive(state, [2.0])[0]
        assert not result.breached


class TestRuleStateCheckpoint:
    def test_state_round_trip_resumes_cusum(self):
        rule = AlertRule(
            name="r", signal="sig", kind="mean_shift", stat="mean",
            warmup=2, drift_h=2.0,
        )
        state = RuleState(rule)
        for index, value in enumerate([1.0, 1.2, 4.0]):
            series = _series_with([value])
            state.evaluate(series.view(1), index + 1.0, float(index))
        saved = json.loads(json.dumps(state.state_dict()))
        clone = RuleState(rule)
        clone.load_state_dict(saved)
        assert clone.state_dict() == state.state_dict()
        series = _series_with([4.0])
        left = state.evaluate(series.view(1), 5.0, 4.0)
        right = clone.evaluate(series.view(1), 5.0, 4.0)
        assert left == right
