"""Determinism guarantees of the provenance ledger.

Two invariants, mirroring the repo-wide byte-identity contract:

* two same-seed instrumented runs export **byte-identical**
  ``lineage.json`` files;
* a run crashed mid-stream and recovered from its checkpoint (the
  ledger rides the ``"lineage"`` checkpoint key) finishes with a
  ``lineage.json`` byte-identical to the uninterrupted run.
"""

import pytest

from repro.experiments.common import make_deployment, url_scenario
from repro.experiments.exp1_deployment import run_experiment1
from repro.obs import Telemetry
from repro.reliability import (
    CheckpointConfig,
    FaultPlan,
    SimulatedCrash,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)

CADENCE = 3


def exp1_lineage(tmp_path, tag):
    telemetry = Telemetry()
    telemetry.attach_ledger()
    run_experiment1(url_scenario("test"), telemetry=telemetry)
    path = tmp_path / f"lineage-{tag}.json"
    telemetry.ledger.write(path)
    return path


class TestSameSeedByteIdentity:
    def test_exp1_twice_identical(self, tmp_path):
        first = exp1_lineage(tmp_path, "first")
        second = exp1_lineage(tmp_path, "second")
        assert first.read_bytes() == second.read_bytes()
        assert len(first.read_bytes()) > 200  # non-trivial graph


class TestRecoveryByteIdentity:
    def run_reference(self, scn, directory):
        telemetry = Telemetry()
        telemetry.attach_ledger()
        config = CheckpointConfig(
            directory=directory, cadence_chunks=CADENCE, keep=3
        )
        deployment = make_deployment(
            scn, "continuous", telemetry=telemetry, checkpoint=config
        )
        deployment.initial_fit(
            scn.make_initial_data(),
            seed=scn.seed,
            **scn.initial_fit_kwargs,
        )
        deployment.run(scn.make_stream())
        return telemetry.ledger

    def test_crash_recover_identical(self, tmp_path):
        scn = url_scenario("test")
        reference = self.run_reference(scn, tmp_path / "reference")

        config = CheckpointConfig(
            directory=tmp_path / "crash",
            cadence_chunks=CADENCE,
            keep=3,
        )
        crashing_telemetry = Telemetry()
        crashing_telemetry.attach_ledger()
        crashing = make_deployment(
            scn,
            "continuous",
            telemetry=crashing_telemetry,
            checkpoint=config,
            fault_plan=FaultPlan.crash_at("stream.read", 9),
        )
        crashing.initial_fit(
            scn.make_initial_data(),
            seed=scn.seed,
            **scn.initial_fit_kwargs,
        )
        with pytest.raises(SimulatedCrash):
            crashing.run(scn.make_stream())
        # The crashed ledger is a strict prefix — shorter than the
        # finished reference.
        assert len(crashing_telemetry.ledger) < len(reference)

        recovering_telemetry = Telemetry()
        recovering_telemetry.attach_ledger()
        recovering = make_deployment(
            scn,
            "continuous",
            telemetry=recovering_telemetry,
            checkpoint=config,
        )
        recovering.recover(scn.make_stream())

        ref_path = tmp_path / "ref-lineage.json"
        rec_path = tmp_path / "rec-lineage.json"
        reference.write(ref_path)
        recovering_telemetry.ledger.write(rec_path)
        assert ref_path.read_bytes() == rec_path.read_bytes()
