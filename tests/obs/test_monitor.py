"""Tests for the live health monitor (repro.obs.monitor).

Covers the window mechanics' edge cases (empty windows, boundary
samples, single events), the pending → firing → resolved incident
lifecycle, checkpoint round-trips, and the determinism contract:
identical event streams produce byte-identical ``health.json``.
"""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs import (
    AlertRule,
    HealthMonitor,
    JsonlSink,
    MonitorConfig,
    Telemetry,
    default_rules,
    format_alerts,
    format_timeline,
    health_digest,
    load_jsonl,
    replay_trace,
)
from tests.obs.test_instrumentation import run_continuous

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def point(name, t, seq=0, **attrs):
    """A synthetic point event as the tracer would emit it."""
    return {
        "seq": seq,
        "kind": "point",
        "name": name,
        "t": t,
        "dur": 0.0,
        "wall_s": 0.123,
        "attrs": attrs,
    }


def span(name, t, dur, seq=0, **attrs):
    return {
        "seq": seq,
        "kind": "span",
        "name": name,
        "t": t,
        "dur": dur,
        "wall_s": 0.123,
        "attrs": attrs,
    }


def count_rule(name="hit", signal="sig", **overrides):
    kwargs = {
        "name": name,
        "signal": signal,
        "kind": "threshold",
        "stat": "count",
        "op": ">=",
        "value": 1.0,
    }
    kwargs.update(overrides)
    return AlertRule(**kwargs)


def monitor_with(*rules, window=1.0, **config):
    return HealthMonitor(
        rules=list(rules),
        config=MonitorConfig(window=window, **config),
    )


class TestWindowMechanics:
    def test_empty_windows_close_without_incident(self):
        monitor = monitor_with(count_rule())
        # A gap from window 0 to window 5: four empty windows close.
        monitor.emit(point("tick", 0.5))
        monitor.emit(point("tick", 5.5))
        monitor.flush()
        assert monitor.windows_closed == 6
        assert len(monitor.incidents) == 0

    def test_single_event_stream(self):
        monitor = monitor_with(count_rule())
        monitor.emit(point("sig", 0.5))
        monitor.flush()
        assert monitor.windows_closed == 1
        assert monitor.events_seen == 1
        (incident,) = monitor.incidents.incidents
        assert incident.state == "firing"
        assert incident.fired_at == 1.0

    def test_boundary_sample_lands_in_next_window(self):
        monitor = monitor_with(count_rule())
        # Exactly on the tick: t=1.0 belongs to window [1.0, 2.0) —
        # and its arrival closes window 0 as empty.
        monitor.emit(point("tick", 0.0))
        monitor.emit(point("sig", 1.0))
        monitor.flush()
        (incident,) = monitor.incidents.incidents
        assert incident.opened_at == 2.0
        assert monitor.windows_closed == 2

    def test_span_sampled_at_emission_time(self):
        # A span starting in window 0 but ending in window 2 counts in
        # window 2 (where it was emitted), keeping intake monotonic.
        monitor = monitor_with(count_rule(signal="work"))
        monitor.emit(span("work", 0.5, 2.0))
        monitor.flush()
        (incident,) = monitor.incidents.incidents
        assert incident.opened_at == 3.0

    def test_span_duration_signal(self):
        rule = AlertRule(
            name="slow", signal="work.dur", stat="max", op=">",
            value=1.0,
        )
        monitor = monitor_with(rule)
        monitor.emit(span("work", 0.2, 0.3))
        monitor.emit(span("work", 1.0, 1.5))
        monitor.flush()
        (incident,) = monitor.incidents.incidents
        assert incident.detail.startswith("max(work.dur)")

    def test_value_attr_promoted_to_signal(self):
        rule = AlertRule(
            name="err", signal="platform.chunk.error", stat="mean",
            op=">", value=0.5,
        )
        monitor = monitor_with(rule)
        monitor.emit(point("platform.chunk", 0.5, error=0.9))
        monitor.flush()
        (incident,) = monitor.incidents.incidents
        assert incident.signal == "platform.chunk.error"

    def test_own_emissions_skipped(self):
        monitor = monitor_with(count_rule())
        monitor.emit(point("alert.firing", 0.5, rule="hit"))
        monitor.emit(point("monitor.windows", 0.6))
        monitor.emit(point("health.exported", 0.7))
        monitor.emit({"kind": "metrics", "name": "metrics", "t": 0.8})
        monitor.flush()
        assert monitor.events_seen == 0
        assert monitor.windows_closed == 0

    def test_flush_idempotent_and_final_partial_window(self):
        monitor = monitor_with(count_rule())
        monitor.emit(point("sig", 0.5))
        monitor.flush()
        monitor.flush()
        monitor.emit(point("sig", 9.0))  # after close: ignored
        assert monitor.windows_closed == 1
        assert monitor.events_seen == 1


class TestIncidentLifecycle:
    def test_fires_and_resolves_within_one_window_each(self):
        monitor = monitor_with(count_rule())
        monitor.emit(point("sig", 0.5))
        monitor.emit(point("tick", 1.5))  # closes w0: breach -> firing
        monitor.emit(point("tick", 2.5))  # closes w1: clean -> resolved
        monitor.flush()
        (incident,) = monitor.incidents.incidents
        assert incident.state == "resolved"
        assert incident.opened_at == 1.0
        assert incident.fired_at == 1.0
        assert incident.resolved_at == 2.0

    def test_for_windows_gates_firing(self):
        rule = count_rule(for_windows=2)
        monitor = monitor_with(rule)
        monitor.emit(point("sig", 0.5))
        monitor.emit(point("tick", 1.5))
        (incident,) = monitor.incidents.incidents
        assert incident.state == "pending"
        monitor.emit(point("sig", 1.6))
        monitor.emit(point("tick", 2.5))
        assert incident.state == "firing"
        assert incident.fired_at == 2.0

    def test_pending_that_clears_resolves_unfired(self):
        rule = count_rule(for_windows=3)
        monitor = monitor_with(rule)
        monitor.emit(point("sig", 0.5))
        monitor.emit(point("tick", 1.5))
        monitor.emit(point("tick", 2.5))
        monitor.flush()
        (incident,) = monitor.incidents.incidents
        assert incident.state == "resolved"
        assert incident.fired_at is None
        assert monitor.incidents.fired_count == 0
        assert monitor.incidents.resolved_count == 0

    def test_dedup_one_open_incident_per_rule(self):
        monitor = monitor_with(count_rule(clear_windows=2))
        for t in (0.5, 1.5, 2.5):
            monitor.emit(point("sig", t))
        monitor.emit(point("tick", 3.5))
        incidents = monitor.incidents.incidents
        assert len(incidents) == 1
        assert incidents[0].windows_breached == 3

    def test_rebreach_after_resolution_opens_fresh_incident(self):
        monitor = monitor_with(count_rule())
        monitor.emit(point("sig", 0.5))
        monitor.emit(point("tick", 1.5))
        monitor.emit(point("tick", 2.5))  # resolves #1
        monitor.emit(point("sig", 3.5))
        monitor.flush()
        assert [i.id for i in monitor.incidents.incidents] == [1, 2]
        assert monitor.incidents.incidents[1].state == "firing"

    def test_evidence_is_sanitized(self):
        monitor = monitor_with(count_rule())
        monitor.emit(point("sig", 0.5, chunk=7))
        monitor.emit(point("tick", 1.5))
        (incident,) = monitor.incidents.incidents
        (evidence,) = incident.evidence
        assert evidence["name"] == "sig"
        assert evidence["attrs"] == {"chunk": 7}
        assert "wall_s" not in evidence

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValidationError):
            monitor_with(count_rule(), count_rule())


class TestHealthPayload:
    def _stream(self):
        events = []
        for index in range(40):
            t = index * 0.25
            events.append(point("tick", t, seq=index))
            if 10 <= index < 20:
                events.append(point("sig", t + 0.01, seq=100 + index))
        return events

    def test_identical_streams_byte_identical_health(self, tmp_path):
        first = replay_trace(self._stream(), rules=[count_rule()])
        second = replay_trace(self._stream(), rules=[count_rule()])
        a = first.write_health(tmp_path / "a.json")
        b = second.write_health(tmp_path / "b.json")
        assert a["digest"] == b["digest"]
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    def test_digest_detects_mutation(self):
        payload = replay_trace(
            self._stream(), rules=[count_rule()]
        ).health()
        assert payload["digest"] == health_digest(payload)
        payload["incidents"][0]["opened_at"] += 1.0
        assert payload["digest"] != health_digest(payload)

    def test_payload_is_strict_json(self):
        payload = replay_trace(
            self._stream(), rules=[count_rule()]
        ).health()
        json.dumps(payload, allow_nan=False)

    def test_snapshots_bounded_and_periodic(self):
        monitor = replay_trace(
            self._stream(),
            rules=[count_rule()],
            config=MonitorConfig(
                window=1.0, snapshot_every=2, max_snapshots=3
            ),
        )
        assert len(monitor.snapshots) == 3
        assert [s["window"] for s in monitor.snapshots] == [1, 3, 5]

    def test_timeline_and_alerts_render(self):
        payload = replay_trace(
            self._stream(), rules=[count_rule()]
        ).health()
        timeline = format_timeline(payload)
        assert "health timeline" in timeline
        assert "hit" in timeline
        alerts = format_alerts(payload)
        assert "alert rules (1):" in alerts

    def test_empty_timeline_renders(self):
        payload = replay_trace([], rules=[count_rule()]).health()
        assert "no incidents" in format_timeline(payload)


class TestCheckpointRoundTrip:
    def _stream(self):
        events = []
        for index in range(30):
            events.append(point("tick", index * 0.3, seq=index))
            if index % 7 == 0:
                events.append(
                    point("sig", index * 0.3 + 0.01, seq=100 + index)
                )
        return events

    def test_mid_stream_restore_matches_uninterrupted(self):
        rules = [count_rule(for_windows=2, clear_windows=2)]
        events = self._stream()
        straight = replay_trace(
            events, rules=rules, config=MonitorConfig(window=1.0)
        )

        left = HealthMonitor(rules=rules, config=MonitorConfig(window=1.0))
        for event in events[:17]:
            left.emit(event)
        state = json.loads(json.dumps(left.state_dict(), allow_nan=False))
        resumed = HealthMonitor(
            rules=rules, config=MonitorConfig(window=1.0)
        )
        resumed.load_state_dict(state)
        for event in events[17:]:
            resumed.emit(event)
        resumed.flush()
        assert resumed.health() == straight.health()

    def test_restore_rejects_different_rule_set(self):
        state = monitor_with(count_rule()).state_dict()
        other = monitor_with(count_rule(name="other", signal="nope"))
        with pytest.raises(ValidationError):
            other.load_state_dict(state)


class TestTelemetryIntegration:
    def test_attach_monitor_sees_live_events(self, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        telemetry = Telemetry(sink=JsonlSink(trace_path))
        clock = {"now": 0.0}
        telemetry.bind_clock(lambda: clock["now"])
        monitor = telemetry.attach_monitor(
            rules=[count_rule()], config=MonitorConfig(window=1.0)
        )
        clock["now"] = 0.5
        telemetry.tracer.point("sig")
        clock["now"] = 1.5
        telemetry.tracer.point("tick")
        telemetry.flush_metrics()
        telemetry.close()
        # close() flushed the monitor: the clean partial window after
        # the breach resolved the incident before the file sealed.
        (incident,) = monitor.incidents.incidents
        assert incident.state == "resolved"
        # Alert announcements reach the JSONL sink, and the monitor's
        # flush-before-close kept the file intact.
        events = load_jsonl(trace_path)
        names_seen = [e["name"] for e in events]
        assert "alert.firing" in names_seen
        assert names_seen[0] == "sig"

    def test_attach_monitor_guards(self):
        from repro.obs.telemetry import NULL_TELEMETRY

        with pytest.raises(ValidationError):
            NULL_TELEMETRY.attach_monitor()
        telemetry = Telemetry()
        telemetry.attach_monitor(rules=[count_rule()])
        with pytest.raises(ValidationError):
            telemetry.attach_monitor(rules=[count_rule()])

    def test_alert_counters_registered(self):
        telemetry = Telemetry()
        clock = {"now": 0.0}
        telemetry.bind_clock(lambda: clock["now"])
        telemetry.attach_monitor(
            rules=[count_rule()], config=MonitorConfig(window=1.0)
        )
        clock["now"] = 0.5
        telemetry.tracer.point("sig")
        clock["now"] = 2.5
        telemetry.tracer.point("tick")
        telemetry.close()
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"]["alert.fired"] == 1
        assert snapshot["counters"]["alert.resolved_total"] == 1
        assert snapshot["gauges"]["monitor.windows"] == 3.0


class TestDeploymentIntegration:
    def test_monitored_runs_byte_identical_health(self, tmp_path):
        paths = []
        for label in ("a", "b"):
            telemetry = Telemetry()
            telemetry.attach_monitor()
            run_continuous(telemetry)
            telemetry.close()
            path = tmp_path / f"{label}.json"
            telemetry.monitor.write_health(path)
            paths.append(path)
        first, second = (p.read_bytes() for p in paths)
        assert first == second

    def test_monitor_does_not_change_results(self):
        plain = run_continuous(None)
        telemetry = Telemetry()
        telemetry.attach_monitor()
        monitored = run_continuous(telemetry)
        telemetry.close()
        assert monitored.error_history == plain.error_history
        assert monitored.total_cost == plain.total_cost
        assert telemetry.monitor.windows_closed > 0

    def test_default_rules_cover_platform_signals(self):
        signals = {rule.signal for rule in default_rules()}
        assert "drift.signal" in signals
        assert "platform.chunk.error" in signals
        assert "serving.latency.cost" in signals
        assert "reliability.recovered" in signals
