"""Integration tests: telemetry emitted by real deployment runs.

The acceptance bar for the observability layer: one traced continuous
run produces events from all five instrumented layers (execution
engine, platform, data manager / cache, sampler, scheduler — plus
drift detectors on the drift-aware deployment), and enabling telemetry
changes nothing about a run's numerical results.
"""

import numpy as np
import pytest

from repro.core.config import ContinuousConfig, ScheduleConfig
from repro.core.deployment import (
    ContinuousDeployment,
    OnlineDeployment,
    PeriodicalDeployment,
)
from repro.core.config import PeriodicalConfig
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.driftdetect import DriftAwareContinuousDeployment, DriftState
from repro.ml.models.svm import LinearSVM
from repro.ml.optim import make_optimizer
from repro.ml.regularizers import L2
from repro.obs import Telemetry

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)

HASH_DIM = 64


def make_generator(seed=3):
    return URLStreamGenerator(
        num_chunks=12,
        rows_per_chunk=20,
        base_features=50,
        new_features_per_chunk=1,
        seed=seed,
    )


def make_parts():
    pipeline = make_url_pipeline(hash_features=HASH_DIM)
    model = LinearSVM(HASH_DIM, regularizer=L2(1e-3))
    optimizer = make_optimizer("adam", learning_rate=0.05)
    return pipeline, model, optimizer


def tight_config():
    """Small materialization budget so evictions and re-materializations
    actually happen within a dozen chunks."""
    return ContinuousConfig(
        sample_size_chunks=4,
        schedule=ScheduleConfig(kind="static", interval_chunks=3),
        sampler="uniform",
        max_materialized_chunks=2,
        online_batch_rows=5,
    )


def run_continuous(telemetry=None, seed=3):
    pipeline, model, optimizer = make_parts()
    deployment = ContinuousDeployment(
        pipeline,
        model,
        optimizer,
        config=tight_config(),
        metric="classification",
        seed=seed,
        telemetry=telemetry,
    )
    generator = make_generator(seed)
    deployment.initial_fit(
        generator.initial_data(100), max_iterations=50, seed=seed
    )
    return deployment.run(generator.stream())


class TestFiveLayerCoverage:
    @pytest.fixture(scope="class")
    def traced(self):
        telemetry = Telemetry()
        result = run_continuous(telemetry)
        return result, telemetry

    def test_result_carries_telemetry(self, traced):
        result, telemetry = traced
        assert result.telemetry is telemetry

    def test_engine_layer_spans(self, traced):
        __, telemetry = traced
        names = {e["name"] for e in telemetry.events if e["kind"] == "span"}
        assert "engine.online_pass" in names
        assert "engine.transform_only" in names
        assert "engine.train_step" in names
        assert "engine.predict" in names

    def test_engine_spans_carry_values_scanned(self, traced):
        __, telemetry = traced
        spans = [
            e
            for e in telemetry.events
            if e["kind"] == "span" and e["name"].startswith("engine.")
        ]
        assert spans
        assert all(e["attrs"].get("values", 0) > 0 for e in spans)

    def test_platform_layer_spans(self, traced):
        __, telemetry = traced
        spans = [e for e in telemetry.events if e["kind"] == "span"]
        observe = [e for e in spans if e["name"] == "platform.observe"]
        proactive = [
            e for e in spans if e["name"] == "platform.proactive_training"
        ]
        assert len(observe) == 12  # one per deployment chunk
        assert len(proactive) == 4  # every 3rd chunk of 12
        assert all("chunk" in e["attrs"] for e in observe)
        assert all(e["attrs"]["rows"] > 0 for e in proactive)

    def test_scheduler_layer_decisions(self, traced):
        __, telemetry = traced
        decisions = [
            e
            for e in telemetry.events
            if e["kind"] == "point" and e["name"] == "scheduler.decision"
        ]
        assert len(decisions) == 12
        fired = sum(bool(e["attrs"]["fired"]) for e in decisions)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"]["scheduler.fired"] == fired == 4
        assert snapshot["counters"]["scheduler.skipped"] == 8

    def test_cache_layer_counters(self, traced):
        __, telemetry = traced
        counters = telemetry.metrics.snapshot()["counters"]
        # Budget of 2 materialized chunks over 12+1 stored chunks:
        # sampling must miss and re-materialize, storage must evict.
        assert counters["cache.hits"] > 0
        assert counters["cache.misses"] > 0
        assert counters["cache.rematerializations"] == counters[
            "cache.misses"
        ]
        assert counters["cache.evictions"] > 0

    def test_cache_layer_gauges_respect_budget(self, traced):
        __, telemetry = traced
        gauges = telemetry.metrics.snapshot()["gauges"]
        assert gauges["cache.materialized_chunks"] <= 2
        assert gauges["cache.materialized_bytes"] > 0

    def test_sampler_layer_coverage_histogram(self, traced):
        __, telemetry = traced
        histogram = telemetry.metrics.histogram("sampler.chunk_age")
        assert histogram.count > 0
        assert histogram.min >= 0
        points = [
            e
            for e in telemetry.events
            if e["kind"] == "point" and e["name"] == "cache.sample"
        ]
        assert len(points) == 4
        assert all(
            e["attrs"]["sampled"]
            == e["attrs"]["hits"] + e["attrs"]["misses"]
            for e in points
        )

    def test_span_timestamps_on_virtual_clock(self, traced):
        result, telemetry = traced
        spans = [e for e in telemetry.events if e["kind"] == "span"]
        assert all(e["dur"] >= 0.0 for e in spans)
        assert max(e["t"] + e["dur"] for e in spans) <= (
            result.total_cost + 1e-9
        )

    def test_summary_renders(self, traced):
        __, telemetry = traced
        summary = telemetry.summary()
        assert summary.events == len(telemetry.events)
        names = {span.name for span in summary.spans}
        assert "platform.proactive_training" in names


class TestBaselineDeploymentTelemetry:
    def test_periodical_full_retrain_span(self):
        pipeline, model, optimizer = make_parts()
        telemetry = Telemetry()
        deployment = PeriodicalDeployment(
            pipeline,
            model,
            optimizer,
            config=PeriodicalConfig(
                retrain_every_chunks=5, max_epoch_iterations=10
            ),
            metric="classification",
            seed=3,
            telemetry=telemetry,
        )
        generator = make_generator()
        deployment.initial_fit(
            generator.initial_data(100), max_iterations=20, seed=3
        )
        deployment.run(generator.stream())
        retrains = [
            e
            for e in telemetry.events
            if e["kind"] == "span" and e["name"] == "platform.full_retrain"
        ]
        assert len(retrains) == 2  # chunks 5 and 10 of 12
        assert all("iterations" in e["attrs"] for e in retrains)

    def test_online_engine_spans(self):
        pipeline, model, optimizer = make_parts()
        telemetry = Telemetry()
        deployment = OnlineDeployment(
            pipeline,
            model,
            optimizer,
            metric="classification",
            telemetry=telemetry,
        )
        generator = make_generator()
        deployment.initial_fit(
            generator.initial_data(100), max_iterations=20, seed=3
        )
        result = deployment.run(generator.stream())
        assert result.telemetry is telemetry
        names = {e["name"] for e in telemetry.events if e["kind"] == "span"}
        assert "engine.train_step" in names


class TestDriftTelemetry:
    def test_drift_events_emitted(self):
        class FiringDetector:
            """Emits WARNING then DRIFT on successive chunks."""

            def __init__(self):
                self.calls = 0

            def update_many(self, errors):
                self.calls += 1
                if self.calls == 2:
                    return DriftState.WARNING
                if self.calls == 3:
                    return DriftState.DRIFT
                return DriftState.STABLE

        pipeline, model, optimizer = make_parts()
        telemetry = Telemetry()
        deployment = DriftAwareContinuousDeployment(
            pipeline,
            model,
            optimizer,
            detector=FiringDetector(),
            config=tight_config(),
            burst_delay_chunks=1,
            metric="classification",
            seed=3,
            telemetry=telemetry,
        )
        generator = make_generator()
        deployment.initial_fit(
            generator.initial_data(100), max_iterations=20, seed=3
        )
        deployment.run(generator.stream())
        points = {
            e["name"]
            for e in telemetry.events
            if e["kind"] == "point"
        }
        assert "drift.warning" in points
        assert "drift.signal" in points
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["drift.signals"] == 1
        assert counters["drift.warnings"] == 1


class TestTelemetryDoesNotPerturbRuns:
    def test_identical_histories_with_and_without_telemetry(self):
        baseline = run_continuous(telemetry=None)
        traced = run_continuous(telemetry=Telemetry())
        assert baseline.telemetry is None
        np.testing.assert_array_equal(
            baseline.error_history, traced.error_history
        )
        np.testing.assert_array_equal(
            baseline.cost_history, traced.cost_history
        )
        assert baseline.counters == traced.counters
