"""Unit tests for tumbling-window aggregation (repro.obs.windows)."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs.windows import (
    STATS,
    SeriesWindows,
    SlidingView,
    WindowAggregate,
)


class TestWindowAggregate:
    def test_empty_window_stats_are_none(self):
        agg = WindowAggregate()
        stats = agg.to_dict()
        assert stats["count"] == 0
        assert stats["sum"] == 0.0
        assert stats["mean"] is None
        assert stats["min"] is None
        assert stats["max"] is None
        assert stats["last"] is None

    def test_single_sample(self):
        agg = WindowAggregate()
        agg.add(3.5)
        assert agg.count == 1
        assert agg.mean == 3.5
        assert agg.min == 3.5
        assert agg.max == 3.5
        assert agg.last == 3.5

    def test_tracks_running_stats(self):
        agg = WindowAggregate()
        for value in (2.0, -1.0, 5.0):
            agg.add(value)
        assert agg.count == 3
        assert agg.total == 6.0
        assert agg.min == -1.0
        assert agg.max == 5.0
        assert agg.last == 5.0

    def test_quantile_tracking_optional(self):
        plain = WindowAggregate()
        plain.add(1.0)
        assert plain.hist is None
        assert "p95" not in plain.to_dict()
        tracked = WindowAggregate(track_quantiles=True)
        tracked.add(1.0)
        assert tracked.to_dict()["p95"] == pytest.approx(1.0, rel=0.1)

    def test_state_round_trip_is_json_safe(self):
        agg = WindowAggregate(track_quantiles=True)
        for value in (0.5, 1.5, 2.5):
            agg.add(value)
        state = json.loads(json.dumps(agg.state_dict()))
        clone = WindowAggregate(track_quantiles=True)
        clone.load_state_dict(state)
        assert clone.state_dict() == agg.state_dict()
        assert clone.to_dict() == agg.to_dict()

    def test_empty_state_round_trip(self):
        # inf/-inf sentinels must serialize as None, not break JSON.
        state = json.loads(
            json.dumps(WindowAggregate().state_dict(), allow_nan=False)
        )
        clone = WindowAggregate()
        clone.load_state_dict(state)
        assert clone.count == 0
        clone.add(4.0)
        assert clone.min == 4.0 and clone.max == 4.0


class TestSlidingView:
    def _view(self, *windows):
        return SlidingView(list(windows), width=1.0)

    def test_empty_view_counts_zero_and_values_none(self):
        view = self._view(WindowAggregate(), WindowAggregate())
        assert view.stat("count") == 0.0
        assert view.stat("sum") == 0.0
        assert view.stat("rate") == 0.0
        for stat in ("mean", "min", "max", "last"):
            assert view.stat(stat) is None

    def test_stats_merge_across_windows(self):
        first, second = WindowAggregate(), WindowAggregate()
        first.add(1.0)
        first.add(3.0)
        second.add(5.0)
        view = self._view(first, second)
        assert view.stat("count") == 3.0
        assert view.stat("sum") == 9.0
        assert view.stat("mean") == pytest.approx(3.0)
        assert view.stat("min") == 1.0
        assert view.stat("max") == 5.0
        assert view.stat("last") == 5.0
        assert view.stat("rate") == pytest.approx(1.5)

    def test_last_skips_trailing_empty_window(self):
        first, empty = WindowAggregate(), WindowAggregate()
        first.add(2.0)
        assert self._view(first, empty).stat("last") == 2.0

    def test_quantiles_merge_histograms(self):
        first = WindowAggregate(track_quantiles=True)
        second = WindowAggregate(track_quantiles=True)
        for value in range(1, 51):
            first.add(float(value))
        for value in range(51, 101):
            second.add(float(value))
        view = self._view(first, second)
        assert view.stat("p50") == pytest.approx(50.0, rel=0.15)
        assert view.stat("p99") == pytest.approx(99.0, rel=0.15)

    def test_unknown_stat_rejected(self):
        with pytest.raises(ValidationError):
            self._view(WindowAggregate()).stat("median")

    def test_stat_names_cover_contract(self):
        assert set(STATS) == {
            "count", "sum", "mean", "min", "max", "last", "rate",
            "p50", "p95", "p99",
        }


class TestSeriesWindows:
    def test_close_rotates_current_window(self):
        series = SeriesWindows("sig", width=1.0, history=2)
        series.observe(0.5, 1.0)
        sealed = series.close_window()
        assert sealed.count == 1
        assert series.current.count == 0
        assert list(series.closed) == [sealed]

    def test_history_bound_drops_oldest(self):
        series = SeriesWindows("sig", width=1.0, history=2)
        for index in range(4):
            series.observe(float(index), float(index))
            series.close_window()
        assert len(series.closed) == 2
        assert series.view(2).stat("max") == 3.0

    def test_last_sample_t_tracks_newest(self):
        series = SeriesWindows("sig", width=1.0)
        assert series.last_sample_t is None
        series.observe(1.5, 1.0)
        series.observe(0.5, 1.0)  # out-of-order sample cannot rewind
        assert series.last_sample_t == 1.5

    def test_view_width_validated(self):
        series = SeriesWindows("sig", width=1.0)
        with pytest.raises(ValidationError):
            series.view(0)

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            SeriesWindows("sig", width=0.0)
        with pytest.raises(ValidationError):
            SeriesWindows("sig", width=1.0, history=0)

    def test_state_round_trip_through_json(self):
        series = SeriesWindows(
            "sig", width=0.5, history=3, track_quantiles=True
        )
        for index in range(5):
            series.observe(index * 0.5, float(index))
            if index % 2:
                series.close_window()
        state = json.loads(
            json.dumps(series.state_dict(), allow_nan=False)
        )
        clone = SeriesWindows(
            "sig", width=0.5, history=3, track_quantiles=True
        )
        clone.load_state_dict(state)
        assert clone.state_dict() == series.state_dict()
        assert clone.view(3).stat("mean") == series.view(3).stat("mean")
