"""Unit tests for the tracer, spans, and event sinks."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import (
    JsonlSink,
    MultiSink,
    RingBufferSink,
    load_jsonl,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import (
    EVENT_FIELDS,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
)


class FakeClock:
    """A settable virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def ring():
    return RingBufferSink(capacity=16)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(ring, clock):
    return Tracer(ring, clock=clock)


class TestTracer:
    def test_span_measures_virtual_clock(self, tracer, ring, clock):
        with tracer.span("work", chunk=3):
            clock.now = 2.5
        (event,) = ring.events
        assert event["kind"] == "span"
        assert event["name"] == "work"
        assert event["t"] == 0.0
        assert event["dur"] == pytest.approx(2.5)
        assert event["wall_s"] >= 0.0
        assert event["attrs"] == {"chunk": 3}

    def test_span_set_attaches_attrs(self, tracer, ring):
        with tracer.span("work") as span:
            span.set(rows=10)
        assert ring.events[0]["attrs"] == {"rows": 10}

    def test_point_event(self, tracer, ring, clock):
        clock.now = 1.0
        tracer.point("decision", fired=True)
        (event,) = ring.events
        assert event["kind"] == "point"
        assert event["t"] == 1.0
        assert event["dur"] == 0.0

    def test_events_follow_schema(self, tracer, ring, clock):
        with tracer.span("a"):
            pass
        tracer.point("b")
        tracer.emit_metrics({"counters": {}})
        for event in ring.events:
            assert tuple(event.keys()) == EVENT_FIELDS

    def test_seq_monotonic(self, tracer, ring):
        for _ in range(3):
            tracer.point("tick")
        assert [e["seq"] for e in ring.events] == [1, 2, 3]

    def test_span_durations_feed_metrics(self, ring, clock):
        metrics = MetricsRegistry()
        tracer = Tracer(ring, clock=clock, metrics=metrics)
        with tracer.span("work"):
            clock.now = 4.0
        assert metrics.histogram("span.work").count == 1

    def test_nested_spans_record_ancestor_stack(self, tracer, ring):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        by_name = {}
        for event in ring.events:
            by_name.setdefault(event["name"], []).append(event)
        assert all(
            e["stack"] == ["outer"] for e in by_name["inner"]
        )
        assert by_name["outer"][0]["stack"] == []

    def test_stack_unwinds_after_exit(self, tracer, ring):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            tracer.point("tick")
        events = {e["name"]: e for e in ring.events}
        # "first" is closed: neither the sibling span nor the point
        # inside "second" may inherit it.
        assert events["second"]["stack"] == []
        assert events["tick"]["stack"] == ["second"]

    def test_stack_unwinds_on_exception(self, tracer, ring):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError("boom")
        with tracer.span("after"):
            pass
        events = {e["name"]: e for e in ring.events}
        assert events["outer"]["stack"] == []
        assert events["after"]["stack"] == []


class TestNullTracer:
    def test_shared_noop_span(self):
        tracer = NullTracer()
        span = tracer.span("anything", chunk=1)
        assert span is NULL_SPAN
        with span as entered:
            entered.set(rows=1)

    def test_disabled_flags(self):
        assert NULL_TRACER.enabled is False
        assert Tracer(RingBufferSink()).enabled is True

    def test_point_and_metrics_are_noops(self):
        NULL_TRACER.point("x", a=1)
        NULL_TRACER.emit_metrics({})
        NULL_TRACER.bind_clock(lambda: 1.0)


class TestRingBufferSink:
    def test_bounded(self):
        ring = RingBufferSink(capacity=2)
        for index in range(5):
            ring.emit({"seq": index})
        assert len(ring) == 2
        assert ring.emitted == 5
        assert ring.dropped == 3
        assert [e["seq"] for e in ring.events] == [3, 4]

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"seq": 1, "name": "a"})
        sink.emit({"seq": 2, "name": "b"})
        sink.close()
        events = load_jsonl(path)
        assert [e["seq"] for e in events] == [1, 2]

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        JsonlSink(path).close()
        assert not path.exists()

    def test_load_limit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for index in range(5):
            sink.emit({"seq": index})
        sink.close()
        assert [e["seq"] for e in load_jsonl(path, limit=2)] == [3, 4]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_jsonl(tmp_path / "absent.jsonl")

    def test_corrupt_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 1}\nnot json\n')
        with pytest.raises(ValidationError):
            load_jsonl(path)


class TestMultiSink:
    def test_fans_out(self):
        first, second = RingBufferSink(), RingBufferSink()
        multi = MultiSink([first, second])
        multi.emit({"seq": 1})
        assert len(first) == 1 and len(second) == 1

    def test_needs_sinks(self):
        with pytest.raises(ValidationError):
            MultiSink([])


class TestTelemetry:
    def test_events_land_in_ring_and_extra_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sink=JsonlSink(path))
        telemetry.tracer.point("tick")
        telemetry.close()
        assert len(telemetry.events) == 1
        assert len(load_jsonl(path)) == 1

    def test_flush_metrics_appends_snapshot(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("c").inc()
        telemetry.flush_metrics()
        (event,) = telemetry.events
        assert event["kind"] == "metrics"
        assert event["attrs"]["counters"] == {"c": 1.0}

    def test_null_telemetry_disabled_and_silent(self):
        assert NULL_TELEMETRY.enabled is False
        NULL_TELEMETRY.tracer.point("ignored")
        NULL_TELEMETRY.flush_metrics()
        assert NULL_TELEMETRY.events == []

    def test_events_are_json_serializable(self):
        telemetry = Telemetry()
        with telemetry.tracer.span("work", chunk=1):
            pass
        telemetry.flush_metrics()
        for event in telemetry.events:
            json.dumps(event)
