"""Unit tests for the cost-attribution profile tree."""

import json

import pytest

from repro.obs.profile import (
    PROFILE_SCHEMA,
    ROOT_NAME,
    build_profile,
    format_profile,
    profile_digest,
    profile_to_dict,
    profile_trace,
    subsystem_totals,
    to_collapsed,
)
from repro.obs.sink import JsonlSink
from repro.obs.telemetry import Telemetry


def span_event(name, dur, stack=(), wall_s=0.0, seq=1):
    return {
        "seq": seq,
        "kind": "span",
        "name": name,
        "t": 0.0,
        "dur": dur,
        "wall_s": wall_s,
        "stack": list(stack),
        "attrs": {},
    }


def nested_events():
    """Two observe calls, each wrapping one online pass."""
    return [
        span_event(
            "engine.online_pass", 2.0, stack=("platform.observe",)
        ),
        span_event("platform.observe", 3.0),
        span_event(
            "engine.online_pass", 2.0, stack=("platform.observe",)
        ),
        span_event("platform.observe", 3.0),
        {"seq": 9, "kind": "point", "name": "chunk.processed",
         "t": 0.0, "dur": 0.0, "wall_s": 0.0, "attrs": {}},
    ]


class TestBuildProfile:
    def test_empty_stream(self):
        root = build_profile([])
        assert root.name == ROOT_NAME
        assert root.count == 0
        assert root.cum_cost == 0.0
        assert root.children == {}

    def test_folds_along_stack(self):
        root = build_profile(nested_events())
        observe = root.children["platform.observe"]
        online = observe.children["engine.online_pass"]
        assert observe.count == 2
        assert observe.cum_cost == 6.0
        assert online.count == 2
        assert online.cum_cost == 4.0

    def test_self_cost_subtracts_children(self):
        root = build_profile(nested_events())
        observe = root.children["platform.observe"]
        assert observe.self_cost == pytest.approx(2.0)
        assert root.cum_cost == pytest.approx(6.0)
        assert root.count == 2

    def test_points_do_not_contribute(self):
        root = build_profile(nested_events())
        assert "chunk.processed" not in root.children

    def test_stackless_events_fold_flat(self):
        events = [span_event("engine.train_step", 5.0)]
        del events[0]["stack"]
        root = build_profile(events)
        assert root.children["engine.train_step"].cum_cost == 5.0

    def test_walk_orders_children_by_descending_cost(self):
        events = [
            span_event("a.small", 1.0),
            span_event("b.big", 9.0),
        ]
        root = build_profile(events)
        names = [node.name for _, node in root.walk()]
        assert names == [ROOT_NAME, "b.big", "a.small"]


class TestSubsystemTotals:
    def test_rollup_uses_self_cost(self):
        totals = subsystem_totals(build_profile(nested_events()))
        assert totals["platform"]["self_cost"] == pytest.approx(2.0)
        assert totals["engine"]["self_cost"] == pytest.approx(4.0)
        # Self costs partition the run: they sum to the root total.
        assert sum(
            entry["self_cost"] for entry in totals.values()
        ) == pytest.approx(6.0)


class TestDigest:
    def test_identical_trees_collide(self):
        first = build_profile(nested_events())
        second = build_profile(nested_events())
        assert profile_digest(first) == profile_digest(second)

    def test_cost_change_changes_digest(self):
        events = nested_events()
        events[1]["dur"] = 30.0
        assert profile_digest(
            build_profile(events)
        ) != profile_digest(build_profile(nested_events()))

    def test_wall_time_is_excluded(self):
        events = nested_events()
        for event in events:
            event["wall_s"] = 123.0
        assert profile_digest(
            build_profile(events)
        ) == profile_digest(build_profile(nested_events()))


class TestExports:
    def test_profile_to_dict_schema_and_shape(self):
        exported = profile_to_dict(build_profile(nested_events()))
        assert exported["schema"] == PROFILE_SCHEMA
        assert exported["digest"] == profile_digest(
            build_profile(nested_events())
        )
        tree = exported["tree"]
        assert tree["name"] == ROOT_NAME
        (observe,) = tree["children"]
        assert observe["name"] == "platform.observe"
        assert observe["self_cost"] == pytest.approx(2.0)
        json.dumps(exported)  # must be JSON-serializable as-is

    def test_collapsed_stack_lines(self):
        text = to_collapsed(build_profile(nested_events()))
        lines = dict(
            line.rsplit(" ", 1) for line in text.splitlines()
        )
        assert lines["run;platform.observe"] == "2000"
        assert (
            lines["run;platform.observe;engine.online_pass"] == "4000"
        )

    def test_format_profile_renders_digest_and_paths(self):
        root = build_profile(nested_events())
        text = format_profile(root)
        assert "platform.observe" in text
        assert "engine.online_pass" in text
        assert f"profile digest: {profile_digest(root)}" in text

    def test_format_profile_empty_tree_no_division(self):
        text = format_profile(build_profile([]))
        assert "profile digest:" in text

    def test_min_fraction_prunes_small_paths(self):
        events = [
            span_event("a.big", 99.0),
            span_event("b.tiny", 1.0),
        ]
        text = format_profile(
            build_profile(events), min_fraction=0.05
        )
        assert "a.big" in text
        assert "b.tiny" not in text


class TestProfileTrace:
    def test_round_trip_through_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sink=JsonlSink(path))
        with telemetry.tracer.span("platform.observe"):
            with telemetry.tracer.span("engine.online_pass"):
                pass
        telemetry.close()
        root = profile_trace(path)
        observe = root.children["platform.observe"]
        assert "engine.online_pass" in observe.children
