"""Serving endpoint: solo, shadow, and canary prediction paths."""

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.obs import Telemetry
from repro.serving import ServingEndpoint

from tests.serving.conftest import ROWS

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def endpoint_for(registry, **kwargs):
    kwargs.setdefault("seed", 5)
    return ServingEndpoint(registry, **kwargs)


class TestSoloServing:
    def test_serves_live_version(self, live_registry, url_world):
        registry, first, __ = live_registry
        endpoint = endpoint_for(registry)
        assert endpoint.primary_version == first.version
        served = endpoint.predict(url_world.generator.chunk(0))
        assert served.mode == "solo"
        assert served.primary_version == first.version
        assert len(served.predictions) == ROWS
        assert len(served.labels) == ROWS
        assert np.array_equal(served.predictions, served.primary_predictions)

    def test_no_live_version_fails(self, url_world):
        registry = url_world.registry_factory()
        with pytest.raises(ServingError, match="live version"):
            endpoint_for(registry).predict(url_world.generator.chunk(0))

    def test_reload_live_follows_promotions(
        self, live_registry, url_world
    ):
        registry, first, __ = live_registry
        endpoint = endpoint_for(registry)
        second = registry.register(
            *url_world.make_parts(train_chunks=range(4))
        )
        registry.promote(second.version)
        assert endpoint.primary_version == first.version  # not yet
        endpoint.reload_live()
        assert endpoint.primary_version == second.version


class TestShadowServing:
    def test_primary_predictions_byte_identical(
        self, live_registry, url_world
    ):
        """Acceptance: attaching a shadow must not change a single
        byte of the caller-visible predictions."""
        registry, first, __ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(4))
        )

        solo = endpoint_for(registry)
        shadowed = endpoint_for(registry)
        shadowed.attach_candidate(candidate.version, mode="shadow")

        for index in range(4):
            chunk = url_world.generator.chunk(index)
            baseline = solo.predict(chunk, chunk_index=index)
            served = shadowed.predict(chunk, chunk_index=index)
            assert (
                served.predictions.tobytes()
                == baseline.predictions.tobytes()
            )
            assert served.labels.tobytes() == baseline.labels.tobytes()

    def test_shadow_is_recorded_but_not_returned(
        self, live_registry, url_world
    ):
        registry, __, __ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(4))
        )
        endpoint = endpoint_for(registry)
        endpoint.attach_candidate(candidate.version, mode="shadow")
        served = endpoint.predict(url_world.generator.chunk(1))
        assert served.mode == "shadow"
        assert served.candidate_version == candidate.version
        # The mirror scored the full batch...
        assert len(served.candidate_predictions) == ROWS
        # ...but the returned predictions are the primary's.
        assert np.array_equal(
            served.predictions, served.primary_predictions
        )


class TestCanaryServing:
    def test_split_routes_roughly_the_fraction(
        self, live_registry, url_world
    ):
        registry, __, __ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(4))
        )
        endpoint = endpoint_for(registry)
        endpoint.attach_candidate(
            candidate.version, mode="canary", fraction=0.3
        )
        total = candidate_rows = 0
        for index in range(10):
            served = endpoint.predict(
                url_world.generator.chunk(index), chunk_index=index
            )
            assert served.mode == "canary"
            assert len(served.predictions) == ROWS
            assert len(served.primary_predictions) + len(
                served.candidate_predictions
            ) == ROWS
            total += ROWS
            candidate_rows += len(served.candidate_predictions)
        assert candidate_rows / total == pytest.approx(0.3, abs=0.15)

    def test_routing_is_deterministic_per_chunk(
        self, live_registry, url_world
    ):
        registry, __, __ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(4))
        )
        a = endpoint_for(registry, seed=5)
        b = endpoint_for(registry, seed=5)
        for endpoint in (a, b):
            endpoint.attach_candidate(
                candidate.version, mode="canary", fraction=0.5
            )
        chunk = url_world.generator.chunk(2)
        served_a = a.predict(chunk, chunk_index=2)
        served_b = b.predict(chunk, chunk_index=2)
        assert np.array_equal(served_a.predictions, served_b.predictions)
        assert served_a.canary_share == served_b.canary_share

    def test_fraction_one_routes_everything(
        self, live_registry, url_world
    ):
        registry, __, __ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(4))
        )
        endpoint = endpoint_for(registry)
        endpoint.attach_candidate(
            candidate.version, mode="canary", fraction=1.0
        )
        served = endpoint.predict(
            url_world.generator.chunk(0), chunk_index=0
        )
        assert served.canary_share == 1.0
        assert len(served.primary_predictions) == 0
        assert len(served.candidate_predictions) == ROWS


class TestCandidateManagement:
    def test_attach_validation(self, live_registry, url_world):
        registry, first, __ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(3))
        )
        endpoint = endpoint_for(registry)
        with pytest.raises(ServingError, match="mode"):
            endpoint.attach_candidate(candidate.version, mode="blue")
        with pytest.raises(ServingError, match="already the live"):
            endpoint.attach_candidate(first.version)
        with pytest.raises(ServingError, match="fraction"):
            endpoint.attach_candidate(
                candidate.version, mode="canary", fraction=0.0
            )
        endpoint.attach_candidate(candidate.version, mode="shadow")
        with pytest.raises(ServingError, match="already"):
            endpoint.attach_candidate(candidate.version)

    def test_detach_restores_solo(self, live_registry, url_world):
        registry, __, __ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(3))
        )
        endpoint = endpoint_for(registry)
        endpoint.attach_candidate(candidate.version, mode="shadow")
        assert endpoint.detach_candidate() == candidate.version
        assert endpoint.mode == "solo"
        served = endpoint.predict(url_world.generator.chunk(0))
        assert served.mode == "solo"

    def test_promote_candidate_swaps_in_memory(
        self, live_registry, url_world
    ):
        registry, __, __ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(3))
        )
        endpoint = endpoint_for(registry)
        endpoint.attach_candidate(candidate.version, mode="shadow")
        registry.promote(candidate.version)
        assert endpoint.promote_candidate() == candidate.version
        assert endpoint.primary_version == candidate.version
        assert endpoint.mode == "solo"

    def test_promote_without_candidate_fails(self, live_registry):
        registry, __, __ = live_registry
        with pytest.raises(ServingError, match="no candidate"):
            endpoint_for(registry).promote_candidate()


class TestTelemetry:
    def test_serving_counters(self, live_registry, url_world):
        registry, __, __ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(3))
        )
        telemetry = Telemetry()
        endpoint = endpoint_for(registry, telemetry=telemetry)
        endpoint.predict(url_world.generator.chunk(0), chunk_index=0)
        endpoint.attach_candidate(candidate.version, mode="shadow")
        endpoint.predict(url_world.generator.chunk(1), chunk_index=1)
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["serving.batches"] == 2
        assert counters["serving.rows"] == 2 * ROWS
        assert counters["serving.shadow_rows"] == ROWS
