"""Deterministic hash routing for canary splits."""

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving.routing import (
    derive_routing_seed,
    route_mask,
    row_keys,
    splitmix64,
)


class TestSplitMix64:
    def test_deterministic(self):
        keys = np.arange(1000, dtype=np.uint64)
        assert np.array_equal(
            splitmix64(keys, salt=9), splitmix64(keys, salt=9)
        )

    def test_salt_changes_hashes(self):
        keys = np.arange(1000, dtype=np.uint64)
        assert not np.array_equal(
            splitmix64(keys, salt=1), splitmix64(keys, salt=2)
        )

    def test_output_dtype_and_spread(self):
        hashed = splitmix64(np.arange(4096, dtype=np.uint64))
        assert hashed.dtype == np.uint64
        # A strong mixer fills the 64-bit range roughly uniformly.
        as_unit = hashed.astype(np.float64) / 2.0**64
        assert 0.4 < float(as_unit.mean()) < 0.6


class TestRouteMask:
    def test_share_approximates_fraction(self):
        keys = row_keys(0, 200_000)
        mask = route_mask(keys, 0.3, salt=derive_routing_seed(7))
        share = mask.mean()
        assert share == pytest.approx(0.3, abs=0.01)

    def test_stable_across_batch_boundaries(self):
        """Routing is a pure function of the key: splitting the same
        keys into different batch sizes cannot change any row's side."""
        keys = row_keys(3, 1000)
        whole = route_mask(keys, 0.25, salt=42)
        pieces = np.concatenate([
            route_mask(keys[:333], 0.25, salt=42),
            route_mask(keys[333:700], 0.25, salt=42),
            route_mask(keys[700:], 0.25, salt=42),
        ])
        assert np.array_equal(whole, pieces)

    def test_extreme_fractions(self):
        keys = row_keys(0, 500)
        assert not route_mask(keys, 0.0).any()
        assert route_mask(keys, 1.0).all()

    def test_fraction_out_of_range_rejected(self):
        keys = row_keys(0, 10)
        with pytest.raises(ServingError, match="fraction"):
            route_mask(keys, -0.1)
        with pytest.raises(ServingError, match="fraction"):
            route_mask(keys, 1.5)

    def test_same_seed_same_split(self):
        keys = row_keys(5, 300)
        a = route_mask(keys, 0.5, salt=derive_routing_seed(123))
        b = route_mask(keys, 0.5, salt=derive_routing_seed(123))
        assert np.array_equal(a, b)

    def test_different_seeds_independent_splits(self):
        keys = row_keys(5, 10_000)
        a = route_mask(keys, 0.5, salt=derive_routing_seed(1))
        b = route_mask(keys, 0.5, salt=derive_routing_seed(2))
        agreement = float(np.mean(a == b))
        assert 0.4 < agreement < 0.6  # uncorrelated, not identical


class TestRowKeys:
    def test_unique_across_chunks(self):
        a = row_keys(0, 1000)
        b = row_keys(1, 1000)
        assert len(np.intersect1d(a, b)) == 0

    def test_negative_chunk_rejected(self):
        with pytest.raises(ServingError, match="chunk_index"):
            row_keys(-1, 10)
