"""Rollout controller end-to-end: stage → promote/reject → rollback.

The acceptance scenarios from the serving-layer design:

* a clearly better candidate staged as a canary is auto-promoted;
* a forced quality regression on the canary triggers an automatic
  revert, the registry's live version equals the pre-promotion
  version, and the transition appears in the obs trace.

Training setups mirror ``examples/serving_rollout.py``: a bootstrap
model sees 2 chunks, a good candidate 14, and a broken candidate is a
sign-flipped model (a diverged training run) — separations far larger
than the stream's noise, so every verdict is deterministic.
"""

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.obs import Telemetry
from repro.serving import (
    GateConfig,
    RolloutController,
    ServingEndpoint,
)

from tests.serving.conftest import SEED

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)

GATE = GateConfig(
    min_samples=60,
    promote_after=2,
    promote_margin=0.0,
    rollback_after=1,
    rollback_margin=0.2,
    drift_window=40,
    drift_ratio=1.0,
)
FRACTION = 0.4


def build(url_world, telemetry=None):
    """Registry with a lightly-trained live version + controller."""
    registry = url_world.registry_factory(telemetry=telemetry)
    initial = registry.register(
        *url_world.make_parts(train_chunks=range(2))
    )
    registry.promote(initial.version, reason="initial")
    endpoint = ServingEndpoint(registry, seed=SEED, telemetry=telemetry)
    controller = RolloutController(
        registry,
        endpoint,
        metric="classification",
        config=GATE,
        telemetry=telemetry,
    )
    return registry, endpoint, controller, initial


def good_candidate(url_world, registry):
    """A candidate trained on 7x the live version's data."""
    return registry.register(
        *url_world.make_parts(train_chunks=range(14)),
        chunks_observed=14,
    )


def broken_candidate(url_world, registry):
    """A diverged training run: decision direction inverted."""
    pipeline, model, optimizer = url_world.make_parts(
        train_chunks=range(3)
    )
    model.weights *= -1.0
    return registry.register(pipeline, model, optimizer)


def serve(url_world, endpoint, controller, chunks):
    """Serve chunk indices; return the non-continue actions."""
    actions = []
    for index in chunks:
        served = endpoint.predict(
            url_world.generator.chunk(index), chunk_index=index
        )
        action = controller.observe(served)
        if action != "continue":
            actions.append(action)
    return actions


class TestPromotion:
    def test_better_candidate_is_promoted(self, url_world):
        registry, endpoint, controller, initial = build(url_world)
        good = good_candidate(url_world, registry)
        controller.stage(good.version, mode="canary", fraction=FRACTION)
        assert controller.state == "canary"
        actions = serve(url_world, endpoint, controller, range(14, 30))
        assert actions == ["promote"]
        assert registry.live_version == good.version
        assert endpoint.primary_version == good.version
        assert controller.state == "monitoring"
        assert registry.get(initial.version).status == "retired"


class TestRejection:
    def test_regressing_canary_is_rejected_live_unchanged(
        self, url_world
    ):
        """Pre-promotion regression: the candidate is rejected and the
        live version never changes."""
        telemetry = Telemetry()
        registry, endpoint, controller, initial = build(
            url_world, telemetry=telemetry
        )
        bad = broken_candidate(url_world, registry)
        controller.stage(bad.version, mode="canary", fraction=FRACTION)
        actions = serve(url_world, endpoint, controller, range(14, 30))
        assert "reject" in actions
        assert "promote" not in actions
        assert registry.live_version == initial.version
        assert endpoint.primary_version == initial.version
        assert endpoint.mode == "solo"
        assert registry.get(bad.version).status == "rejected"
        assert controller.state == "idle"
        names = [event["name"] for event in telemetry.events]
        assert "rollout.reject" in names
        assert "registry.reject" in names


class TestRollback:
    def test_forced_regression_triggers_automatic_rollback(
        self, url_world
    ):
        """Acceptance: promote a candidate, then force a quality
        regression — the controller must roll the registry back to
        the pre-promotion live version and the transition must land
        in the obs trace."""
        telemetry = Telemetry()
        registry, endpoint, controller, initial = build(
            url_world, telemetry=telemetry
        )
        pre_promotion_live = registry.live_version

        good = good_candidate(url_world, registry)
        controller.stage(good.version, mode="canary", fraction=FRACTION)
        actions = serve(url_world, endpoint, controller, range(14, 30))
        assert actions == ["promote"]
        assert registry.live_version == good.version

        # Force the regression: the live model degenerates in place.
        endpoint.primary_bundle.model.weights *= -1.0
        actions = serve(url_world, endpoint, controller, range(30, 50))
        assert "rollback" in actions

        # The registry reverted to the pre-promotion version...
        assert registry.live_version == pre_promotion_live
        assert endpoint.primary_version == pre_promotion_live
        assert registry.get(good.version).status == "rolled_back"
        assert controller.state == "idle"
        # ...and the transition is in the obs trace, with counters.
        names = [event["name"] for event in telemetry.events]
        assert "rollout.promote" in names
        assert "rollout.rollback" in names
        assert "registry.rollback" in names
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["rollout.rollback"] == 1
        # The restored model serves from the pristine on-disk bundle.
        served = endpoint.predict(
            url_world.generator.chunk(50), chunk_index=50
        )
        restored = registry.load(pre_promotion_live)
        features = restored.pipeline.transform_to_features(
            url_world.generator.chunk(50)
        )
        assert np.array_equal(
            served.predictions, restored.model.predict(features.matrix)
        )


class TestStateMachine:
    def test_stage_requires_candidate_status(self, url_world):
        registry, endpoint, controller, initial = build(url_world)
        with pytest.raises(ServingError, match="candidates"):
            controller.stage(initial.version)

    def test_no_concurrent_rollouts(self, url_world):
        registry, endpoint, controller, __ = build(url_world)
        first = registry.register(*url_world.make_parts())
        second = registry.register(*url_world.make_parts())
        controller.stage(first.version, mode="shadow")
        with pytest.raises(ServingError, match="in progress"):
            controller.stage(second.version, mode="shadow")

    def test_staging_from_monitoring_drops_the_watch(self, url_world):
        registry, endpoint, controller, __ = build(url_world)
        good = good_candidate(url_world, registry)
        controller.stage(good.version, mode="canary", fraction=FRACTION)
        serve(url_world, endpoint, controller, range(14, 30))
        assert controller.state == "monitoring"
        follow_up = registry.register(*url_world.make_parts())
        controller.stage(follow_up.version, mode="shadow")
        assert controller.state == "shadow"
        assert controller.monitor is None

    def test_mismatched_registry_rejected(self, url_world):
        registry = url_world.registry_factory("one")
        other = url_world.registry_factory("two")
        info = registry.register(*url_world.make_parts())
        registry.promote(info.version)
        endpoint = ServingEndpoint(registry, seed=5)
        with pytest.raises(ServingError, match="different registry"):
            RolloutController(other, endpoint)

    def test_observe_while_idle_is_continue(self, url_world):
        registry, endpoint, controller, __ = build(url_world)
        served = endpoint.predict(
            url_world.generator.chunk(0), chunk_index=0
        )
        assert controller.observe(served) == "continue"
        assert controller.log == []

    def test_log_records_every_transition(self, url_world):
        registry, endpoint, controller, __ = build(url_world)
        good = good_candidate(url_world, registry)
        controller.stage(good.version, mode="canary", fraction=FRACTION)
        serve(url_world, endpoint, controller, range(14, 30))
        assert [entry["action"] for entry in controller.log] == [
            "stage", "promote",
        ]
        assert controller.log[0]["version"] == good.version
