"""Quality-gate and baseline-monitor decision logic."""

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving.gate import (
    BaselineMonitor,
    GateConfig,
    GateDecision,
    QualityGate,
    errors_from_predictions,
)


def config(**overrides):
    defaults = dict(
        min_samples=10,
        promote_after=2,
        promote_margin=0.0,
        rollback_after=2,
        rollback_margin=0.1,
        drift_window=50,
        drift_ratio=5.0,  # effectively off unless a test lowers it
    )
    defaults.update(overrides)
    return GateConfig(**defaults)


class TestGateConfig:
    def test_validation(self):
        with pytest.raises(ServingError, match="min_samples"):
            GateConfig(min_samples=0)
        with pytest.raises(ServingError, match="promote_after"):
            GateConfig(promote_after=0)
        with pytest.raises(ServingError, match="margin"):
            GateConfig(promote_margin=-0.1)


class TestErrorsFromPredictions:
    def test_rate_indicators(self):
        errors = errors_from_predictions(
            "rate", np.array([1.0, -1.0, 1.0]), np.array([1.0, 1.0, -1.0])
        )
        assert errors.tolist() == [0.0, 1.0, 1.0]

    def test_rmse_squared_residuals(self):
        errors = errors_from_predictions(
            "rmse", np.array([2.0, 0.0]), np.array([0.0, 3.0])
        )
        assert errors.tolist() == [4.0, 9.0]


class TestQualityGate:
    def test_holds_verdict_until_min_samples(self):
        gate = QualityGate("rate", config(min_samples=20))
        # Strong win, but only 10 rows per side: no verdict yet.
        decision = gate.observe(np.zeros(10), np.ones(10))
        assert decision is GateDecision.CONTINUE
        assert gate.samples == (10, 10)

    def test_promotes_on_sustained_win(self):
        gate = QualityGate("rate", config(promote_after=3))
        verdicts = [
            gate.observe(np.zeros(10), np.ones(10)) for __ in range(3)
        ]
        assert verdicts == [
            GateDecision.CONTINUE,
            GateDecision.CONTINUE,
            GateDecision.PROMOTE,
        ]
        assert gate.candidate_value() == 0.0
        assert gate.incumbent_value() == 1.0

    def test_win_streak_resets_on_tie_within_margin(self):
        gate = QualityGate(
            "rate", config(promote_after=2, promote_margin=0.05)
        )
        assert (
            gate.observe(np.zeros(10), np.ones(10))
            is GateDecision.CONTINUE
        )
        # A batch that pulls the candidate level with the incumbent
        # breaks the streak: no promotion on the next win.
        gate.observe(np.ones(30), np.zeros(10))
        assert (
            gate.observe(np.zeros(10), np.ones(10))
            is GateDecision.CONTINUE
        )

    def test_rolls_back_after_strikes(self):
        gate = QualityGate("rate", config(rollback_after=2))
        first = gate.observe(np.ones(10), np.zeros(10))
        assert first is GateDecision.CONTINUE  # strike 1
        assert (
            gate.observe(np.ones(10), np.zeros(10))
            is GateDecision.ROLLBACK
        )

    def test_drift_forces_immediate_rollback(self):
        gate = QualityGate(
            "rate",
            config(
                min_samples=10,
                rollback_after=99,  # strikes alone would never fire
                drift_window=10,
                drift_ratio=0.5,
            ),
        )
        # Reference window: perfect candidate.
        gate.observe(np.zeros(40), np.zeros(40))
        # The candidate's error stream collapses: drift detector fires
        # even though 99 strikes were never accumulated.
        decision = GateDecision.CONTINUE
        for __ in range(10):
            decision = gate.observe(np.ones(10), np.zeros(10))
            if decision is not GateDecision.CONTINUE:
                break
        assert decision is GateDecision.ROLLBACK

    def test_rmse_aggregation(self):
        gate = QualityGate("rmse", config(min_samples=4))
        gate.observe(np.full(4, 4.0), np.full(4, 9.0))
        assert gate.candidate_value() == pytest.approx(2.0)
        assert gate.incumbent_value() == pytest.approx(3.0)

    def test_empty_batches_accumulate_nothing(self):
        gate = QualityGate("rate", config())
        decision = gate.observe(np.empty(0), np.empty(0))
        assert decision is GateDecision.CONTINUE
        assert gate.samples == (0, 0)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ServingError, match="kind"):
            QualityGate("accuracy")


class TestBaselineMonitor:
    def test_tolerates_errors_at_baseline(self):
        monitor = BaselineMonitor(
            0.3, kind="rate", config=config(drift_window=20)
        )
        # Exactly the baseline error level: 6 errors per 20 rows.
        errors = np.array([1.0] * 6 + [0.0] * 14)
        for __ in range(10):
            assert monitor.observe(errors) is GateDecision.CONTINUE

    def test_rollback_after_consecutive_breaches(self):
        monitor = BaselineMonitor(
            0.2,
            kind="rate",
            config=config(rollback_after=2, drift_window=20),
        )
        assert monitor.observe(np.ones(20)) is GateDecision.CONTINUE
        assert monitor.observe(np.ones(20)) is GateDecision.ROLLBACK
        assert monitor.value() == pytest.approx(1.0)

    def test_recovery_resets_strikes(self):
        monitor = BaselineMonitor(
            0.5,
            kind="rate",
            config=config(rollback_after=2, drift_window=10),
        )
        monitor.observe(np.ones(10))          # strike 1
        monitor.observe(np.zeros(10))         # window recovers
        assert monitor.observe(np.ones(5)) is GateDecision.CONTINUE

    def test_window_slides(self):
        monitor = BaselineMonitor(
            0.5, kind="rate", config=config(drift_window=10)
        )
        monitor.observe(np.zeros(10))
        monitor.observe(np.ones(10))  # old zeros evicted
        assert monitor.value() == pytest.approx(1.0)

    def test_negative_baseline_rejected(self):
        with pytest.raises(ServingError, match="baseline"):
            BaselineMonitor(-0.1)
