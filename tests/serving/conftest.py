"""Shared fixtures for the serving-layer tests.

Everything is built on the tiny URL scenario: a hashed-feature SVM
trained on a handful of 50-row chunks. ``url_world`` returns a bundle
of factories so each test can assemble exactly the registry shape it
needs without repeating the training boilerplate.
"""

from dataclasses import dataclass, field
from typing import Callable, List

import pytest

from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.ml.models import LinearSVM
from repro.ml.optim import Adam
from repro.ml.regularizers import L2
from repro.ml.sgd import SGDTrainer
from repro.serving import ModelRegistry

# Mirrors examples/serving_rollout.py, where these parameters give a
# clean quality separation between lightly- and well-trained models.
HASH_DIM = 256
NUM_CHUNKS = 60
ROWS = 50
SEED = 11


@dataclass
class UrlWorld:
    """A stream generator plus artifact/registry factories."""

    generator: URLStreamGenerator
    make_parts: Callable
    registry_factory: Callable
    roots: List = field(default_factory=list)


@pytest.fixture
def url_world(tmp_path):
    generator = URLStreamGenerator(
        num_chunks=NUM_CHUNKS, rows_per_chunk=ROWS, seed=SEED
    )

    def make_parts(train_chunks=range(2), steps=20):
        """A fitted (pipeline, model, optimizer) triple."""
        pipeline = make_url_pipeline(hash_features=HASH_DIM)
        model = LinearSVM(HASH_DIM, regularizer=L2(1e-3))
        optimizer = Adam(0.05)
        trainer = SGDTrainer(model, optimizer)
        for index in train_chunks:
            features = pipeline.update_transform_to_features(
                generator.chunk(index)
            )
            for __ in range(steps):
                trainer.step(features.matrix, features.labels)
        return pipeline, model, optimizer

    def registry_factory(name="registry", telemetry=None):
        return ModelRegistry(tmp_path / name, telemetry=telemetry)

    return UrlWorld(
        generator=generator,
        make_parts=make_parts,
        registry_factory=registry_factory,
    )


@pytest.fixture
def live_registry(url_world):
    """A registry with a promoted live version and its artifacts."""
    registry = url_world.registry_factory()
    parts = url_world.make_parts()
    info = registry.register(*parts)
    registry.promote(info.version, reason="initial")
    return registry, info, parts
