"""Micro-batched serving: bit-identity and deduplicated transforms.

``predict_requests`` is the traffic front end's entry point: many
queued requests served as one merged batch. The acceptance bar is
bit-identity — the flattened per-side prediction streams must match
request-at-a-time serving byte for byte, in every rollout mode — plus
the satellite guarantee that shadow serving runs the shared stateless
pipeline prefix once per batch, not once per side.
"""

import numpy as np
import pytest

from repro.datasets.url import make_url_pipeline
from repro.exceptions import ServingError
from repro.pipeline.components.parser import SvmLightParser
from repro.serving import ServingEndpoint
from repro.serving.endpoint import shared_stateless_prefix

from tests.serving.conftest import ROWS

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


def endpoint_for(registry, **kwargs):
    kwargs.setdefault("seed", 5)
    return ServingEndpoint(registry, **kwargs)


def request_tables(url_world, chunk=0, sizes=(3, 7, 1, 5)):
    table = url_world.generator.chunk(chunk)
    tables, start = [], 0
    for size in sizes:
        tables.append(table.take(range(start, start + size)))
        start += size
    return tables


def served_streams(served):
    return (
        served.primary_predictions.tobytes(),
        served.candidate_predictions.tobytes(),
    )


def row_at_a_time_streams(endpoint, tables, keys):
    primary, candidate = [], []
    for table, key in zip(tables, keys):
        served = endpoint.predict(table, chunk_index=key)
        primary.append(served.primary_predictions)
        candidate.append(served.candidate_predictions)
    return (
        np.concatenate(primary).tobytes(),
        np.concatenate(candidate).tobytes(),
    )


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("mode", ["solo", "shadow", "canary"])
    def test_streams_match_request_at_a_time(
        self, live_registry, url_world, mode
    ):
        registry, __, ___ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(4))
        )
        batched = endpoint_for(registry)
        single = endpoint_for(registry)
        if mode != "solo":
            for endpoint in (batched, single):
                endpoint.attach_candidate(
                    candidate.version, mode=mode, fraction=0.4
                )
        tables = request_tables(url_world)
        keys = [31, 32, 33, 34]
        served = batched.predict_requests(tables, keys=keys)
        assert served_streams(served) == row_at_a_time_streams(
            single, tables, keys
        )

    def test_default_keys_advance(self, live_registry, url_world):
        registry, __, ___ = live_registry
        endpoint = endpoint_for(registry)
        tables = request_tables(url_world)
        first = endpoint.predict_requests(tables)
        second = endpoint.predict_requests(tables)
        assert np.array_equal(first.predictions, second.predictions)

    def test_empty_request_list_rejected(self, live_registry):
        registry, __, ___ = live_registry
        with pytest.raises(ServingError, match="at least one"):
            endpoint_for(registry).predict_requests([])

    def test_key_count_mismatch_rejected(self, live_registry, url_world):
        registry, __, ___ = live_registry
        tables = request_tables(url_world)
        with pytest.raises(ServingError, match="routing keys"):
            endpoint_for(registry).predict_requests(tables, keys=[1])

    def test_canary_share_reflects_routing(
        self, live_registry, url_world
    ):
        registry, __, ___ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(3))
        )
        endpoint = endpoint_for(registry)
        endpoint.attach_candidate(
            candidate.version, mode="canary", fraction=0.5
        )
        served = endpoint.predict_requests(request_tables(url_world))
        assert 0.0 < served.canary_share < 1.0
        assert (
            len(served.primary_predictions)
            + len(served.candidate_predictions)
            == ROWS // 3  # 3+7+1+5 of the 50-row chunk
        )


class TestSharedPrefixDedup:
    def test_url_pipelines_share_the_parser(self):
        first = make_url_pipeline(hash_features=64)
        second = make_url_pipeline(hash_features=64)
        # parser is stateless and identically configured; the imputer
        # right after it is stateful, which caps the shared prefix.
        assert shared_stateless_prefix(first, second) == 1

    def test_prefix_stops_at_config_mismatch(self):
        first = make_url_pipeline(hash_features=64)
        second = make_url_pipeline(hash_features=128)
        assert shared_stateless_prefix(first, second) == 1

    def test_shadow_transforms_shared_prefix_once(
        self, live_registry, url_world, monkeypatch
    ):
        """Satellite regression: shadow serving must not re-run the
        shared stateless prefix per side. One batch => one parser
        call, even with a candidate attached."""
        registry, __, ___ = live_registry
        candidate = registry.register(
            *url_world.make_parts(train_chunks=range(3))
        )
        endpoint = endpoint_for(registry)
        endpoint.attach_candidate(candidate.version, mode="shadow")

        calls = {"transform": 0}
        original = SvmLightParser.transform

        def counting_transform(self, batch):
            calls["transform"] += 1
            return original(self, batch)

        monkeypatch.setattr(
            SvmLightParser, "transform", counting_transform
        )
        served = endpoint.predict_requests(request_tables(url_world))
        assert calls["transform"] == 1
        assert len(served.candidate_predictions) == len(
            served.primary_predictions
        )

    def test_solo_baseline_single_transform(
        self, live_registry, url_world, monkeypatch
    ):
        registry, __, ___ = live_registry
        endpoint = endpoint_for(registry)

        calls = {"transform": 0}
        original = SvmLightParser.transform

        def counting_transform(self, batch):
            calls["transform"] += 1
            return original(self, batch)

        monkeypatch.setattr(
            SvmLightParser, "transform", counting_transform
        )
        endpoint.predict_requests(request_tables(url_world))
        assert calls["transform"] == 1
