"""Lifecycle, lineage, and durability of the model registry."""

import json

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.obs import Telemetry
from repro.serving import ModelRegistry

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.ConvergenceWarning"
)


class TestLifecycle:
    def test_register_defaults_to_candidate(self, url_world):
        registry = url_world.registry_factory()
        info = registry.register(*url_world.make_parts())
        assert info.version == "v0001"
        assert info.status == "candidate"
        assert info.parent is None
        assert registry.live_version is None
        assert registry.candidates() == [info]

    def test_promote_retires_incumbent(self, live_registry, url_world):
        registry, first, __ = live_registry
        second = registry.register(*url_world.make_parts())
        assert second.parent == first.version  # lineage defaults to live
        registry.promote(second.version, reason="test")
        assert registry.live_version == second.version
        assert registry.get(first.version).status == "retired"

    def test_rollback_reinstates_previous_live(
        self, live_registry, url_world
    ):
        registry, first, __ = live_registry
        second = registry.register(*url_world.make_parts())
        registry.promote(second.version)
        restored = registry.rollback(reason="regression")
        assert restored.version == first.version
        assert registry.live_version == first.version
        assert registry.get(second.version).status == "rolled_back"

    def test_reject_only_applies_to_candidates(
        self, live_registry, url_world
    ):
        registry, first, __ = live_registry
        candidate = registry.register(*url_world.make_parts())
        registry.reject(candidate.version, reason="failed gate")
        assert registry.get(candidate.version).status == "rejected"
        with pytest.raises(ServingError, match="candidate"):
            registry.reject(first.version)

    def test_rollback_without_predecessor_fails(self, live_registry):
        registry, __, __ = live_registry
        with pytest.raises(ServingError, match="predecessor"):
            registry.rollback()

    def test_promote_live_version_fails(self, live_registry):
        registry, first, __ = live_registry
        with pytest.raises(ServingError, match="already live"):
            registry.promote(first.version)

    def test_unknown_version_fails(self, url_world):
        registry = url_world.registry_factory()
        with pytest.raises(ServingError, match="unknown version"):
            registry.get("v9999")

    def test_explicit_unknown_parent_rejected(self, url_world):
        registry = url_world.registry_factory()
        with pytest.raises(ServingError, match="parent"):
            registry.register(*url_world.make_parts(), parent="v0042")


class TestBundles:
    def test_load_roundtrip_serves_identically(self, live_registry):
        registry, first, (pipeline, model, __) = live_registry
        bundle = registry.load_live()
        assert bundle.model.params_vector() == pytest.approx(
            model.params_vector()
        )

    def test_load_verifies_checksum(self, live_registry, url_world):
        registry, first, __ = live_registry
        # Re-write the bundle with different (valid) content: the
        # manifest checksum no longer matches.
        from repro.persistence import save_bundle

        save_bundle(
            registry.bundle_path(first.version),
            *url_world.make_parts(train_chunks=range(3)),
        )
        with pytest.raises(ServingError, match="checksum"):
            registry.load(first.version)

    def test_lineage_metadata_recorded(self, url_world):
        registry = url_world.registry_factory()
        info = registry.register(
            *url_world.make_parts(),
            chunks_observed=17,
            training_cost=2.5,
            metrics={"objective": 0.61},
        )
        assert info.chunks_observed == 17
        assert info.training_cost == pytest.approx(2.5)
        assert info.metrics == {"objective": 0.61}
        assert len(info.checksum) == 64  # hex sha256


class TestGarbageCollection:
    def test_gc_keeps_live_candidates_and_recent(
        self, live_registry, url_world
    ):
        registry, first, __ = live_registry
        finished = []
        for __i in range(4):
            info = registry.register(*url_world.make_parts())
            registry.reject(info.version)
            finished.append(info.version)
        keeper = registry.register(*url_world.make_parts())
        collected = registry.gc(keep=1)
        assert collected == finished[:3]
        # Live version and the open candidate keep their bundles.
        assert registry.bundle_path(first.version).exists()
        assert registry.bundle_path(keeper.version).exists()
        # Collected versions keep their manifest entry for audit.
        assert registry.get(collected[0]).collected
        with pytest.raises(ServingError, match="garbage-collected"):
            registry.load(collected[0])

    def test_gc_noop_when_nothing_finished(self, live_registry):
        registry, __, __ = live_registry
        assert registry.gc(keep=0) == []

    def test_promote_collected_version_fails(
        self, live_registry, url_world
    ):
        registry, __, __ = live_registry
        info = registry.register(*url_world.make_parts())
        registry.reject(info.version)
        registry.gc(keep=0)
        with pytest.raises(ServingError, match="garbage-collected"):
            registry.promote(info.version)


class TestDurability:
    def test_reopen_restores_full_state(self, url_world):
        registry = url_world.registry_factory("shared")
        first = registry.register(*url_world.make_parts())
        registry.promote(first.version)
        second = registry.register(*url_world.make_parts())
        registry.promote(second.version)
        registry.rollback(reason="bad")

        reopened = ModelRegistry(registry.root)
        assert reopened.live_version == first.version
        assert [v.version for v in reopened.list_versions()] == [
            "v0001", "v0002",
        ]
        assert reopened.get(second.version).status == "rolled_back"
        # Version numbering continues where it left off.
        third = reopened.register(*url_world.make_parts())
        assert third.version == "v0003"
        # The transition log survives too.
        events = [t["event"] for t in reopened.transitions]
        assert events == [
            "register", "promote", "register", "promote", "rollback",
            "register",
        ]

    def test_manifest_format_mismatch_rejected(self, url_world):
        registry = url_world.registry_factory("versioned")
        registry.register(*url_world.make_parts())
        manifest = json.loads(registry.manifest_path.read_text())
        manifest["format"] = 99
        registry.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ServingError, match="format"):
            ModelRegistry(registry.root)

    def test_live_pointer_to_unknown_version_rejected(self, url_world):
        registry = url_world.registry_factory("broken")
        registry.register(*url_world.make_parts())
        manifest = json.loads(registry.manifest_path.read_text())
        manifest["live"] = "v0666"
        registry.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ServingError, match="unknown version"):
            ModelRegistry(registry.root)


class TestTelemetry:
    def test_transitions_emit_registry_events(self, url_world):
        telemetry = Telemetry()
        registry = url_world.registry_factory(
            "traced", telemetry=telemetry
        )
        info = registry.register(*url_world.make_parts())
        registry.promote(info.version)
        names = [event["name"] for event in telemetry.events]
        assert "registry.register" in names
        assert "registry.promote" in names
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["registry.register"] == 1
        assert counters["registry.promote"] == 1


class TestPlatformWiring:
    def test_proactive_training_registers_candidates(self, url_world):
        """A platform with a registry attached snapshots every
        proactive-training outcome as a candidate version."""
        from repro.core.config import ContinuousConfig, ScheduleConfig
        from repro.core.platform import ContinuousDeploymentPlatform

        registry = url_world.registry_factory("platform")
        pipeline, model, optimizer = url_world.make_parts(
            train_chunks=()
        )
        platform = ContinuousDeploymentPlatform(
            pipeline,
            model,
            optimizer,
            config=ContinuousConfig(
                sample_size_chunks=3,
                schedule=ScheduleConfig(kind="static", interval_chunks=4),
            ),
            seed=1,
            registry=registry,
        )
        platform.initial_fit(
            url_world.generator.initial_data(100),
            max_iterations=30,
            seed=1,
            store=True,
        )
        for index in range(8):
            platform.observe(url_world.generator.chunk(index))
        assert len(platform.proactive_outcomes) == 2
        assert len(platform.registered_versions) == 2
        infos = registry.candidates()
        assert [v.version for v in infos] == ["v0001", "v0002"]
        assert infos[0].chunks_observed == 4
        assert infos[1].chunks_observed == 8
        assert infos[1].training_cost > 0
        assert "objective" in infos[1].metrics
        # The snapshots are decoupled from the live training state.
        frozen = registry.load("v0002").model.params_vector().copy()
        platform.observe(url_world.generator.chunk(8))
        assert np.array_equal(
            registry.load("v0002").model.params_vector(), frozen
        )

    def test_platform_without_registry_unchanged(self, url_world):
        from repro.core.platform import ContinuousDeploymentPlatform

        pipeline, model, optimizer = url_world.make_parts(
            train_chunks=()
        )
        platform = ContinuousDeploymentPlatform(
            pipeline, model, optimizer, seed=1
        )
        assert platform.registry is None
        assert platform.registered_versions == []
