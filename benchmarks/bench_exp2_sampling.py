"""Experiment 2 (part 2) — Figure 6: sampling strategies vs quality.

Three continuous deployments per dataset, identical except for the
proactive-training sampler. Paper shapes:

* URL (drifting, growing feature space): time-based sampling attains
  the best (or tied-best) average error; uniform is worst.
* Taxi (stationary): the three strategies effectively tie.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.evaluation.report import format_series
from repro.experiments.common import taxi_scenario, url_scenario
from repro.experiments.exp2_sampling import (
    SAMPLERS,
    average_errors,
    run_sampling_experiment,
)

_SCENARIOS = {
    "url": url_scenario(BENCH_SCALE),
    "taxi": taxi_scenario(BENCH_SCALE),
}


@pytest.mark.parametrize("dataset", ["url", "taxi"])
def test_fig6(benchmark, report, bench_record, dataset):
    scenario = _SCENARIOS[dataset]
    results = run_once(
        benchmark, lambda: run_sampling_experiment(scenario)
    )
    averages = average_errors(results)
    bench_record(
        f"exp2_fig6_{scenario.name.replace('-', '_')}",
        scenario=scenario,
        cost={
            f"cost_{name}": result.total_cost
            for name, result in results.items()
        },
        quality={f"avg_error_{k}": v for k, v in averages.items()},
    )

    lines = [f"Figure 6 ({dataset}): error per sampling strategy"]
    for name, result in results.items():
        lines.append(
            format_series(name, result.error_history, points=10)
        )
    lines.append(
        "average error: "
        + ", ".join(
            f"{k}={v:.4f}" for k, v in sorted(averages.items())
        )
    )
    report(f"fig6_{dataset}", "\n".join(lines))

    assert set(results) == set(SAMPLERS)
    if dataset == "url":
        # Drifting stream: recency-aware sampling beats uniform.
        assert averages["time"] < averages["uniform"]
    else:
        # Stationary stream: strategies tie (within 2% relative).
        values = sorted(averages.values())
        assert values[-1] - values[0] < 0.02 * values[-1] + 0.005
