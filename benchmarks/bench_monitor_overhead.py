"""Health-monitor overhead guard.

An attached :class:`~repro.obs.monitor.HealthMonitor` rides the sink
chain of an already-instrumented run, so its marginal cost is one
``emit`` per telemetry event. This benchmark makes the <5% budget
executable, in the same projection style as ``bench_obs_overhead``:

1. run a small continuous deployment with telemetry + monitor and
   take its engine wall time as the work baseline (also proving the
   monitor really closes windows on a live stream);
2. microbenchmark the monitor's per-event intake cost — priced
   pessimistically on a *watched* signal event, which pays window
   advancement plus two series samples (the common case, an unwatched
   event, exits after one dict lookup);
3. project that cost onto the run's real event count and assert the
   projection stays under 5% of the baseline.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.experiments.common import run_continuous, url_scenario
from repro.obs import HealthMonitor, Telemetry

#: Maximum tolerated projected overhead of an attached monitor,
#: relative to the monitored run's engine wall time.
MAX_OVERHEAD_FRACTION = 0.05

_EMIT_ITERATIONS = 50_000


def _monitor_emit_seconds(iterations: int = _EMIT_ITERATIONS) -> float:
    """Average wall cost of one watched-signal monitor intake."""
    monitor = HealthMonitor()
    event = {
        "seq": 0,
        "kind": "point",
        "name": "platform.chunk",
        "t": 0.0,
        "dur": 0.0,
        "wall_s": 0.0,
        "attrs": {"chunk": 1, "rows": 20, "error": 0.4},
    }
    emit = monitor.emit
    step = 1e-7  # stays inside one window: prices intake, not closes
    started = time.perf_counter()
    for index in range(iterations):
        event["t"] = index * step
        emit(event)
    return (time.perf_counter() - started) / iterations


def test_monitor_overhead(benchmark, report, bench_record):
    scenario = url_scenario("test")

    telemetry = Telemetry()
    monitor = telemetry.attach_monitor()
    result = run_continuous(scenario, telemetry=telemetry)
    telemetry.close()
    events = monitor.events_seen

    per_event = run_once(benchmark, _monitor_emit_seconds)
    projected = events * per_event
    budget = MAX_OVERHEAD_FRACTION * result.wall_seconds

    report(
        "monitor_overhead",
        "\n".join(
            [
                "health-monitor overhead projection",
                f"engine wall time (monitored run): "
                f"{result.wall_seconds * 1e3:.2f} ms",
                f"events consumed by the monitor: {events}",
                f"windows closed: {monitor.windows_closed}",
                f"watched-signal intake cost: "
                f"{per_event * 1e9:.1f} ns/event",
                f"projected overhead: {projected * 1e6:.1f} us "
                f"({projected / result.wall_seconds:.4%} of wall)",
                f"budget ({MAX_OVERHEAD_FRACTION:.0%}): "
                f"{budget * 1e3:.2f} ms",
            ]
        ),
    )

    assert events > 0
    assert monitor.windows_closed > 0
    assert projected < budget

    bench_record(
        "monitor_overhead",
        scenario=scenario,
        count={
            "monitor_events": events,
            "windows_closed": monitor.windows_closed,
            "incidents": len(monitor.incidents),
        },
        wall={
            "monitor_emit_s": per_event,
            "monitored_wall_s": result.wall_seconds,
        },
        params={"emit_iterations": _EMIT_ITERATIONS, "scale": "test"},
    )
