"""Shared infrastructure for the benchmark suite.

Every benchmark that regenerates a paper artifact prints the same
rows/series the paper reports. Output goes both to the terminal
(bypassing pytest's capture, so ``pytest benchmarks/ --benchmark-only``
shows it) and to ``benchmarks/results/<name>.txt`` for later reading.

The deployment runs are expensive, so results are cached at session
scope and shared between the quality-figure and cost-figure benchmarks
of the same experiment.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

# Deployment-scale runs emit ConvergenceWarning by design (retraining
# at an iteration cap); keep the bench output readable.
warnings.filterwarnings("ignore", message="SGD stopped at")


@pytest.fixture(scope="session")
def emit():
    """Return a reporter: emit(name, text) prints and persists."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        banner = f"\n=== {name} ===\n{text}\n"
        print(banner)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _emit


@pytest.fixture
def report(capsys, emit):
    """Per-test reporter that bypasses pytest's output capture."""

    def _report(name: str, text: str) -> None:
        with capsys.disabled():
            emit(name, text)

    return _report


def run_once(benchmark, function):
    """Benchmark ``function`` with exactly one timed execution.

    Deployment runs are minutes-scale and deterministic; repeated
    rounds would only burn time.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1)
