"""Shared infrastructure for the benchmark suite.

Every benchmark that regenerates a paper artifact prints the same
rows/series the paper reports. Output goes both to the terminal
(bypassing pytest's capture, so ``pytest benchmarks/ --benchmark-only``
shows it) and to ``benchmarks/results/<name>.txt`` for later reading.

The deployment runs are expensive, so results are cached at session
scope and shared between the quality-figure and cost-figure benchmarks
of the same experiment.

Two environment knobs parameterize a suite run:

* ``REPRO_BENCH_SCALE`` — scenario scale the bench modules build
  (``bench`` by default; ``test`` gives the seconds-long miniatures,
  which is what the CI perf-smoke job runs);
* ``REPRO_BENCH_STORE`` — directory of ``BENCH_<name>.json`` baseline
  trajectories the :func:`bench_record` fixture appends to (default:
  ``benchmarks/baselines``, the committed store).

Each benchmark condenses its run into a schema-versioned record via
``bench_record`` — headline metrics tagged with the clock they were
measured on, the RNG seed and scenario knobs needed to reproduce the
run from the JSON alone, the git SHA, and the environment fingerprint.
``repro perf check`` gates fresh runs against these trajectories and
``repro perf report`` renders them.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Scenario scale every bench module builds its ``_SCENARIOS`` at.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")

#: Baseline store the ``bench_record`` fixture appends to.
BASELINE_DIR = Path(
    os.environ.get(
        "REPRO_BENCH_STORE", str(Path(__file__).parent / "baselines")
    )
)

# Deployment-scale runs emit ConvergenceWarning by design (retraining
# at an iteration cap); keep the bench output readable.
warnings.filterwarnings("ignore", message="SGD stopped at")


def scenario_params(scenario) -> dict:
    """The knobs that reproduce a scenario run from the record alone."""
    return {
        "scenario": scenario.name,
        "scale": BENCH_SCALE,
        "seed": scenario.seed,
        "num_chunks": scenario.num_chunks,
        "online_batch_rows": scenario.online_batch_rows,
    }


@pytest.fixture(scope="session")
def emit():
    """Return a reporter: emit(name, text) prints and persists."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        banner = f"\n=== {name} ===\n{text}\n"
        print(banner)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _emit


@pytest.fixture
def report(capsys, emit):
    """Per-test reporter that bypasses pytest's output capture."""

    def _report(name: str, text: str) -> None:
        with capsys.disabled():
            emit(name, text)

    return _report


@pytest.fixture(scope="session")
def bench_record():
    """Append one benchmark's record to its baseline trajectory.

    Usage::

        bench_record(
            "exp1_url_bench_continuous",
            scenario=scenario,
            cost={"total_cost": result.total_cost},
            quality={"final_error": result.final_error},
            count={"chunks": result.chunks_processed},
            wall={"wall_s": result.wall_seconds},
        )

    ``cost``/``quality``/``count`` metrics are virtual-clock numbers
    (exact-match gated by ``repro perf check``); ``wall`` metrics are
    wall-clock seconds (median-of-K gated). The record always carries
    the RNG seed and scenario knobs (via ``scenario`` or explicit
    ``seed``/``params``), so a trajectory entry is reproducible from
    the JSON alone.
    """
    from repro.obs import BaselineStore, MetricValue, make_record

    store = BaselineStore(BASELINE_DIR)
    repo_root = Path(__file__).parent.parent

    def _record(
        name: str,
        scenario=None,
        cost=None,
        quality=None,
        count=None,
        wall=None,
        seed=None,
        params=None,
        profile_digest=None,
    ):
        metrics = {}
        for kind, group in (
            ("cost", cost),
            ("quality", quality),
            ("count", count),
            ("wall", wall),
        ):
            for key, value in (group or {}).items():
                metrics[key] = MetricValue(float(value), kind)
        merged = dict(params or {})
        if scenario is not None:
            for key, value in scenario_params(scenario).items():
                merged.setdefault(key, value)
            if seed is None:
                seed = scenario.seed
        record = make_record(
            name=name,
            metrics=metrics,
            seed=seed,
            params=merged,
            profile_digest=profile_digest,
            repo_root=repo_root,
        )
        path = store.append(record)
        knobs = ", ".join(
            f"{key}={value}" for key, value in sorted(merged.items())
        )
        print(
            f"\nBENCH record {name}: seed={record.seed} "
            f"[{knobs}] -> {path}"
        )
        return record

    return _record


def run_once(benchmark, function):
    """Benchmark ``function`` with exactly one timed execution.

    Deployment runs are minutes-scale and deterministic; repeated
    rounds would only burn time.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1)
