"""Provenance-ledger overhead guard.

An attached :class:`~repro.obs.lineage.LineageLedger` costs one entry
append per chunk/edge/model event plus one pipeline fingerprint per
proactive training burst. This benchmark makes the <5% budget
executable, in the projection style of ``bench_monitor_overhead``:

1. run a small continuous deployment with telemetry + ledger and take
   its engine wall time as the work baseline (also proving the ledger
   really records chunks, trainings, and models on a live stream);
2. microbenchmark the two marginal costs — one ledger append (priced
   with a live tracer bound, so the ``lineage.node`` point emission is
   inside the timed region) and one full pipeline fingerprint (the
   per-training digest work);
3. project both onto the run's real entry/training counts and assert
   the projection stays under 5% of the baseline.

Baseline workflow: by default the run appends a record to the
``BENCH_lineage_overhead.json`` trajectory; with ``REPRO_BENCH_CHECK``
set (``make bench-check``) the fresh run is gated against the
committed trajectory instead — exact-match on the deterministic graph
counts, median-of-K with a generous budget on wall times.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import BASELINE_DIR, BENCH_SCALE, run_once
from repro.experiments.common import run_continuous, url_scenario
from repro.obs import Telemetry
from repro.pipeline import pipeline_fingerprint

#: Maximum tolerated projected overhead of an attached ledger,
#: relative to the instrumented run's engine wall time.
MAX_OVERHEAD_FRACTION = 0.05

_APPEND_ITERATIONS = 50_000
_FINGERPRINT_ITERATIONS = 200


def _append_seconds(iterations: int = _APPEND_ITERATIONS) -> float:
    """Average wall cost of one ledger node append (tracer bound)."""
    telemetry = Telemetry()
    ledger = telemetry.attach_ledger()
    record = ledger.record_chunk
    started = time.perf_counter()
    for index in range(iterations):
        record(index, "0" * 64, rows=20)
    return (time.perf_counter() - started) / iterations


def _fingerprint_seconds(
    scenario, iterations: int = _FINGERPRINT_ITERATIONS
) -> float:
    """Average wall cost of one full pipeline fingerprint."""
    pipeline = scenario.make_pipeline()
    started = time.perf_counter()
    for _ in range(iterations):
        pipeline_fingerprint(pipeline)
    return (time.perf_counter() - started) / iterations


def test_lineage_overhead(benchmark, report, bench_record):
    scenario = url_scenario("test")

    telemetry = Telemetry()
    ledger = telemetry.attach_ledger()
    result = run_once(
        benchmark, lambda: run_continuous(scenario, telemetry=telemetry)
    )
    telemetry.close()
    counts = ledger.counts()
    entries = len(ledger)

    per_append = _append_seconds()
    per_fingerprint = _fingerprint_seconds(scenario)
    projected = (
        entries * per_append + counts["training"] * per_fingerprint
    )
    budget = MAX_OVERHEAD_FRACTION * result.wall_seconds

    report(
        "lineage_overhead",
        "\n".join(
            [
                "provenance-ledger overhead projection",
                f"engine wall time (instrumented run): "
                f"{result.wall_seconds * 1e3:.2f} ms",
                f"ledger entries: {entries} "
                f"(chunks={counts['chunk']}, "
                f"trainings={counts['training']}, "
                f"edges={counts['edges']})",
                f"append cost: {per_append * 1e9:.1f} ns/entry",
                f"fingerprint cost: "
                f"{per_fingerprint * 1e6:.1f} us/training",
                f"projected overhead: {projected * 1e6:.1f} us "
                f"({projected / result.wall_seconds:.4%} of wall)",
                f"budget ({MAX_OVERHEAD_FRACTION:.0%}): "
                f"{budget * 1e3:.2f} ms",
                f"lineage digest: {ledger.digest()[:16]}...",
            ]
        ),
    )

    assert entries > 0
    assert counts["chunk"] > 0
    assert counts["training"] > 0
    assert projected < budget

    # No registry in this run, so no model nodes — the registry path
    # is covered by the exp5 golden tests; this guard prices the hot
    # per-chunk/per-training stream costs.
    count = {
        "entries": entries,
        "chunks": counts["chunk"],
        "trainings": counts["training"],
        "edges": counts["edges"],
    }
    wall = {
        "append_s": per_append,
        "fingerprint_s": per_fingerprint,
        "instrumented_wall_s": result.wall_seconds,
    }
    params = {
        "scale": BENCH_SCALE,
        "append_iterations": _APPEND_ITERATIONS,
        "fingerprint_iterations": _FINGERPRINT_ITERATIONS,
    }

    if os.environ.get("REPRO_BENCH_CHECK"):
        from repro.obs import (
            BaselineStore,
            MetricValue,
            TolerancePolicy,
            check_record,
            make_record,
        )
        from repro.obs.perf import format_report

        metrics = {
            key: MetricValue(float(value), "count")
            for key, value in count.items()
        }
        metrics.update(
            {
                key: MetricValue(float(value), "wall")
                for key, value in wall.items()
            }
        )
        fresh = make_record(
            name="lineage_overhead",
            metrics=metrics,
            seed=scenario.seed,
            params=params,
        )
        history = BaselineStore(BASELINE_DIR).load("lineage_overhead")
        verdict = check_record(
            fresh, history, TolerancePolicy(wall_budget=4.0)
        )
        report("lineage_overhead_gate", format_report(verdict))
        assert verdict.ok, (
            "lineage overhead regressed against "
            f"{BASELINE_DIR}/BENCH_lineage_overhead.json"
        )
    else:
        bench_record(
            "lineage_overhead",
            count=count,
            wall=wall,
            seed=scenario.seed,
            params=params,
        )
