"""Ablation benchmarks for the design choices DESIGN.md calls out.

* Warm starting for periodical retraining (§5.2 / TFX): cold restarts
  must cost more (statistics recomputation) — and the error after a
  cold retrain without accumulated optimizer state tends to be worse.
* Online SGD granularity: per-row online updates (the paper's online
  learning) vs one mini-batch step per chunk.
* Dynamic vs static scheduling of proactive training (formula 6).
* Proactive-training sample size: quality/cost knob of §3.2.2.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.core.config import ScheduleConfig
from repro.experiments.common import (
    run_continuous,
    run_periodical,
    url_scenario,
)

_URL = url_scenario(BENCH_SCALE)


def test_warm_start_ablation(benchmark, report, bench_record):
    def run():
        warm = run_periodical(_URL)
        cold_scenario = replace(
            _URL,
            periodical_config=replace(
                _URL.periodical_config, warm_start=False
            ),
        )
        cold = run_periodical(cold_scenario)
        return warm, cold

    warm, cold = run_once(benchmark, run)
    report(
        "ablation_warm_start",
        "Periodical retraining (URL): warm start vs cold\n"
        f"warm: cost={warm.total_cost:.2f} "
        f"avg_error={warm.average_error:.4f}\n"
        f"cold: cost={cold.total_cost:.2f} "
        f"avg_error={cold.average_error:.4f}",
    )
    # Cold restarts recompute pipeline statistics over all history.
    assert cold.total_cost > warm.total_cost
    bench_record(
        f"ablation_warm_start_{_URL.name.replace('-', '_')}",
        scenario=_URL,
        cost={
            "warm_total_cost": warm.total_cost,
            "cold_total_cost": cold.total_cost,
        },
        quality={
            "warm_avg_error": warm.average_error,
            "cold_avg_error": cold.average_error,
        },
    )


def test_online_granularity_ablation(benchmark, report):
    def run():
        per_row = run_continuous(_URL)
        per_chunk_scenario = replace(
            _URL,
            online_batch_rows=None,
            continuous_config=replace(
                _URL.continuous_config, online_batch_rows=None
            ),
        )
        per_chunk = run_continuous(per_chunk_scenario)
        return per_row, per_chunk

    per_row, per_chunk = run_once(benchmark, run)
    report(
        "ablation_online_granularity",
        "Continuous (URL): online update granularity\n"
        f"per-row  : avg_error={per_row.average_error:.4f} "
        f"cost={per_row.total_cost:.2f}\n"
        f"per-chunk: avg_error={per_chunk.average_error:.4f} "
        f"cost={per_chunk.total_cost:.2f}",
    )
    # Same data volume either way: cost must be almost identical.
    assert per_chunk.total_cost == pytest.approx(
        per_row.total_cost, rel=0.05
    )


def test_dynamic_scheduler_ablation(benchmark, report):
    def run():
        static = run_continuous(_URL)
        dynamic_scenario = _URL.with_continuous(
            schedule=ScheduleConfig(
                kind="dynamic", slack=1.2, initial_interval=0.05
            )
        )
        dynamic = run_continuous(dynamic_scenario)
        return static, dynamic

    static, dynamic = run_once(benchmark, run)
    report(
        "ablation_scheduler",
        "Continuous (URL): static vs dynamic scheduling\n"
        f"static : trainings={static.counters['proactive_trainings']} "
        f"avg_error={static.average_error:.4f} "
        f"cost={static.total_cost:.2f}\n"
        f"dynamic: trainings={dynamic.counters['proactive_trainings']} "
        f"avg_error={dynamic.average_error:.4f} "
        f"cost={dynamic.total_cost:.2f}",
    )
    assert dynamic.counters["proactive_trainings"] > 0


def test_threshold_retraining_ablation(benchmark, report):
    """Velox-style retrain-on-degradation vs fixed-period retraining.

    On the drifting URL stream, the threshold policy retrains only
    when the monitored error actually degrades, so it should spend
    less than the fixed 12-retraining schedule while staying in the
    same quality band.
    """
    from repro.core.deployment import ThresholdRetrainingDeployment

    def run():
        periodical = run_periodical(_URL)
        deployment = ThresholdRetrainingDeployment(
            _URL.make_pipeline(),
            _URL.make_model(),
            _URL.make_optimizer(),
            tolerance_ratio=0.10,
            window_chunks=20,
            cooldown_chunks=30,
            min_absolute_delta=0.01,
            config=_URL.periodical_config,
            metric=_URL.metric,
            seed=_URL.seed,
            online_batch_rows=_URL.online_batch_rows,
        )
        deployment.initial_fit(
            _URL.make_initial_data(),
            seed=_URL.seed,
            **_URL.initial_fit_kwargs,
        )
        threshold = deployment.run(_URL.make_stream())
        return periodical, threshold

    periodical, threshold = run_once(benchmark, run)
    report(
        "ablation_threshold_retraining",
        "Retraining policy (URL): fixed period vs error threshold\n"
        f"periodical: retrainings="
        f"{periodical.counters['retrainings']} "
        f"cost={periodical.total_cost:.2f} "
        f"avg_error={periodical.average_error:.4f}\n"
        f"threshold : retrainings="
        f"{threshold.counters['retrainings']} "
        f"cost={threshold.total_cost:.2f} "
        f"avg_error={threshold.average_error:.4f}",
    )
    # Retraining on demand must not retrain more than the fixed
    # schedule, and therefore must not cost more.
    assert (
        threshold.counters["retrainings"]
        <= periodical.counters["retrainings"]
    )
    assert threshold.total_cost <= periodical.total_cost * 1.05


def test_sample_size_ablation(benchmark, report):
    def run():
        results = {}
        for size in (20, 80, 160):
            scenario = _URL.with_continuous(sample_size_chunks=size)
            results[size] = run_continuous(scenario)
        return results

    results = run_once(benchmark, run)
    lines = ["Continuous (URL): proactive-training sample size"]
    for size, result in results.items():
        lines.append(
            f"s={size:<4} avg_error={result.average_error:.4f} "
            f"cost={result.total_cost:.2f}"
        )
    report("ablation_sample_size", "\n".join(lines))
    # Larger samples cost more (more gradient work per training).
    costs = [results[s].total_cost for s in (20, 80, 160)]
    assert costs[0] < costs[1] < costs[2]
