"""Full-tree reprolint wall-time guard.

`make lint`, the pre-commit `lint-diff` loop, and the CI
lint-invariants job all run reprolint over the whole tree, so the
linter's own speed is developer-facing latency. The whole-program
pass (DESIGN.md §14) deliberately re-reasons over every module on
every run — symbol tables, the subsystem import graph, and the call
graph are rebuilt from scratch — which makes it the obvious place for
an accidental quadratic blowup to hide. This benchmark pins it down:

1. time one full run with the program pass on (what CI executes) and
   assert it comes back clean — the acceptance invariant of the
   shipped tree;
2. time a per-file-only run (``program=False``) so the trajectory
   separates "parsing + per-file rules got slower" from "the program
   pass got slower".

Counts (files scanned, findings) change legitimately as the repo
grows, so they travel as params for forensics rather than exact-match
metrics; only the wall times are gated, median-of-K against the
committed ``BENCH_lint_speed.json`` trajectory.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from benchmarks.conftest import BASELINE_DIR, run_once
from repro.analysis import default_config, run_lint

REPO_ROOT = Path(__file__).parent.parent


def _timed_lint(program: bool):
    started = time.perf_counter()
    result = run_lint(REPO_ROOT, config=default_config(), program=program)
    return result, time.perf_counter() - started


def test_lint_speed(benchmark, report, bench_record):
    full, full_wall = run_once(benchmark, lambda: _timed_lint(True))
    per_file, per_file_wall = _timed_lint(False)

    report(
        "lint_speed",
        "\n".join(
            [
                "reprolint full-tree wall time",
                f"files scanned: {full.files_scanned}",
                f"full run (program pass on): {full_wall * 1e3:.1f} ms",
                f"per-file only: {per_file_wall * 1e3:.1f} ms",
                f"program pass share: "
                f"{(full_wall - per_file_wall) * 1e3:.1f} ms",
                f"findings: {len(full.findings)} "
                f"({len(full.baselined)} baselined, "
                f"{len(full.suppressed)} suppressed)",
            ]
        ),
    )

    assert full.program_ran
    assert full.clean, [f.render() for f in full.findings]
    assert per_file.clean

    wall = {"lint_full_s": full_wall, "lint_per_file_s": per_file_wall}
    params = {
        "files_scanned": full.files_scanned,
        "baselined": len(full.baselined),
        "suppressed": len(full.suppressed),
    }

    if os.environ.get("REPRO_BENCH_CHECK"):
        from repro.obs import (
            BaselineStore,
            MetricValue,
            TolerancePolicy,
            check_record,
            make_record,
        )
        from repro.obs.perf import format_report

        fresh = make_record(
            name="lint_speed",
            metrics={
                key: MetricValue(float(value), "wall")
                for key, value in wall.items()
            },
            params=params,
        )
        history = BaselineStore(BASELINE_DIR).load("lint_speed")
        verdict = check_record(
            fresh, history, TolerancePolicy(wall_budget=4.0)
        )
        report("lint_speed_gate", format_report(verdict))
        assert verdict.ok, (
            "reprolint wall time regressed against "
            f"{BASELINE_DIR}/BENCH_lint_speed.json"
        )
    else:
        bench_record("lint_speed", wall=wall, params=params)
