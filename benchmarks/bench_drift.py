"""Drift-detection extension bench (the paper's §7 future work).

On a stream with an abrupt concept shift, compares the plain
continuous deployment (sparse schedule) against the drift-aware
variant (Page–Hinkley detector + delayed proactive-training burst over
a fresh window). Checks that the detector localises the shift and
that the response does not cost more than a handful of extra
proactive trainings.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.config import ContinuousConfig, ScheduleConfig
from repro.core.deployment import ContinuousDeployment
from repro.datasets.drift import AbruptDrift
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.driftdetect import (
    DriftAwareContinuousDeployment,
    PageHinkley,
)
from repro.ml.models import LinearSVM
from repro.ml.optim import Adam
from repro.ml.regularizers import L2

NUM_CHUNKS = 200
SHIFT_AT = 100
HASH_DIM = 1024


def _generator() -> URLStreamGenerator:
    return URLStreamGenerator(
        num_chunks=NUM_CHUNKS,
        rows_per_chunk=50,
        base_features=400,
        new_features_per_chunk=0,
        drift=AbruptDrift(at_chunks=[SHIFT_AT], magnitude=0.9),
        label_noise=0.02,
        seed=11,
    )


def _config() -> ContinuousConfig:
    return ContinuousConfig(
        sample_size_chunks=20,
        schedule=ScheduleConfig(kind="static", interval_chunks=25),
        sampler="window",
        window_size=25,
    )


def _deploy(drift_aware: bool):
    pipeline = make_url_pipeline(hash_features=HASH_DIM)
    model = LinearSVM(num_features=HASH_DIM, regularizer=L2(1e-3))
    if drift_aware:
        deployment = DriftAwareContinuousDeployment(
            pipeline, model, Adam(0.05),
            detector=PageHinkley(
                delta=0.05, threshold=10.0, minimum_observations=50
            ),
            bursts_per_drift=5,
            burst_window=5,
            burst_delay_chunks=4,
            config=_config(),
            metric="classification",
            seed=11,
        )
    else:
        deployment = ContinuousDeployment(
            pipeline, model, Adam(0.05),
            config=_config(), metric="classification", seed=11,
        )
    generator = _generator()
    deployment.initial_fit(
        generator.initial_data(800), max_iterations=400, tolerance=1e-6
    )
    return deployment.run(generator.stream()), deployment


def test_drift_response(benchmark, report, bench_record):
    def run():
        plain, __ = _deploy(drift_aware=False)
        aware_result, aware = _deploy(drift_aware=True)
        return plain, aware_result, aware

    plain, aware_result, aware = run_once(benchmark, run)

    report(
        "drift_response",
        f"Abrupt shift at chunk {SHIFT_AT} of {NUM_CHUNKS}\n"
        f"detections: {aware_result.counters['drifts_detected']} at "
        f"chunks {aware.drift_chunks}\n"
        f"proactive trainings: scheduled="
        f"{plain.counters['proactive_trainings']}, drift-aware="
        f"{aware_result.counters['proactive_trainings']}\n"
        f"final error: scheduled={plain.final_error:.4f}, "
        f"drift-aware={aware_result.final_error:.4f}",
    )

    # The detector localises the shift: first alarm within 10 chunks.
    assert aware.drift_chunks, "no drift detected"
    assert SHIFT_AT <= aware.drift_chunks[0] <= SHIFT_AT + 10
    # The response is bounded: a few bursts, not constant alarms.
    assert aware_result.counters["drifts_detected"] <= 4
    # And it does not hurt quality.
    assert aware_result.final_error <= plain.final_error + 0.005

    bench_record(
        "drift_response",
        cost={
            "plain_total_cost": plain.total_cost,
            "aware_total_cost": aware_result.total_cost,
        },
        quality={
            "plain_final_error": plain.final_error,
            "aware_final_error": aware_result.final_error,
        },
        count={
            "drifts_detected": aware_result.counters[
                "drifts_detected"
            ],
            "aware_proactive_trainings": aware_result.counters[
                "proactive_trainings"
            ],
        },
        seed=11,
        params={
            "num_chunks": NUM_CHUNKS,
            "shift_at": SHIFT_AT,
            "hash_dim": HASH_DIM,
        },
    )
