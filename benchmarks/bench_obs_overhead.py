"""Telemetry overhead guard.

The observability layer's contract is that *disabled* telemetry is
effectively free: every hot call site either takes an
``if self._obs is None`` fast path or calls the no-op
:class:`~repro.obs.trace.NullTracer`, whose ``span`` returns one
shared do-nothing context manager.

This benchmark makes that contract executable:

1. run a small continuous deployment untraced and take its engine
   wall time as the work baseline;
2. run the identical deployment traced to count how many telemetry
   events (span/point sites) such a run actually exercises;
3. microbenchmark the disabled span protocol, project its cost onto
   that event count, and assert the projection stays under 5% of the
   baseline.

The projection is deliberately pessimistic — it prices every traced
event at full no-op-span cost, while point events and fast-path sites
are cheaper still.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.experiments.common import run_continuous, url_scenario
from repro.obs import Telemetry
from repro.obs.trace import NULL_TRACER

#: Maximum tolerated projected overhead of disabled telemetry,
#: relative to the run's engine wall time.
MAX_OVERHEAD_FRACTION = 0.05

_NOOP_ITERATIONS = 200_000


def _noop_span_seconds(iterations: int = _NOOP_ITERATIONS) -> float:
    """Average wall cost of one disabled span site."""
    tracer = NULL_TRACER
    started = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("engine.predict", values=1):
            pass
    return (time.perf_counter() - started) / iterations


def test_noop_tracer_overhead(benchmark, report, bench_record):
    scenario = url_scenario("test")

    untraced = run_continuous(scenario)
    telemetry = Telemetry()
    run_continuous(scenario, telemetry=telemetry)
    events = telemetry.ring.emitted

    per_span = run_once(benchmark, _noop_span_seconds)
    projected = events * per_span
    budget = MAX_OVERHEAD_FRACTION * untraced.wall_seconds

    report(
        "obs_overhead",
        "\n".join(
            [
                "disabled-telemetry overhead projection",
                f"engine wall time (untraced run): "
                f"{untraced.wall_seconds * 1e3:.2f} ms",
                f"telemetry events in a traced run: {events}",
                f"no-op span cost: {per_span * 1e9:.1f} ns/site",
                f"projected overhead: {projected * 1e6:.1f} us "
                f"({projected / untraced.wall_seconds:.4%} of wall)",
                f"budget ({MAX_OVERHEAD_FRACTION:.0%}): "
                f"{budget * 1e3:.2f} ms",
            ]
        ),
    )

    assert events > 0
    assert projected < budget

    bench_record(
        "obs_overhead",
        scenario=scenario,
        count={"telemetry_events": events},
        wall={
            "noop_span_s": per_span,
            "untraced_wall_s": untraced.wall_seconds,
        },
        params={"noop_iterations": _NOOP_ITERATIONS, "scale": "test"},
    )
