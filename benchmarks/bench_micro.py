"""Micro-benchmarks for the hot paths of the platform.

These are conventional pytest-benchmark timings (many rounds) for the
operations that dominate a deployment: pipeline transforms, feature
hashing, SGD steps (dense and sparse), sampling, and storage
bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.chunk import FeatureChunk
from repro.data.sampling import (
    TimeBasedSampler,
    UniformSampler,
    WindowBasedSampler,
)
from repro.data.storage import ChunkStorage
from repro.datasets.taxi import TaxiStreamGenerator, make_taxi_pipeline
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.ml.models import LinearRegression, LinearSVM
from repro.ml.optim import Adam, RMSProp
from repro.ml.sgd import SGDTrainer


@pytest.fixture(scope="module")
def url_chunk():
    return URLStreamGenerator(
        num_chunks=2, rows_per_chunk=100, seed=0
    ).chunk(0)


@pytest.fixture(scope="module")
def taxi_chunk():
    return TaxiStreamGenerator(
        num_chunks=2, rows_per_chunk=200, seed=0
    ).chunk(0)


class TestPipelineThroughput:
    def test_url_online_pass(self, benchmark, url_chunk):
        pipeline = make_url_pipeline(hash_features=1024)
        benchmark(pipeline.update_transform_to_features, url_chunk)

    def test_url_transform_only(self, benchmark, url_chunk):
        pipeline = make_url_pipeline(hash_features=1024)
        pipeline.update_transform(url_chunk)
        benchmark(pipeline.transform_to_features, url_chunk)

    def test_taxi_online_pass(self, benchmark, taxi_chunk):
        pipeline = make_taxi_pipeline()
        benchmark(pipeline.update_transform_to_features, taxi_chunk)

    def test_taxi_transform_only(self, benchmark, taxi_chunk):
        pipeline = make_taxi_pipeline()
        pipeline.update_transform(taxi_chunk)
        benchmark(pipeline.transform_to_features, taxi_chunk)


class TestTrainingThroughput:
    def test_sparse_sgd_step(self, benchmark, url_chunk):
        pipeline = make_url_pipeline(hash_features=1024)
        features = pipeline.update_transform_to_features(url_chunk)
        trainer = SGDTrainer(LinearSVM(1024), Adam(0.05))
        benchmark(trainer.step, features.matrix, features.labels)

    def test_dense_sgd_step(self, benchmark, taxi_chunk):
        pipeline = make_taxi_pipeline()
        features = pipeline.update_transform_to_features(taxi_chunk)
        trainer = SGDTrainer(
            LinearRegression(features.num_features), RMSProp(0.05)
        )
        benchmark(trainer.step, features.matrix, features.labels)

    def test_sparse_prediction(self, benchmark, url_chunk):
        pipeline = make_url_pipeline(hash_features=1024)
        features = pipeline.update_transform_to_features(url_chunk)
        model = LinearSVM(1024)
        benchmark(model.predict, features.matrix)


class TestSamplingThroughput:
    POPULATION = list(range(12_000))

    @pytest.mark.parametrize(
        "sampler",
        [
            UniformSampler(),
            WindowBasedSampler(window_size=6_000),
            TimeBasedSampler(half_life=3_000),
        ],
        ids=["uniform", "window", "time"],
    )
    def test_sample_100_of_12000(self, benchmark, sampler):
        rng = np.random.default_rng(0)
        benchmark(sampler.sample, self.POPULATION, 100, rng)


class TestStorageThroughput:
    def test_insert_with_eviction(self, benchmark, bench_record):
        def insert_run():
            storage = ChunkStorage(max_materialized=64)
            for t in range(256):
                storage.put_features(
                    FeatureChunk(
                        timestamp=t,
                        raw_reference=t,
                        features=np.ones((16, 8)),
                        labels=np.ones(16),
                    )
                )
            return storage

        storage = benchmark(insert_run)
        assert storage.num_materialized == 64

        bench_record(
            "micro_storage_eviction",
            count={"materialized": storage.num_materialized},
            wall={"insert_run_s": benchmark.stats.stats.mean},
            seed=0,
            params={"inserts": 256, "max_materialized": 64},
        )
