"""Micro-batched serving throughput vs request-at-a-time.

The traffic front end exists because serving one request per call
pays the full transform + kernel dispatch overhead per request
(§4.5's deployed-pipeline setting). This benchmark prices that
directly on real machinery — an open-loop arrival stream sampled
from a replay pool, served twice by fresh endpoints:

1. request-at-a-time: one ``predict`` call per request;
2. micro-batched: the same requests grouped into fixed-size batches
   through ``predict_requests``.

It asserts the two prediction streams are *byte-identical* (the
contract that makes batching legal at all), that a duplicate batched
run reproduces the stream exactly, and that batching is not slower.

Baseline workflow: by default the run appends a record to the
``BENCH_serving_throughput.json`` trajectory. With
``REPRO_BENCH_CHECK`` set (``make bench-check``), the fresh run is
gated against the committed trajectory instead — exact-match on the
deterministic counts, median-of-K with a generous budget on the
wall-clock numbers (the committed baseline comes from a different
machine).
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import BASELINE_DIR, BENCH_SCALE, run_once
from repro.data.table import Table
from repro.datasets.url import URLStreamGenerator, make_url_pipeline
from repro.ml.models import LinearSVM
from repro.ml.optim import Adam
from repro.ml.regularizers import L2
from repro.ml.sgd import SGDTrainer
from repro.serving import ModelRegistry, ServingEndpoint
from repro.traffic import OpenLoopGenerator, TrafficPattern

SEED = 17
HASH_DIM = 256
MAX_BATCH_SIZE = 8

#: Arrival-stream horizon per scale (requests scale with it).
_HORIZONS = {"test": 3.0, "bench": 30.0}


def _build_world(tmp_path):
    generator = URLStreamGenerator(
        num_chunks=4, rows_per_chunk=50, seed=SEED
    )
    pipeline = make_url_pipeline(hash_features=HASH_DIM)
    model = LinearSVM(HASH_DIM, regularizer=L2(1e-3))
    optimizer = Adam(0.05)
    trainer = SGDTrainer(model, optimizer)
    for index in range(2):
        features = pipeline.update_transform_to_features(
            generator.chunk(index)
        )
        for __ in range(20):
            trainer.step(features.matrix, features.labels)
    registry = ModelRegistry(tmp_path / "registry")
    info = registry.register(pipeline, model, optimizer)
    registry.promote(info.version, reason="bench")
    pool = Table.concat([generator.chunk(2), generator.chunk(3)])
    return registry, pool


def _request_tables(pool):
    horizon = _HORIZONS.get(BENCH_SCALE, _HORIZONS["bench"])
    arrivals = OpenLoopGenerator(
        pattern=TrafficPattern(base_rate=60.0),
        num_users=10_000,
        pool_rows=pool.num_rows,
        rows_per_request=(2, 6),
        seed=SEED,
    ).generate(horizon)
    return [
        pool.take(arrivals.request_rows(i))
        for i in range(arrivals.num_requests)
    ]


def _serve_row_at_a_time(registry, tables):
    endpoint = ServingEndpoint(registry, seed=SEED)
    streams = []
    started = time.perf_counter()
    for key, table in enumerate(tables):
        streams.append(endpoint.predict(table, chunk_index=key).predictions)
    wall = time.perf_counter() - started
    return np.concatenate(streams), wall


def _serve_batched(registry, tables):
    endpoint = ServingEndpoint(registry, seed=SEED)
    streams = []
    started = time.perf_counter()
    for start in range(0, len(tables), MAX_BATCH_SIZE):
        group = tables[start:start + MAX_BATCH_SIZE]
        keys = list(range(start, start + len(group)))
        streams.append(
            endpoint.predict_requests(group, keys=keys).predictions
        )
    wall = time.perf_counter() - started
    return np.concatenate(streams), wall


def test_serving_throughput(
    tmp_path, benchmark, report, bench_record
):
    registry, pool = _build_world(tmp_path)
    tables = _request_tables(pool)
    total_rows = sum(t.num_rows for t in tables)

    row_stream, row_wall = _serve_row_at_a_time(registry, tables)
    batched_stream, batched_wall = run_once(
        benchmark, lambda: _serve_batched(registry, tables)
    )
    repeat_stream, __ = _serve_batched(registry, tables)

    batches = -(-len(tables) // MAX_BATCH_SIZE)
    speedup = row_wall / batched_wall if batched_wall > 0 else 0.0
    report(
        "serving_throughput",
        "\n".join(
            [
                "micro-batched serving throughput",
                f"requests: {len(tables)} ({total_rows} rows), "
                f"max_batch_size={MAX_BATCH_SIZE} -> {batches} batches",
                f"request-at-a-time: {row_wall * 1e3:.1f} ms "
                f"({total_rows / row_wall:.0f} rows/s)",
                f"micro-batched:     {batched_wall * 1e3:.1f} ms "
                f"({total_rows / batched_wall:.0f} rows/s)",
                f"speedup: {speedup:.2f}x",
                "streams byte-identical: "
                f"{np.array_equal(row_stream, batched_stream)}",
            ]
        ),
    )

    # The contract, not a tolerance: batching must not change a byte,
    # and a duplicate run must reproduce the stream exactly.
    assert batched_stream.tobytes() == row_stream.tobytes()
    assert np.array_equal(batched_stream, repeat_stream)
    # Amortization must actually pay: batched serving is not slower.
    assert batched_wall < row_wall

    count = {
        "requests": len(tables),
        "rows": total_rows,
        "batches": batches,
    }
    wall = {
        "row_at_a_time_s": row_wall,
        "batched_s": batched_wall,
    }
    params = {
        "scale": BENCH_SCALE,
        "hash_dim": HASH_DIM,
        "max_batch_size": MAX_BATCH_SIZE,
    }

    if os.environ.get("REPRO_BENCH_CHECK"):
        from repro.obs import (
            BaselineStore,
            MetricValue,
            TolerancePolicy,
            check_record,
            make_record,
        )
        from repro.obs.perf import format_report

        metrics = {
            key: MetricValue(float(value), "count")
            for key, value in count.items()
        }
        metrics.update(
            {
                key: MetricValue(float(value), "wall")
                for key, value in wall.items()
            }
        )
        fresh = make_record(
            name="serving_throughput",
            metrics=metrics,
            seed=SEED,
            params=params,
        )
        history = BaselineStore(BASELINE_DIR).load("serving_throughput")
        verdict = check_record(
            fresh, history, TolerancePolicy(wall_budget=4.0)
        )
        report("serving_throughput_gate", format_report(verdict))
        assert verdict.ok, (
            "serving throughput regressed against "
            f"{BASELINE_DIR}/BENCH_serving_throughput.json"
        )
    else:
        bench_record(
            "serving_throughput",
            count=count,
            wall=wall,
            seed=SEED,
            params=params,
        )
