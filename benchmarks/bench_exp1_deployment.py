"""Experiment 1 — Figure 4 (a)–(d): deployment approaches.

Regenerates the four panels of Figure 4: cumulative prequential error
and cumulative deployment cost over time for the online, periodical,
and continuous deployments on the URL and Taxi scenarios.

Paper shapes asserted here:

* error: continuous <= periodical and continuous < online (average);
* cost: periodical ends several times (6–15x in the paper) above
  continuous; continuous only modestly above online.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.evaluation.report import format_series
from repro.experiments.common import (
    run_continuous,
    run_online,
    run_periodical,
    taxi_scenario,
    url_scenario,
)
from repro.experiments.exp1_deployment import cost_ratios

#: Results shared across the figure benchmarks of this module.
_RESULTS: dict = {}

_SCENARIOS = {
    "url": url_scenario(BENCH_SCALE),
    "taxi": taxi_scenario(BENCH_SCALE),
}
_RUNNERS = {
    "online": run_online,
    "periodical": run_periodical,
    "continuous": run_continuous,
}


@pytest.mark.parametrize("dataset", ["url", "taxi"])
@pytest.mark.parametrize(
    "approach", ["online", "periodical", "continuous"]
)
def test_run_deployment(benchmark, bench_record, dataset, approach):
    """Timed deployment runs (one per approach per dataset)."""
    scenario = _SCENARIOS[dataset]
    runner = _RUNNERS[approach]
    result = run_once(benchmark, lambda: runner(scenario))
    _RESULTS[(dataset, approach)] = result
    benchmark.extra_info["final_error"] = result.final_error
    benchmark.extra_info["total_cost"] = result.total_cost
    bench_record(
        f"exp1_{scenario.name.replace('-', '_')}_{approach}",
        scenario=scenario,
        cost={"total_cost": result.total_cost},
        quality={
            "final_error": result.final_error,
            "average_error": result.average_error,
        },
        count={
            "chunks": result.chunks_processed,
            **{f"n_{k}": v for k, v in result.counters.items()},
        },
        wall={"wall_s": result.wall_seconds},
    )


@pytest.mark.parametrize(
    ("figure", "dataset", "series"),
    [
        ("fig4a_url_quality", "url", "error"),
        ("fig4b_url_cost", "url", "cost"),
        ("fig4c_taxi_quality", "taxi", "error"),
        ("fig4d_taxi_cost", "taxi", "cost"),
    ],
)
def test_figure4(benchmark, report, figure, dataset, series):
    """Assemble and check one Figure 4 panel from the cached runs."""
    results = {
        name: _RESULTS[(dataset, name)]
        for name in ("online", "periodical", "continuous")
    }

    def render() -> str:
        lines = [f"Figure 4 panel: {figure} ({series} over chunks)"]
        for name, result in results.items():
            history = (
                result.error_history
                if series == "error"
                else result.cost_history
            )
            lines.append(format_series(name, history, points=12))
        if series == "cost":
            ratios = cost_ratios(results)
            lines.append(
                "final-cost ratio vs continuous: "
                + ", ".join(
                    f"{k}={v:.2f}x" for k, v in sorted(ratios.items())
                )
            )
        else:
            lines.append(
                "average error: "
                + ", ".join(
                    f"{k}={results[k].average_error:.4f}"
                    for k in sorted(results)
                )
            )
        return "\n".join(lines)

    text = benchmark(render)
    report(figure, text)

    if series == "error":
        # Shape: continuous matches periodical and beats online.
        assert (
            results["continuous"].average_error
            <= results["periodical"].average_error + 1e-3
        )
        assert (
            results["continuous"].average_error
            < results["online"].average_error
        )
    else:
        ratios = cost_ratios(results)
        assert ratios["periodical"] > 3.0
        assert ratios["online"] <= 1.0 + 1e-9
        # Continuous adds only a modest overhead over online.
        assert 1.0 / ratios["online"] < 2.0
