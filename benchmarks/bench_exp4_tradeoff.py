"""Experiment 4 — Figure 8: quality/cost trade-off.

One scatter point per deployment approach: (total deployment cost,
average quality). Paper punchline: continuous deployment delivers the
periodical approach's quality at a several-fold lower cost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments.common import taxi_scenario, url_scenario
from repro.experiments.exp4_tradeoff import (
    headline_claims,
    run_tradeoff,
)

_SCENARIOS = {
    "url": url_scenario(BENCH_SCALE),
    "taxi": taxi_scenario(BENCH_SCALE),
}


@pytest.mark.parametrize("dataset", ["url", "taxi"])
def test_fig8(benchmark, report, bench_record, dataset):
    scenario = _SCENARIOS[dataset]
    points = run_once(benchmark, lambda: run_tradeoff(scenario))
    claims = headline_claims(points)
    bench_record(
        f"exp4_fig8_{scenario.name.replace('-', '_')}",
        scenario=scenario,
        cost={f"cost_{p.approach}": p.total_cost for p in points},
        quality={
            f"avg_error_{p.approach}": p.average_error for p in points
        },
    )

    lines = [
        f"Figure 8 ({dataset}): average quality vs total cost",
        f"{'approach':<12} {'avg error':>10} {'total cost':>12}",
    ]
    for point in sorted(points, key=lambda p: p.approach):
        lines.append(
            f"{point.approach:<12} {point.average_error:>10.4f} "
            f"{point.total_cost:>12.3f}"
        )
    lines.append(
        f"periodical/continuous cost ratio: "
        f"{claims['cost_ratio']:.2f}x; quality delta "
        f"(periodical - continuous): {claims['quality_delta']:+.4f}"
    )
    report(f"fig8_{dataset}", "\n".join(lines))

    # Same quality (or better) at a several-fold lower cost.
    assert claims["cost_ratio"] > 3.0
    assert claims["quality_delta"] > -1e-3
