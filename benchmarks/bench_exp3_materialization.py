"""Experiment 3 — Table 4 and Figure 7: optimization effects.

Table 4: empirical vs analytical materialization utilization rate μ
for every sampling strategy at materialization rates 0.2 and 0.6. The
μ simulation is pure bookkeeping, so it runs at the paper's full
12,000-chunk scale (thinned to one sampling operation every 4 chunks
to keep the bench under a minute; μ is an average, so thinning does
not bias it).

Figure 7: total deployment cost per sampling strategy at
materialization rates {0.0, 0.2, 0.6, 1.0}, plus the NoOptimization
configuration. Paper shapes: cost decreases monotonically with the
materialization rate; at 0.2 the recency-aware samplers are cheaper
than uniform (higher μ); NoOptimization is the most expensive.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments.common import taxi_scenario, url_scenario
from repro.experiments.exp3_materialization import (
    FIG7_RATES,
    SAMPLERS,
    figure7,
    figure7_no_optimization,
    table4,
)

_SCENARIOS = {
    "url": url_scenario(BENCH_SCALE),
    "taxi": taxi_scenario(BENCH_SCALE),
}


def test_table4(benchmark, report, bench_record):
    cells = run_once(
        benchmark,
        lambda: table4(
            num_chunks=12_000,
            sample_size=100,
            window_size=6_000,
            sample_every=4,
            seed=0,
        ),
    )

    lines = [
        "Table 4: empirical (theoretical) μ per sampler and m/n",
        f"{'sampler':<10} {'m/n=0.2':>16} {'m/n=0.6':>16}",
    ]
    by_key = {(c.sampler, c.rate): c for c in cells}
    for sampler in ("uniform", "window", "time"):
        row = [f"{sampler:<10}"]
        for rate in (0.2, 0.6):
            cell = by_key[(sampler, rate)]
            if cell.theoretical is None:
                row.append(f"{cell.empirical:>10.2f} (  -  )")
            else:
                row.append(
                    f"{cell.empirical:>10.2f} ({cell.theoretical:.2f})"
                )
        lines.append(" ".join(row))
    report("table4", "\n".join(lines))
    bench_record(
        "exp3_table4",
        quality={
            f"mu_{c.sampler}_{c.rate:g}": c.empirical for c in cells
        },
        seed=0,
        params={
            "num_chunks": 12_000,
            "sample_size": 100,
            "window_size": 6_000,
            "sample_every": 4,
        },
    )

    # Closed forms match the simulation (the Table 4 agreement).
    for cell in cells:
        if cell.theoretical is not None:
            assert abs(cell.empirical - cell.theoretical) < 0.03
    # Recency-aware strategies beat uniform at every budget.
    for rate in (0.2, 0.6):
        assert (
            by_key[("time", rate)].empirical
            > by_key[("uniform", rate)].empirical
        )
        assert (
            by_key[("window", rate)].empirical
            > by_key[("uniform", rate)].empirical
        )


@pytest.mark.parametrize("dataset", ["url", "taxi"])
def test_fig7(benchmark, report, bench_record, dataset):
    scenario = _SCENARIOS[dataset]

    def run():
        costs = figure7(scenario)
        no_opt = figure7_no_optimization(scenario)
        return costs, no_opt

    costs, no_opt = run_once(benchmark, run)

    lines = [
        f"Figure 7 ({dataset}): total deployment cost",
        f"{'sampler':<10} "
        + " ".join(f"m/n={r:<6}" for r in FIG7_RATES),
    ]
    for sampler in SAMPLERS:
        row = " ".join(
            f"{costs[(sampler, rate)]:<10.3f}" for rate in FIG7_RATES
        )
        lines.append(f"{sampler:<10} {row}")
    lines.append(f"NoOptimization: {no_opt:.3f}")
    report(f"fig7_{dataset}", "\n".join(lines))
    bench_record(
        f"exp3_fig7_{scenario.name.replace('-', '_')}",
        scenario=scenario,
        cost={
            **{
                f"cost_{sampler}_{rate:g}": costs[(sampler, rate)]
                for sampler in SAMPLERS
                for rate in FIG7_RATES
            },
            "cost_no_optimization": no_opt,
        },
    )

    for sampler in SAMPLERS:
        series = [costs[(sampler, rate)] for rate in FIG7_RATES]
        # Cost decreases monotonically with the materialization rate.
        assert all(a >= b - 1e-9 for a, b in zip(series, series[1:]))
    # At m/n = 0.2, higher-μ samplers are cheaper.
    assert costs[("time", 0.2)] < costs[("uniform", 0.2)]
    # NoOptimization (time sampler, nothing materialized, statistics
    # recomputed per sample) must exceed the same sampler with only
    # materialization disabled, and by far the fully optimized run.
    fully_optimized = costs[("time", 1.0)]
    assert no_opt > costs[("time", 0.0)]
    assert no_opt > 1.5 * fully_optimized
