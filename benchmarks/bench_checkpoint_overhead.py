"""Checkpointing overhead guard.

Checkpointing buys crash recovery with writes on the deployment's hot
loop. Two separable costs exist:

* **Payload spill** — each raw/feature chunk payload is written to the
  checkpoint's ``chunks/`` area exactly once (append-only, content-
  immutable). This cost is *cadence-independent*: it is the price of a
  durable materialization cache, paid per chunk regardless of how
  often checkpoints are cut.
* **Per-checkpoint state capture** — pickling the artifact bundle and
  component state dicts and landing the envelope + refs sidecar
  atomically. This is the *cadence-dependent* overhead the cadence
  knob controls.

Following the projection pattern of ``bench_obs_overhead``, this
benchmark measures the steady-state per-checkpoint write cost (all
payloads already spilled — the state every checkpoint after the first
is in) on a bench-scale deployment, projects it onto the default
cadence, and asserts the projection stays under 5% of the per-chunk
processing baseline. A test-scale run additionally checks the
zero-distortion contract: checkpointing never changes what the
deployment computes.
"""

from __future__ import annotations

import itertools
import tempfile
import time

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments.common import make_deployment, url_scenario
from repro.reliability import CheckpointConfig

#: Maximum tolerated cadence-dependent overhead at the default cadence.
MAX_OVERHEAD_FRACTION = 0.05

#: The default production cadence (chunks between checkpoints).
CADENCE = 10

#: Bench-scale stream prefix used for the timing baseline.
PREFIX_CHUNKS = 60

#: Steady-state checkpoint writes averaged by the microbenchmark.
WRITE_SAMPLES = 20


def _fitted(scenario, checkpoint=None):
    deployment = make_deployment(
        scenario, "continuous", checkpoint=checkpoint
    )
    deployment.initial_fit(
        scenario.make_initial_data(),
        seed=scenario.seed,
        **scenario.initial_fit_kwargs,
    )
    return deployment


def test_checkpoint_overhead(benchmark, report, bench_record):
    bench = url_scenario(BENCH_SCALE)

    # Work baseline: uncheckpointed per-chunk wall time.
    baseline = _fitted(bench)
    started = time.perf_counter()
    baseline.run(itertools.islice(bench.make_stream(), PREFIX_CHUNKS))
    per_chunk = (time.perf_counter() - started) / PREFIX_CHUNKS

    def steady_state_write_seconds() -> float:
        """Average cost of one checkpoint once payloads are spilled."""
        with tempfile.TemporaryDirectory() as root:
            config = CheckpointConfig(
                directory=root, cadence_chunks=CADENCE, keep=3
            )
            deployment = _fitted(bench, checkpoint=config)
            result = deployment.run(
                itertools.islice(bench.make_stream(), PREFIX_CHUNKS)
            )
            deployment._write_checkpoint(PREFIX_CHUNKS, result)
            started = time.perf_counter()
            for _ in range(WRITE_SAMPLES):
                deployment._write_checkpoint(PREFIX_CHUNKS, result)
            return (time.perf_counter() - started) / WRITE_SAMPLES

    per_checkpoint = run_once(benchmark, steady_state_write_seconds)
    projected = per_checkpoint / (CADENCE * per_chunk)

    # Zero distortion, checked where runs are cheap (test scale).
    test = url_scenario("test")
    unchecked = _fitted(test).run(test.make_stream())
    with tempfile.TemporaryDirectory() as root:
        config = CheckpointConfig(
            directory=root, cadence_chunks=CADENCE, keep=3
        )
        checked = _fitted(test, checkpoint=config).run(
            test.make_stream()
        )

    report(
        "checkpoint_overhead",
        "\n".join(
            [
                f"checkpoint overhead at default cadence={CADENCE}",
                f"per-chunk baseline (bench scale): "
                f"{per_chunk * 1e3:.2f} ms",
                f"steady-state checkpoint write: "
                f"{per_checkpoint * 1e3:.2f} ms",
                f"projected overhead: {projected:.2%} of processing "
                f"(budget {MAX_OVERHEAD_FRACTION:.0%})",
                f"zero distortion (test scale): "
                f"{checked.error_history == unchecked.error_history}",
            ]
        ),
    )

    assert checked.error_history == unchecked.error_history
    assert checked.cost_history == unchecked.cost_history
    assert checked.counters == unchecked.counters
    assert projected < MAX_OVERHEAD_FRACTION

    bench_record(
        f"checkpoint_overhead_{bench.name.replace('-', '_')}",
        scenario=bench,
        count={
            "zero_distortion": float(
                checked.error_history == unchecked.error_history
            ),
        },
        wall={
            "per_chunk_s": per_chunk,
            "per_checkpoint_s": per_checkpoint,
        },
        params={
            "cadence": CADENCE,
            "prefix_chunks": PREFIX_CHUNKS,
            "write_samples": WRITE_SAMPLES,
        },
    )
