"""§5.5 — model staleness during training.

The paper's discussion section argues that the periodical approach
leaves the served model stale for the whole duration of every full
retraining, while a proactive training finishes in fractions of a
second (200 ms URL / 700 ms Taxi in their setup), so the continuous
platform always serves an up-to-date model.

This bench measures the same quantity on the virtual clock: the
average and maximum duration of a training event per approach. The
shape to reproduce: a single retraining takes orders of magnitude
longer than a single proactive training.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments.common import (
    run_continuous,
    run_periodical,
    taxi_scenario,
    url_scenario,
)

_SCENARIOS = {
    "url": url_scenario(BENCH_SCALE),
    "taxi": taxi_scenario(BENCH_SCALE),
}


@pytest.mark.parametrize("dataset", ["url", "taxi"])
def test_staleness(benchmark, report, bench_record, dataset):
    scenario = _SCENARIOS[dataset]

    def run():
        return (
            run_continuous(scenario),
            run_periodical(scenario),
        )

    continuous, periodical = run_once(benchmark, run)

    ratio = (
        periodical.average_training_duration
        / continuous.average_training_duration
    )
    report(
        f"staleness_{dataset}",
        f"Model staleness per training event ({dataset}, cost units)\n"
        f"proactive training : avg "
        f"{continuous.average_training_duration:.4f}, max "
        f"{continuous.max_training_duration:.4f} "
        f"({len(continuous.training_durations)} instances)\n"
        f"full retraining    : avg "
        f"{periodical.average_training_duration:.4f}, max "
        f"{periodical.max_training_duration:.4f} "
        f"({len(periodical.training_durations)} retrainings)\n"
        f"a retraining stalls the model "
        f"{ratio:.0f}x longer than a proactive training",
    )

    # The paper's §5.5 point: retraining windows dwarf proactive ones.
    assert ratio > 20.0
    assert (
        periodical.max_training_duration
        > continuous.max_training_duration * 10
    )

    bench_record(
        f"staleness_{scenario.name.replace('-', '_')}",
        scenario=scenario,
        cost={
            "proactive_avg_duration": (
                continuous.average_training_duration
            ),
            "proactive_max_duration": continuous.max_training_duration,
            "retrain_avg_duration": (
                periodical.average_training_duration
            ),
            "retrain_max_duration": periodical.max_training_duration,
        },
        count={
            "proactive_instances": len(continuous.training_durations),
            "retrain_instances": len(periodical.training_durations),
        },
    )
