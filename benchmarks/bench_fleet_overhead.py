"""Fleet-scheduler overhead guard.

The fleet orchestrator inserts a scheduling decision (signals →
stride allocation → byte quotas → balance re-score) in front of every
epoch of real pipeline work. The scheduler exists to *spend* a shared
budget well, so its own cost must be noise. This benchmark makes that
budget executable, in the projection style of
``bench_monitor_overhead``:

1. run a small mixed URL/taxi fleet end to end and take its wall time
   as the work baseline (also proving the run trains and stays
   deterministic);
2. microbenchmark one ``FleetScheduler.allocate`` call — priced on a
   live scheduler fed realistic signals, so stride bookkeeping, the
   starvation guard, and the largest-remainder byte split are all
   inside the timed region;
3. project the per-epoch cost onto the run's epoch count and assert
   the projection stays under 5% of the fleet's wall time.

Baseline workflow: by default the run appends a record to the
``BENCH_fleet_overhead.json`` trajectory; with ``REPRO_BENCH_CHECK``
set (``make bench-check``) the fresh run is gated against the
committed trajectory instead — exact-match on the deterministic
counts and errors, median-of-K with a generous budget on wall times.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import BASELINE_DIR, BENCH_SCALE, run_once
from repro.fleet import (
    FleetOrchestrator,
    FleetScheduler,
    TenantSignals,
    make_fleet,
)

SEED = 11

#: Maximum tolerated projected scheduler overhead, relative to the
#: fleet run's wall time.
MAX_OVERHEAD_FRACTION = 0.05

#: Fleet dimensions per scale (tenants, chunks per tenant).
_FLEETS = {"test": (6, 8), "bench": (12, 16)}

_ALLOCATE_ITERATIONS = 2_000


def _fleet_spec():
    tenants, chunks = _FLEETS.get(BENCH_SCALE, _FLEETS["bench"])
    return make_fleet(tenants, seed=SEED, chunks=chunks, rows=12)


def _allocate_seconds(spec, iterations=_ALLOCATE_ITERATIONS) -> float:
    """Average wall cost of one full scheduling decision."""
    scheduler = FleetScheduler(spec)
    staleness = [0] * spec.num_tenants
    started = time.perf_counter()
    for _ in range(iterations):
        signals = [
            TenantSignals(
                tenant=i,
                new_rows=tenant.rows,
                drift_score=0.1 if i % 2 else 0.0,
                staleness_epochs=staleness[i],
                weight=tenant.weight,
                strategy=tenant.strategy,
                active=True,
            )
            for i, tenant in enumerate(spec.tenants)
        ]
        allocation = scheduler.allocate(signals)
        for i, slots in enumerate(allocation.train_slots):
            staleness[i] = 0 if slots else staleness[i] + 1
    return (time.perf_counter() - started) / iterations


def test_fleet_overhead(benchmark, report, bench_record):
    spec = _fleet_spec()

    def _run():
        started = time.perf_counter()
        result = FleetOrchestrator(spec).run()
        return result, time.perf_counter() - started

    result, fleet_wall = run_once(benchmark, _run)
    per_allocate = _allocate_seconds(spec)
    projected = result.epochs * per_allocate
    budget = MAX_OVERHEAD_FRACTION * fleet_wall

    report(
        "fleet_overhead",
        "\n".join(
            [
                "fleet-scheduler overhead projection",
                f"fleet: {spec.num_tenants} tenants x "
                f"{max(t.chunks for t in spec.tenants)} chunks "
                f"({BENCH_SCALE} scale), policy={spec.policy}",
                f"fleet wall time: {fleet_wall * 1e3:.2f} ms "
                f"({result.epochs} epochs, "
                f"{sum(result.trainings)} trainings)",
                f"allocate cost: {per_allocate * 1e6:.2f} us/epoch",
                f"projected scheduler overhead: "
                f"{projected * 1e6:.1f} us "
                f"({projected / fleet_wall:.4%} of wall)",
                f"budget ({MAX_OVERHEAD_FRACTION:.0%}): "
                f"{budget * 1e3:.2f} ms",
                f"aggregate error: {result.aggregate_error:.5f}",
                f"digest: {result.digest[:16]}...",
            ]
        ),
    )

    assert result.epochs > 0
    assert sum(result.trainings) > 0
    assert projected < budget

    count = {
        "tenants": spec.num_tenants,
        "epochs": result.epochs,
        "trainings": sum(result.trainings),
        "rescues": result.rescues,
        "overdrafts": result.overdrafts,
    }
    quality = {"aggregate_error": result.aggregate_error}
    wall = {
        "fleet_run_s": fleet_wall,
        "allocate_s": per_allocate,
    }
    params = {
        "scale": BENCH_SCALE,
        "policy": spec.policy,
        "allocate_iterations": _ALLOCATE_ITERATIONS,
    }

    if os.environ.get("REPRO_BENCH_CHECK"):
        from repro.obs import (
            BaselineStore,
            MetricValue,
            TolerancePolicy,
            check_record,
            make_record,
        )
        from repro.obs.perf import format_report

        metrics = {
            key: MetricValue(float(value), "count")
            for key, value in count.items()
        }
        metrics.update(
            {
                key: MetricValue(float(value), "quality")
                for key, value in quality.items()
            }
        )
        metrics.update(
            {
                key: MetricValue(float(value), "wall")
                for key, value in wall.items()
            }
        )
        fresh = make_record(
            name="fleet_overhead",
            metrics=metrics,
            seed=SEED,
            params=params,
        )
        history = BaselineStore(BASELINE_DIR).load("fleet_overhead")
        verdict = check_record(
            fresh, history, TolerancePolicy(wall_budget=4.0)
        )
        report("fleet_overhead_gate", format_report(verdict))
        assert verdict.ok, (
            "fleet overhead regressed against "
            f"{BASELINE_DIR}/BENCH_fleet_overhead.json"
        )
    else:
        bench_record(
            "fleet_overhead",
            count=count,
            quality=quality,
            wall=wall,
            seed=SEED,
            params=params,
        )
