"""Experiment 2 (part 1) — Table 3 and Figure 5: system tuning.

Table 3: hyperparameter grid (Adam / RMSProp / AdaDelta x L2 strength
1e-2 / 1e-3 / 1e-4) scored on a held-out split of the initial data,
for both datasets.

Figure 5: the best strength per adaptation technique deployed
(continuous) on a 10% prefix of the stream. The paper's conclusion —
the initial-training hyperparameter ranking carries over to the
deployment phase — is reported (and is a statistical tendency, not a
hard invariant at this scale, so it is printed rather than asserted).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.evaluation.report import format_series
from repro.experiments.common import taxi_scenario, url_scenario
from repro.experiments.exp2_tuning import (
    ADAPTATIONS,
    REG_STRENGTHS,
    best_per_adaptation,
    figure5,
    ranking_agreement,
    table3,
)

_SCENARIOS = {
    "url": url_scenario(BENCH_SCALE),
    "taxi": taxi_scenario(BENCH_SCALE),
}
_GRIDS: dict = {}


@pytest.mark.parametrize("dataset", ["url", "taxi"])
def test_table3(benchmark, report, bench_record, dataset):
    scenario = _SCENARIOS[dataset]
    grid = run_once(benchmark, lambda: table3(scenario))
    _GRIDS[dataset] = grid
    bench_record(
        f"exp2_table3_{scenario.name.replace('-', '_')}",
        scenario=scenario,
        quality={
            f"heldout_{adaptation}_{strength:g}": value
            for (adaptation, strength), value in grid.items()
        },
    )

    lines = [
        f"Table 3 ({dataset}): held-out error per adaptation x L2",
        "adaptation  " + "  ".join(f"{s:g}" for s in REG_STRENGTHS),
    ]
    for adaptation in ADAPTATIONS:
        row = "  ".join(
            f"{grid[(adaptation, s)]:.4f}" for s in REG_STRENGTHS
        )
        lines.append(f"{adaptation:<10}  {row}")
    best = best_per_adaptation(grid)
    lines.append(
        "best strength per adaptation: "
        + ", ".join(f"{k}={v:g}" for k, v in sorted(best.items()))
    )
    report(f"table3_{dataset}", "\n".join(lines))

    assert len(grid) == 9
    assert all(np.isfinite(v) for v in grid.values())


@pytest.mark.parametrize("dataset", ["url", "taxi"])
def test_fig5(benchmark, report, bench_record, dataset):
    scenario = _SCENARIOS[dataset]
    grid = _GRIDS[dataset]
    best = best_per_adaptation(grid)
    histories = run_once(
        benchmark, lambda: figure5(scenario, best, deploy_fraction=0.1)
    )
    bench_record(
        f"exp2_fig5_{scenario.name.replace('-', '_')}",
        scenario=scenario,
        quality={
            f"final_error_{adaptation}": history[-1]
            for adaptation, history in histories.items()
        },
        params={"deploy_fraction": 0.1},
    )

    lines = [
        f"Figure 5 ({dataset}): deployment error per adaptation "
        f"(best strength each)",
    ]
    for adaptation, history in histories.items():
        lines.append(format_series(adaptation, history, points=10))
    agree = ranking_agreement(grid, histories)
    lines.append(
        f"initial-training winner also wins deployment: {agree}"
    )
    report(f"fig5_{dataset}", "\n".join(lines))

    assert set(histories) == set(ADAPTATIONS)
    expected = max(int(scenario.num_chunks * 0.1), 1)
    assert all(len(h) == expected for h in histories.values())
