"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` needs PEP 660 editable-wheel support, which this
offline image lacks; ``python setup.py develop`` (or the Makefile's
``make install``) installs the package in editable mode instead. All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
