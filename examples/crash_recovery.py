"""Kill a deployment with SIGKILL mid-stream, recover, verify bytes.

The reliability layer's promise is that a crash costs only redo work,
never correctness: a run killed at an arbitrary chunk and recovered
from its latest checkpoint finishes **byte-identical** — same error
curve, same cost totals, same counters — to a run that never crashed.

This harness checks that promise against a *real* crash, not a
simulated one: it launches ``python -m repro run --sigkill-at K`` as a
subprocess, which SIGKILLs itself before reading chunk ``K`` (no
cleanup handlers, no atexit — the process simply vanishes, exactly
like an OOM kill). ``K`` is drawn randomly (and logged, so a failure
is reproducible) from the range where at least one checkpoint exists.
The parent then runs ``python -m repro recover`` in a fresh process
and compares its output line-for-line against an uninterrupted
reference run.

Run:  python examples/crash_recovery.py
Used by CI's ``recovery-smoke`` job.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

#: Checkpoint interval for the smoke deployment.
CADENCE = 4

#: The test-scale URL stream length (chunks).
STREAM_CHUNKS = 40


def repro(*args: str, cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(cwd / "src"), env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def result_lines(output: str) -> list:
    """The deterministic payload of a run's output: everything except
    checkpoint/recovery bookkeeping lines (those legitimately differ
    between an uninterrupted run and a recovered one)."""
    return [
        line
        for line in output.splitlines()
        if not line.startswith(("recovered from", "last checkpoint"))
    ]


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    base = [
        "--approach", "continuous",
        "--dataset", "url",
        "--scale", "test",
    ]
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint_dir = str(Path(scratch) / "checkpoints")
        reliability = [
            "--checkpoint-dir", checkpoint_dir,
            "--cadence", str(CADENCE),
        ]

        print("reference run (uninterrupted)...")
        reference = repro("run", *base, cwd=root)
        assert reference.returncode == 0, reference.stderr

        # Kill somewhere a checkpoint already exists but the stream
        # has not finished. Logged so a failing K is reproducible.
        kill_at = random.randint(CADENCE + 1, STREAM_CHUNKS - 2)
        print(f"crash run: SIGKILL before chunk {kill_at}")
        crashed = repro(
            "run", *base, *reliability,
            "--sigkill-at", str(kill_at),
            cwd=root,
        )
        assert crashed.returncode == -signal.SIGKILL, (
            f"expected the run to die by SIGKILL, got "
            f"rc={crashed.returncode}\n{crashed.stderr}"
        )
        checkpoints = sorted(
            Path(checkpoint_dir).glob("ckpt-*.ckpt")
        )
        assert checkpoints, "no checkpoint survived the kill"
        print(
            f"  died as expected; {len(checkpoints)} checkpoint(s) "
            f"on disk, newest {checkpoints[-1].name}"
        )

        print("recovering in a fresh process...")
        recovered = repro("recover", *base, *reliability, cwd=root)
        assert recovered.returncode == 0, recovered.stderr
        assert "recovered from checkpoint at chunk" in recovered.stdout

        expected = result_lines(reference.stdout)
        actual = result_lines(recovered.stdout)
        assert actual == expected, (
            "recovered run diverged from the uninterrupted reference "
            f"(killed at chunk {kill_at}):\n"
            f"--- expected ---\n{reference.stdout}\n"
            f"--- actual ---\n{recovered.stdout}"
        )
        print(
            f"byte-identical resume verified "
            f"(killed at chunk {kill_at}, "
            f"resumed at chunk "
            f"{checkpoints[-1].stem.split('-')[1].lstrip('0')})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
