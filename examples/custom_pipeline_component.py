"""Build a custom pipeline component with online statistics.

The paper's platform supports user-defined components (§3.1/§4.3):
implement ``update`` (fold a batch into incrementally maintainable
statistics) and ``transform`` (apply them without mutating state).

This example implements a *clipping* component that winsorises a
column at mean ± k·std using the library's streaming moments, chains
it into a pipeline in front of a linear regression, and shows that the
statistics stay current during deployment with no extra scans.

Run:  python examples/custom_pipeline_component.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import (
    Adam,
    ContinuousConfig,
    ContinuousDeployment,
    LinearRegression,
    ScheduleConfig,
    Table,
)
from repro.pipeline.component import Batch, ComponentKind, PipelineComponent
from repro.pipeline.components.assembler import FeatureAssembler
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.statistics import RunningMoments


class StreamingClipper(PipelineComponent):
    """Winsorise a column at ``mean ± k * std`` (both streaming).

    ``update`` folds the batch into a :class:`RunningMoments`; the
    statistic (mean/std) is incrementally maintainable, so the
    component qualifies for the platform's online statistics
    computation — no second scan is ever needed.
    """

    kind = ComponentKind.DATA_TRANSFORMATION

    def __init__(self, column: str, k: float = 3.0,
                 name: str | None = None) -> None:
        super().__init__(name)
        self.column = column
        self.k = k
        self._moments = RunningMoments(dim=1)

    def update(self, batch: Batch) -> None:
        self._moments.update(
            np.asarray(batch.column(self.column), dtype=np.float64)
        )

    def transform(self, batch: Batch) -> Batch:
        values = np.asarray(batch.column(self.column), dtype=np.float64)
        if self._moments.total_count:
            center = self._moments.mean()[0]
            spread = self._moments.std()[0]
            low = center - self.k * spread
            high = center + self.k * spread
            values = np.clip(values, low, high)
        return batch.with_column(self.column, values)

    def reset(self) -> None:
        self._moments = RunningMoments(dim=1)


def make_stream(num_chunks=60, rows=40, seed=0):
    """y = 2x + 1, but 3% of the x readings are corrupted (x * 50)."""
    rng = np.random.default_rng(seed)
    for __ in range(num_chunks):
        x = rng.standard_normal(rows)
        y = 2.0 * x + 1.0
        corrupted = rng.random(rows) < 0.03
        observed = np.where(corrupted, x * 50.0, x)
        yield Table({"x": observed, "y": y})


def deploy(with_clipper: bool):
    components = []
    clipper = None
    if with_clipper:
        clipper = StreamingClipper(column="x", k=1.0, name="clipper")
        components.append(clipper)
    components.append(FeatureAssembler(["x"], "y", name="assembler"))
    model = LinearRegression(num_features=1)
    deployment = ContinuousDeployment(
        Pipeline(components),
        model,
        Adam(0.05),
        config=ContinuousConfig(
            sample_size_chunks=8,
            schedule=ScheduleConfig(interval_chunks=5),
            sampler="uniform",
        ),
        metric="regression",
        seed=0,
    )
    initial = list(make_stream(num_chunks=1, rows=400, seed=99))
    deployment.initial_fit(initial, max_iterations=500, tolerance=1e-8)
    result = deployment.run(make_stream())
    return result, model, clipper


def main() -> None:
    warnings.simplefilter("ignore")

    clipped, clipped_model, clipper = deploy(with_clipper=True)
    plain, plain_model, __ = deploy(with_clipper=False)

    print("deployment on a stream with 3% corrupted sensor readings:")
    print(f"  with StreamingClipper   : final RMSE "
          f"{clipped.final_error:.3f}, weight "
          f"{clipped_model.weights[0]:+.3f}")
    print(f"  without (raw readings)  : final RMSE "
          f"{plain.final_error:.3f}, weight "
          f"{plain_model.weights[0]:+.3f}")
    print()
    print(f"clipper statistics cover "
          f"{int(clipper._moments.total_count)} rows — maintained "
          f"entirely by the online pass (no extra scans), so the")
    print("custom component is a first-class citizen of online "
          "statistics computation.")


if __name__ == "__main__":
    main()
