"""Quickstart: deploy a pipeline + model with continuous training.

Builds the paper's URL pipeline (parse -> impute -> scale -> hash), an
SVM, and a continuous deployment with proactive training every 5
chunks over time-based samples of the history. Runs a prequential
deployment on a synthetic drifting stream and prints the quality/cost
summary.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import warnings

from repro import (
    Adam,
    ContinuousConfig,
    ContinuousDeployment,
    L2,
    LinearSVM,
    ScheduleConfig,
    URLStreamGenerator,
    make_url_pipeline,
)


def main() -> None:
    warnings.simplefilter("ignore")  # demo-scale runs hit iteration caps

    # 1. A synthetic drifting URL-like stream (stands in for the Ma et
    #    al. malicious-URL dataset): 120 chunks of 50 svmlight lines.
    generator = URLStreamGenerator(
        num_chunks=120, rows_per_chunk=50, seed=7
    )

    # 2. The deployed artifacts: pipeline + model + optimizer.
    hash_dim = 1024
    pipeline = make_url_pipeline(hash_features=hash_dim)
    model = LinearSVM(num_features=hash_dim, regularizer=L2(1e-3))

    # 3. Continuous deployment: online updates per chunk + a proactive
    #    SGD iteration every 5 chunks over 16 time-sampled chunks.
    deployment = ContinuousDeployment(
        pipeline,
        model,
        Adam(learning_rate=0.05),
        config=ContinuousConfig(
            sample_size_chunks=16,
            schedule=ScheduleConfig(kind="static", interval_chunks=5),
            sampler="time",
            half_life=30,
            online_batch_rows=1,
        ),
        metric="classification",
        seed=7,
    )

    # 4. Initial training on "day 0" data, then deploy.
    print("initial training ...")
    deployment.initial_fit(
        generator.initial_data(1000),
        max_iterations=500,
        tolerance=1e-6,
    )

    print("deploying on 120 chunks (test-then-train) ...")
    result = deployment.run(generator.stream())

    # 5. What the platform did, and what it cost.
    print()
    print(f"cumulative prequential error : {result.final_error:.4f}")
    print(f"average error over time      : {result.average_error:.4f}")
    print(f"total deployment cost (units): {result.total_cost:.3f}")
    print(f"proactive trainings executed : "
          f"{result.counters['proactive_trainings']}")
    print(f"chunks sampled for training  : "
          f"{result.counters['chunks_sampled']}")
    print(f"chunks re-materialized       : "
          f"{result.counters['chunks_rematerialized']}")
    print(f"materialization utilization μ: "
          f"{deployment.materialization_utilization():.3f}")
    breakdown = result.cost_breakdown.by_category
    print("cost by category             :", {
        k: round(v, 3) for k, v in sorted(breakdown.items())
    })


if __name__ == "__main__":
    main()
