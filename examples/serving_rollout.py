"""Shadow → canary → promote → rollback: the serving layer end-to-end.

The continuous platform keeps *producing* models; this example shows
how the serving layer decides which ones get to *serve*. It walks one
registry through the full lifecycle:

1. bootstrap — train an initial model, register it, promote it live;
2. a good candidate (trained further) is staged as a canary; the
   quality gate sees a sustained win and auto-promotes it;
3. a corrupted candidate (a broken training run) is staged next; the
   gate catches the regression on canary traffic and rejects it —
   the live version never changes;
4. a regression *after* promotion (the live model is damaged in
   place, standing in for concept failure) trips the baseline
   monitor, and the registry rolls back to the previous version.

Every transition lands in the obs trace; the final registry listing
shows the full, auditable lineage.

Run:  python examples/serving_rollout.py
"""

from __future__ import annotations

import tempfile
import warnings

import numpy as np

from repro import Adam, L2, LinearSVM, Telemetry, URLStreamGenerator
from repro.datasets.url import make_url_pipeline
from repro.ml.sgd import SGDTrainer
from repro.serving import (
    GateConfig,
    ModelRegistry,
    RolloutController,
    ServingEndpoint,
)

NUM_CHUNKS = 60
HASH_DIM = 256
SEED = 11


def make_generator() -> URLStreamGenerator:
    return URLStreamGenerator(
        num_chunks=NUM_CHUNKS, rows_per_chunk=50, seed=SEED
    )


def train_on(pipeline, model, optimizer, generator, chunks) -> None:
    trainer = SGDTrainer(model, optimizer)
    for index in chunks:
        features = pipeline.update_transform_to_features(
            generator.chunk(index)
        )
        for _ in range(20):
            trainer.step(features.matrix, features.labels)


def serve_until_settled(endpoint, controller, generator, start, stop):
    """Serve chunks [start, stop); return the controller actions."""
    actions = []
    for index in range(start, stop):
        served = endpoint.predict(
            generator.chunk(index), chunk_index=index
        )
        action = controller.observe(served)
        if action != "continue":
            actions.append((index, action))
    return actions


def main() -> None:
    warnings.simplefilter("ignore")
    generator = make_generator()
    telemetry = Telemetry()

    with tempfile.TemporaryDirectory() as root:
        registry = ModelRegistry(root, telemetry=telemetry)

        # 1. Bootstrap: a lightly-trained initial model goes live.
        pipeline = make_url_pipeline(HASH_DIM)
        model = LinearSVM(HASH_DIM, regularizer=L2(1e-3))
        optimizer = Adam(0.05)
        train_on(pipeline, model, optimizer, generator, range(2))
        v1 = registry.register(pipeline, model, optimizer)
        registry.promote(v1.version, reason="initial deployment")
        print(f"bootstrap: {v1.version} is live")

        endpoint = ServingEndpoint(
            registry, seed=SEED, telemetry=telemetry
        )
        controller = RolloutController(
            registry,
            endpoint,
            metric="classification",
            config=GateConfig(
                min_samples=60,
                promote_after=2,
                rollback_after=1,
                rollback_margin=0.2,
                drift_window=40,
                drift_ratio=1.0,
            ),
            telemetry=telemetry,
        )

        # 2. A corrupted candidate: the gate must reject it while the
        #    canary fraction shields most of the traffic.
        broken_pipeline = make_url_pipeline(HASH_DIM)
        broken_model = LinearSVM(HASH_DIM, regularizer=L2(1e-3))
        broken_optimizer = Adam(0.05)
        train_on(
            broken_pipeline, broken_model, broken_optimizer,
            generator, range(3),
        )
        broken_model.weights *= -1.0  # a diverged training run
        v2 = registry.register(
            broken_pipeline, broken_model, broken_optimizer
        )
        controller.stage(v2.version, mode="canary", fraction=0.4)
        actions = serve_until_settled(
            endpoint, controller, generator, 14, 26
        )
        print(f"bad candidate  {v2.version}: {actions} "
              f"(live={registry.live_version})")

        # 3. A good candidate: the same lineage, trained much
        #    further; the gate sees a sustained win and promotes.
        train_on(pipeline, model, optimizer, generator, range(2, 14))
        v3 = registry.register(
            pipeline, model, optimizer, chunks_observed=14
        )
        controller.stage(v3.version, mode="canary", fraction=0.4)
        actions = serve_until_settled(
            endpoint, controller, generator, 26, 40
        )
        print(f"good candidate {v3.version}: {actions} "
              f"(live={registry.live_version})")

        # 4. Post-promotion regression: damage the live model in
        #    place (standing in for concept failure) — the baseline
        #    monitor catches it and the registry rolls back.
        live_before = registry.live_version
        endpoint.primary_bundle.model.weights *= -1.0
        actions = serve_until_settled(
            endpoint, controller, generator, 40, 60
        )
        print(f"live regression: {actions} "
              f"(live={registry.live_version}, was {live_before})")

        # The audit trail.
        print("\nregistry lineage:")
        for info in registry.list_versions():
            print(
                f"  {info.version}  {info.status:<12} "
                f"parent={info.parent or '-':<6} "
                f"chunks={info.chunks_observed:<4} "
                f"metrics={info.metrics}"
            )
        rollout_events = [
            event["name"]
            for event in telemetry.events
            if str(event.get("name", "")).startswith(
                ("rollout.", "registry.")
            )
        ]
        print(f"\nobs transitions: {rollout_events}")
        counts = {
            action: int(np.sum([
                1 for entry in controller.log
                if entry["action"] == action
            ]))
            for action in ("stage", "promote", "reject", "rollback")
        }
        print(f"controller log: {counts}")


if __name__ == "__main__":
    main()
