"""Dynamic materialization: the μ analysis of §3.2.2, hands-on.

Reproduces the reasoning behind Table 4: for a bounded feature-chunk
store, what fraction of proactive-training samples is served without
re-materialization (μ), per sampling strategy? Compares the paper's
closed forms (equations 4 and 5) against a pure-bookkeeping simulation
at the paper's full 12,000-chunk scale, and shows the paper's sizing
example (m = 7,200 -> μ ≈ 0.91).

Run:  python examples/materialization_analysis.py
"""

from __future__ import annotations

from repro.data.materialization import (
    empirical_utilization,
    utilization_random,
    utilization_window,
)
from repro.data.sampling import (
    TimeBasedSampler,
    UniformSampler,
    WindowBasedSampler,
)

NUM_CHUNKS = 12_000
SAMPLE_SIZE = 100
WINDOW = 6_000
HALF_LIFE = NUM_CHUNKS / 4


def main() -> None:
    print("The paper's sizing example (§3.2.2):")
    mu = utilization_random(NUM_CHUNKS, 7_200)
    print(f"  N=12000, m=7200, uniform sampling -> μ = {mu:.3f} "
          f"(paper: 0.91)")
    print()

    print(f"μ per sampling strategy (N={NUM_CHUNKS}, s={SAMPLE_SIZE}, "
          f"simulation thinned 8x):")
    header = f"{'sampler':<10} {'m/n':>5} {'empirical':>10} {'theory':>8}"
    print(header)
    print("-" * len(header))
    for rate in (0.2, 0.6):
        budget = int(rate * NUM_CHUNKS)
        rows = [
            ("uniform", UniformSampler(),
             utilization_random(NUM_CHUNKS, budget)),
            ("window", WindowBasedSampler(WINDOW),
             utilization_window(NUM_CHUNKS, budget, WINDOW)),
            ("time", TimeBasedSampler(HALF_LIFE), None),
        ]
        for name, sampler, theory in rows:
            empirical = empirical_utilization(
                sampler,
                big_n=NUM_CHUNKS,
                m=budget,
                s=SAMPLE_SIZE,
                rng=0,
                sample_every=8,
            )
            theory_text = f"{theory:8.3f}" if theory is not None else "      --"
            print(f"{name:<10} {rate:>5} {empirical:>10.3f} {theory_text}")
    print()
    print("Reading the table: a higher μ means fewer re-materializations")
    print("during proactive training. Recency-weighted strategies keep")
    print("sampling inside the (young) materialized set, which is why the")
    print("paper recommends them when storage is scarce.")


if __name__ == "__main__":
    main()
