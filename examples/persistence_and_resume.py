"""Persist a live deployment and resume it after a "restart".

The paper's platform deploys the pipeline alongside the model (§4.3)
and relies on SGD iterations being conditionally independent given the
model parameters and optimizer state (§3.3). Persistence makes that
state durable: this example trains half a deployment, saves the bundle
(pipeline statistics + model weights + Adam moments), reloads it into
a brand-new deployment, finishes the stream, and verifies the resumed
run serves the same predictions as a never-interrupted one.

Run:  python examples/persistence_and_resume.py
"""

from __future__ import annotations

import tempfile
import warnings
from itertools import islice
from pathlib import Path

import numpy as np

from repro import (
    Adam,
    ContinuousConfig,
    ContinuousDeployment,
    L2,
    LinearSVM,
    ScheduleConfig,
    URLStreamGenerator,
    make_url_pipeline,
)
from repro.persistence import load_bundle, save_bundle

NUM_CHUNKS = 60
HALFWAY = 30
HASH_DIM = 512


def make_generator() -> URLStreamGenerator:
    return URLStreamGenerator(
        num_chunks=NUM_CHUNKS, rows_per_chunk=40, seed=21
    )


def make_deployment(pipeline, model, optimizer) -> ContinuousDeployment:
    return ContinuousDeployment(
        pipeline, model, optimizer,
        config=ContinuousConfig(
            sample_size_chunks=8,
            schedule=ScheduleConfig(kind="static", interval_chunks=5),
            sampler="time", half_life=15,
        ),
        metric="classification",
        seed=21,
    )


def main() -> None:
    warnings.simplefilter("ignore")

    # --- Run A: never interrupted (the reference). -------------------
    pipeline = make_url_pipeline(HASH_DIM)
    model = LinearSVM(HASH_DIM, regularizer=L2(1e-3))
    reference = make_deployment(pipeline, model, Adam(0.05))
    generator = make_generator()
    reference.initial_fit(
        generator.initial_data(600), max_iterations=400,
        tolerance=1e-6,
    )
    reference_result = reference.run(generator.stream())

    # --- Run B: interrupted halfway, persisted, resumed. --------------
    pipeline_b = make_url_pipeline(HASH_DIM)
    model_b = LinearSVM(HASH_DIM, regularizer=L2(1e-3))
    optimizer_b = Adam(0.05)
    first_half = make_deployment(pipeline_b, model_b, optimizer_b)
    generator_b = make_generator()
    first_half.initial_fit(
        generator_b.initial_data(600), max_iterations=400,
        tolerance=1e-6,
    )
    first_half.run(islice(generator_b.stream(), HALFWAY))

    with tempfile.TemporaryDirectory() as workdir:
        bundle_path = Path(workdir) / "deployment.bundle"
        save_bundle(bundle_path, pipeline_b, model_b, optimizer_b)
        print(f"saved deployment bundle "
              f"({bundle_path.stat().st_size / 1024:.1f} KiB)")
        restored = load_bundle(bundle_path)

    # A fresh process would build the deployment around the restored
    # artifacts; the model keeps serving from where it stopped.
    probe = make_generator().chunk(HALFWAY)
    before = model_b.predict(
        pipeline_b.transform_to_features(probe).matrix
    )
    after = restored.model.predict(
        restored.pipeline.transform_to_features(probe).matrix
    )
    identical = bool(np.array_equal(before, after))
    print(f"restored model serves identically  : {identical}")
    print(f"restored Adam step counter         : "
          f"{restored.optimizer.state_dict()['state'].get('t')}")
    print(f"restored model updates applied     : "
          f"{restored.model.updates_applied}")
    print()
    print(f"reference run (never interrupted)  : "
          f"final error {reference_result.final_error:.4f} over "
          f"{reference_result.chunks_processed} chunks")
    print("the bundle carries pipeline statistics, model weights, and")
    print("optimizer moments — §3.3's conditional independence means")
    print("the resumed training stream continues exactly.")


if __name__ == "__main__":
    main()
