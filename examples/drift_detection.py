"""Native drift detection (the paper's §7 future work, implemented).

Deploys the same model twice on a stream with an *abrupt* concept
shift halfway through:

1. plain continuous deployment — proactive training on its regular
   schedule only;
2. drift-aware continuous deployment — a Page–Hinkley detector watches
   the prequential errors and fires an immediate proactive-training
   burst when the shift is detected.

The drift-aware variant recovers faster because it reacts to the
change instead of waiting for the next scheduled training.

Run:  python examples/drift_detection.py
"""

from __future__ import annotations

import warnings

from repro import (
    Adam,
    ContinuousConfig,
    ContinuousDeployment,
    L2,
    LinearSVM,
    ScheduleConfig,
    URLStreamGenerator,
    make_url_pipeline,
)
from repro.datasets.drift import AbruptDrift
from repro.driftdetect import DriftAwareContinuousDeployment, PageHinkley
from repro.evaluation.report import format_series

NUM_CHUNKS = 120
SHIFT_AT = 60
HASH_DIM = 512


def make_generator() -> URLStreamGenerator:
    return URLStreamGenerator(
        num_chunks=NUM_CHUNKS,
        rows_per_chunk=50,
        base_features=300,
        new_features_per_chunk=0,
        drift=AbruptDrift(at_chunks=[SHIFT_AT], magnitude=0.9),
        label_noise=0.02,
        seed=11,
    )


def make_config() -> ContinuousConfig:
    return ContinuousConfig(
        sample_size_chunks=16,
        # Deliberately sparse schedule so the drift response shows.
        schedule=ScheduleConfig(kind="static", interval_chunks=20),
        sampler="window",
        window_size=20,
    )


def deploy(drift_aware: bool):
    pipeline = make_url_pipeline(hash_features=HASH_DIM)
    model = LinearSVM(num_features=HASH_DIM, regularizer=L2(1e-3))
    if drift_aware:
        deployment = DriftAwareContinuousDeployment(
            pipeline, model, Adam(0.05),
            detector=PageHinkley(
                delta=0.05, threshold=10.0, minimum_observations=50
            ),
            bursts_per_drift=5,
            burst_window=5,
            burst_delay_chunks=4,
            config=make_config(),
            metric="classification",
            seed=11,
        )
    else:
        deployment = ContinuousDeployment(
            pipeline, model, Adam(0.05),
            config=make_config(),
            metric="classification",
            seed=11,
        )
    generator = make_generator()
    deployment.initial_fit(
        generator.initial_data(800), max_iterations=400,
        tolerance=1e-6,
    )
    return deployment.run(generator.stream()), deployment


def main() -> None:
    warnings.simplefilter("ignore")

    print(f"stream: {NUM_CHUNKS} chunks; abrupt concept shift at "
          f"chunk {SHIFT_AT}")
    plain_result, __ = deploy(drift_aware=False)
    aware_result, aware = deploy(drift_aware=True)

    print()
    print("cumulative error over time (sampled):")
    print(format_series("scheduled", plain_result.error_history))
    print(format_series("drift-aware", aware_result.error_history))
    print()
    print(f"drifts detected      : "
          f"{aware_result.counters['drifts_detected']} "
          f"(at chunks {aware.drift_chunks})")
    print(f"proactive trainings  : scheduled="
          f"{plain_result.counters['proactive_trainings']}, "
          f"drift-aware="
          f"{aware_result.counters['proactive_trainings']}")
    print(f"final error          : scheduled="
          f"{plain_result.final_error:.4f}, drift-aware="
          f"{aware_result.final_error:.4f}")


if __name__ == "__main__":
    main()
