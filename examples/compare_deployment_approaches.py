"""Compare online, periodical, and continuous deployment (Experiment 1).

Runs the paper's three deployment approaches head-to-head on the
synthetic Taxi stream (regression, RMSLE) and prints the Figure 4-style
comparison: cumulative error and cumulative cost per approach, plus
the headline cost ratio.

Run:  python examples/compare_deployment_approaches.py
"""

from __future__ import annotations

import warnings

from repro import (
    ContinuousConfig,
    ContinuousDeployment,
    L2,
    LinearRegression,
    OnlineDeployment,
    PeriodicalConfig,
    PeriodicalDeployment,
    RMSProp,
    ScheduleConfig,
    TaxiStreamGenerator,
    make_taxi_pipeline,
)
from repro.evaluation.report import (
    format_comparison_table,
    format_series,
    summarize_results,
)

NUM_CHUNKS = 150
ROWS = 60
NUM_FEATURES = 11


def fresh_parts():
    """Each approach gets its own pipeline/model/optimizer."""
    pipeline = make_taxi_pipeline()
    model = LinearRegression(
        num_features=NUM_FEATURES, regularizer=L2(1e-4)
    )
    return pipeline, model, RMSProp(learning_rate=0.05)


def make_generator() -> TaxiStreamGenerator:
    return TaxiStreamGenerator(
        num_chunks=NUM_CHUNKS, rows_per_chunk=ROWS, seed=3
    )


def main() -> None:
    warnings.simplefilter("ignore")

    deployments = {}

    pipeline, model, optimizer = fresh_parts()
    deployments["online"] = OnlineDeployment(
        pipeline, model, optimizer,
        metric="regression", online_batch_rows=1,
    )

    pipeline, model, optimizer = fresh_parts()
    deployments["periodical"] = PeriodicalDeployment(
        pipeline, model, optimizer,
        config=PeriodicalConfig(
            retrain_every_chunks=30, max_epoch_iterations=150
        ),
        metric="regression",
        seed=3,
        online_batch_rows=1,
    )

    pipeline, model, optimizer = fresh_parts()
    deployments["continuous"] = ContinuousDeployment(
        pipeline, model, optimizer,
        config=ContinuousConfig(
            sample_size_chunks=20,
            schedule=ScheduleConfig(kind="static", interval_chunks=5),
            sampler="time",
            half_life=30,
            online_batch_rows=1,
        ),
        metric="regression",
        seed=3,
    )

    results = {}
    for name, deployment in deployments.items():
        print(f"running {name} deployment ...")
        generator = make_generator()
        deployment.initial_fit(
            generator.initial_data(1500),
            max_iterations=500,
            tolerance=1e-7,
        )
        results[name] = deployment.run(generator.stream())

    print()
    print("cumulative RMSLE over time (sampled):")
    for name, result in results.items():
        print(format_series(name, result.error_history, points=10))
    print()
    print("cumulative cost over time (sampled):")
    for name, result in results.items():
        print(format_series(name, result.cost_history, points=10,
                            float_format="{:.2f}"))
    print()
    print(format_comparison_table(
        summarize_results(results),
        columns=["approach", "final_error", "average_error",
                 "total_cost"],
    ))
    ratio = (
        results["periodical"].total_cost
        / results["continuous"].total_cost
    )
    print()
    print(f"periodical costs {ratio:.1f}x the continuous deployment "
          f"for the same (or worse) quality — the paper's headline.")


if __name__ == "__main__":
    main()
