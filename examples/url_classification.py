"""URL pipeline end-to-end: drifting sparse classification.

The paper's first deployment scenario: classify URLs as malicious or
legitimate on a high-dimensional sparse stream whose feature space
grows over time. This example deploys the URL pipeline continuously,
tracks the cumulative misclassification rate, and demonstrates why
time-based sampling helps on a drifting stream by running the same
deployment with uniform sampling for comparison.

Run:  python examples/url_classification.py
"""

from __future__ import annotations

import warnings

from repro import (
    Adam,
    ContinuousConfig,
    ContinuousDeployment,
    L2,
    LinearSVM,
    ScheduleConfig,
    URLStreamGenerator,
    make_url_pipeline,
)
from repro.datasets.drift import GradualDrift
from repro.evaluation.report import format_series

NUM_CHUNKS = 200
HASH_DIM = 1024


def deploy(sampler: str):
    generator = URLStreamGenerator(
        num_chunks=NUM_CHUNKS,
        rows_per_chunk=50,
        base_features=400,
        new_features_per_chunk=2,
        drift=GradualDrift(0.02),
        seed=7,
    )
    pipeline = make_url_pipeline(hash_features=HASH_DIM)
    model = LinearSVM(num_features=HASH_DIM, regularizer=L2(1e-3))
    deployment = ContinuousDeployment(
        pipeline,
        model,
        Adam(0.05),
        config=ContinuousConfig(
            sample_size_chunks=30,
            schedule=ScheduleConfig(kind="static", interval_chunks=5),
            sampler=sampler,
            half_life=NUM_CHUNKS / 16,
            online_batch_rows=1,
        ),
        metric="classification",
        seed=7,
    )
    deployment.initial_fit(
        generator.initial_data(1000), max_iterations=500,
        tolerance=1e-6,
    )
    return deployment.run(generator.stream()), deployment


def main() -> None:
    warnings.simplefilter("ignore")

    print("deploying with time-based sampling ...")
    time_result, time_deployment = deploy("time")
    print("deploying with uniform sampling ...")
    uniform_result, __ = deploy("uniform")

    print()
    print("cumulative misclassification rate (sampled over time):")
    print(format_series("time-based", time_result.error_history))
    print(format_series("uniform", uniform_result.error_history))
    print()
    print(f"average error, time-based : "
          f"{time_result.average_error:.4f}")
    print(f"average error, uniform    : "
          f"{uniform_result.average_error:.4f}")
    print()
    print("The URL stream drifts and keeps growing new features, so")
    print("samples biased toward recent chunks track the live concept")
    print("better — the paper's Figure 6 finding.")
    print()
    hasher = time_deployment.platform.pipeline.component("hasher")
    imputer = time_deployment.platform.pipeline.component("imputer")
    print(f"pipeline state after deployment: "
          f"{imputer.num_indices_seen} feature indices with imputation "
          f"statistics, hashed into {hasher.num_features} buckets.")


if __name__ == "__main__":
    main()
