"""Live health monitoring of a drifting deployment.

Attaches a :class:`~repro.obs.monitor.HealthMonitor` to a drift-aware
continuous deployment running over a stream with an abrupt concept
shift. The monitor consumes the run's telemetry live: the Page–Hinkley
detector's ``drift.signal`` event breaches the stock
``drift-detected`` rule, an incident opens, fires, and — once the
burst retraining pulls the error back down and the signal goes quiet —
resolves. The resulting ``health.json`` timeline is deterministic:
re-running this script produces a byte-identical file.

The script exits non-zero unless a drift alert actually fired *and*
resolved, which is how CI uses it as a smoke test.

Run:  python examples/health_monitor.py
"""

from __future__ import annotations

import sys
import tempfile
import warnings
from pathlib import Path

from repro import (
    Adam,
    ContinuousConfig,
    L2,
    LinearSVM,
    ScheduleConfig,
    URLStreamGenerator,
    make_url_pipeline,
)
from repro.datasets.drift import AbruptDrift
from repro.driftdetect import DriftAwareContinuousDeployment, PageHinkley
from repro.obs import Telemetry, format_timeline

NUM_CHUNKS = 80
SHIFT_AT = 40
HASH_DIM = 256


def make_generator() -> URLStreamGenerator:
    return URLStreamGenerator(
        num_chunks=NUM_CHUNKS,
        rows_per_chunk=50,
        base_features=300,
        new_features_per_chunk=0,
        drift=AbruptDrift(at_chunks=[SHIFT_AT], magnitude=0.9),
        label_noise=0.02,
        seed=11,
    )


def deploy(telemetry: Telemetry):
    deployment = DriftAwareContinuousDeployment(
        make_url_pipeline(hash_features=HASH_DIM),
        LinearSVM(num_features=HASH_DIM, regularizer=L2(1e-3)),
        Adam(0.05),
        detector=PageHinkley(
            delta=0.05, threshold=10.0, minimum_observations=50
        ),
        bursts_per_drift=5,
        burst_window=5,
        burst_delay_chunks=4,
        config=ContinuousConfig(
            sample_size_chunks=16,
            schedule=ScheduleConfig(kind="static", interval_chunks=20),
            sampler="window",
            window_size=20,
        ),
        metric="classification",
        seed=11,
        telemetry=telemetry,
    )
    generator = make_generator()
    deployment.initial_fit(
        generator.initial_data(800), max_iterations=400, tolerance=1e-6
    )
    return deployment.run(generator.stream())


def main() -> int:
    warnings.simplefilter("ignore")

    print(
        f"stream: {NUM_CHUNKS} chunks; abrupt concept shift at "
        f"chunk {SHIFT_AT}; health monitor attached"
    )
    telemetry = Telemetry()
    monitor = telemetry.attach_monitor()
    result = deploy(telemetry)
    telemetry.close()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "health.json"
        payload = monitor.write_health(path)

    print()
    print(format_timeline(payload))
    print()
    print(f"final error      : {result.final_error:.4f}")
    print(f"drifts detected  : {result.counters['drifts_detected']}")

    drift_incidents = [
        incident
        for incident in payload["incidents"]
        if incident["rule"] == "drift-detected"
    ]
    fired = [i for i in drift_incidents if i["fired_at"] is not None]
    resolved = [i for i in fired if i["state"] == "resolved"]
    if not fired:
        print("FAIL: no drift alert fired", file=sys.stderr)
        return 1
    if not resolved:
        print("FAIL: drift alert never resolved", file=sys.stderr)
        return 1
    print(
        f"drift alert fired at t={fired[0]['fired_at']:.4f} and "
        f"resolved at t={resolved[0]['resolved_at']:.4f} "
        f"(virtual cost units)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
