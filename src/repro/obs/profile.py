"""Cost-attribution profiling: fold a span stream into a tree.

The dual-clock tracer emits one flat event per finished span, carrying
the names of its enclosing spans (``stack``, outermost first). This
module folds that stream into a hierarchical **profile tree** — the
per-run answer to "where did the cost go":

* every node aggregates one call path (``platform.observe`` →
  ``engine.train_step`` → …) with call count, *cumulative* and *self*
  totals on both clocks (virtual cost units and wall seconds);
* the virtual-clock side is fully deterministic, so two identical-seed
  runs produce byte-identical trees — :func:`profile_digest` hashes
  exactly that deterministic part, giving the benchmark baseline store
  a cheap "did the cost shape change at all" fingerprint;
* exports: an aligned text rendering (``repro perf profile``), a
  JSON-ready dict, and collapsed-stack text (one ``path count`` line
  per call path) that flamegraph tooling consumes directly.

Spans from different deployments may share one trace (several runs
instrumented through one :class:`~repro.obs.telemetry.Telemetry`);
folding only uses durations and stacks, never absolute timestamps, so
aggregation across runs stays well-defined.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.sink import EventDict, load_jsonl

#: Version tag stamped into exported profiles so offline consumers can
#: reject trees from a future layout.
PROFILE_SCHEMA = 1


@dataclass
class ProfileNode:
    """Aggregate of one call path in the profile tree."""

    name: str
    count: int = 0
    #: Total virtual-clock cost of spans on this path, including time
    #: spent in child spans.
    cum_cost: float = 0.0
    cum_wall: float = 0.0
    children: Dict[str, "ProfileNode"] = field(default_factory=dict)

    @property
    def self_cost(self) -> float:
        """Cumulative cost minus the cost attributed to children."""
        return self.cum_cost - sum(
            child.cum_cost for child in self.children.values()
        )

    @property
    def self_wall(self) -> float:
        return self.cum_wall - sum(
            child.cum_wall for child in self.children.values()
        )

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = ProfileNode(name)
        return node

    def walk(
        self, depth: int = 0
    ) -> Iterable[Tuple[int, "ProfileNode"]]:
        """Yield ``(depth, node)`` pairs, children by descending cost."""
        yield depth, self
        ordered = sorted(
            self.children.values(),
            key=lambda child: (-child.cum_cost, child.name),
        )
        for node in ordered:
            yield from node.walk(depth + 1)


#: Name of the synthetic root every profile tree hangs off.
ROOT_NAME = "run"


def build_profile(events: Iterable[EventDict]) -> ProfileNode:
    """Fold span events into a profile tree rooted at ``run``.

    Only ``span`` events contribute; each adds its duration to the
    node addressed by ``stack + [name]``. Traces written before the
    ``stack`` field existed fold flat (every span a child of the
    root), which degrades attribution but never errors. The root
    accumulates the totals of its direct children, so percentages are
    always computed against a complete denominator.
    """
    root = ProfileNode(ROOT_NAME)
    for event in events:
        if event.get("kind") != "span":
            continue
        node = root
        for ancestor in event.get("stack") or ():
            node = node.child(str(ancestor))
        node = node.child(str(event.get("name", "?")))
        node.count += 1
        node.cum_cost += float(event.get("dur", 0.0))
        node.cum_wall += float(event.get("wall_s", 0.0))
    root.cum_cost = sum(c.cum_cost for c in root.children.values())
    root.cum_wall = sum(c.cum_wall for c in root.children.values())
    root.count = sum(c.count for c in root.children.values())
    return root


def profile_trace(path) -> ProfileNode:
    """Fold a JSONL trace file into a profile tree."""
    return build_profile(load_jsonl(path))


def subsystem_totals(root: ProfileNode) -> Dict[str, Dict[str, float]]:
    """Self-cost rollup by owning subsystem (the name's first segment).

    Self (not cumulative) totals are summed so nested spans from
    different subsystems never double-count a cost unit; the values
    add up to the root's cumulative cost.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for depth, node in root.walk():
        if depth == 0:
            continue
        subsystem = node.name.split(".", 1)[0]
        entry = totals.setdefault(
            subsystem, {"count": 0.0, "self_cost": 0.0, "self_wall": 0.0}
        )
        entry["count"] += node.count
        entry["self_cost"] += node.self_cost
        entry["self_wall"] += node.self_wall
    return totals


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def profile_to_dict(root: ProfileNode) -> Dict[str, object]:
    """JSON-ready dict of the whole tree (schema-versioned)."""
    return {
        "schema": PROFILE_SCHEMA,
        "digest": profile_digest(root),
        "tree": _node_to_dict(root),
        "subsystems": subsystem_totals(root),
    }


def _node_to_dict(node: ProfileNode) -> Dict[str, object]:
    return {
        "name": node.name,
        "count": node.count,
        "cum_cost": node.cum_cost,
        "self_cost": node.self_cost,
        "cum_wall": node.cum_wall,
        "self_wall": node.self_wall,
        "children": [
            _node_to_dict(child)
            for _, child in sorted(node.children.items())
        ],
    }


def profile_digest(root: ProfileNode) -> str:
    """SHA-256 over the deterministic (virtual-clock) half of the tree.

    Counts and cost totals only — wall times are noise. Children are
    serialized name-sorted and floats via ``repr``, so the digest is
    byte-stable across runs, platforms, and dict orderings; two
    identical-seed runs of a deterministic workload must collide.
    """

    def canonical(node: ProfileNode) -> List[object]:
        return [
            node.name,
            node.count,
            repr(node.cum_cost),
            [canonical(c) for _, c in sorted(node.children.items())],
        ]

    blob = json.dumps(canonical(root), separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def to_collapsed(root: ProfileNode, scale: float = 1000.0) -> str:
    """Collapsed-stack text: ``run;a;b <self cost>`` per call path.

    The flamegraph interchange format wants integer sample counts, so
    self costs are scaled (default: milli-cost-units) and rounded;
    zero-valued paths are kept whenever the path was entered at all so
    no call path silently vanishes from the graph.
    """
    lines: List[str] = []

    def emit(node: ProfileNode, path: Tuple[str, ...]) -> None:
        here = path + (node.name,)
        value = int(round(node.self_cost * scale))
        if node.count or value:
            lines.append(f"{';'.join(here)} {max(value, 0)}")
        for _, child in sorted(node.children.items()):
            emit(child, here)

    for _, child in sorted(root.children.items()):
        emit(child, (ROOT_NAME,))
    return "\n".join(lines)


def format_profile(
    root: ProfileNode,
    max_depth: Optional[int] = None,
    min_fraction: float = 0.0,
) -> str:
    """Aligned text tree: per-path count, cum/self cost, %, wall."""
    total = root.cum_cost
    rows: List[Sequence[str]] = [
        ("path", "count", "cum", "self", "cum%", "wall_s")
    ]
    for depth, node in root.walk():
        if max_depth is not None and depth > max_depth:
            continue
        if depth and total > 0.0 and node.cum_cost / total < min_fraction:
            continue
        share = node.cum_cost / total if total > 0.0 else 0.0
        rows.append(
            (
                "  " * depth + node.name,
                str(node.count),
                f"{node.cum_cost:.4f}",
                f"{node.self_cost:.4f}",
                f"{share * 100:5.1f}%",
                f"{node.cum_wall:.3f}",
            )
        )
    lines = _align(rows)
    subsystems = subsystem_totals(root)
    if subsystems:
        lines.append("")
        lines.append("self cost by subsystem:")
        ordered = sorted(
            subsystems.items(), key=lambda kv: -kv[1]["self_cost"]
        )
        for name, entry in ordered:
            share = entry["self_cost"] / total if total > 0.0 else 0.0
            lines.append(
                f"  {name:<12} {entry['self_cost']:>12.4f} "
                f"({share * 100:5.1f}%)  wall={entry['self_wall']:.3f}s"
            )
    lines.append("")
    lines.append(f"profile digest: {profile_digest(root)}")
    return "\n".join(lines)


def _align(rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  "
            + "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append(
                "  " + "  ".join("-" * width for width in widths)
            )
    return lines
