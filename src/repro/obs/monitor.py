"""The live health monitor: streaming SLO windows over telemetry.

:class:`HealthMonitor` is an :class:`~repro.obs.sink.EventSink` that
sits in a telemetry bundle's sink chain (see
:meth:`repro.obs.telemetry.Telemetry.attach_monitor`) and watches the
span/point stream *live*: every event lands in tumbling windows of
the virtual clock, each window close evaluates the declarative alert
rules, and rule breaches drive the pending → firing → resolved
incident lifecycle. Because the stream is ordered by the virtual
clock (a span is emitted when it ends, at ``t + dur``; a point at its
``t``), window assignment is deterministic — two identical-seed runs
produce byte-identical ``health.json`` timelines, and the payload's
digest (same contract as the profile digest) makes that checkable
with a string compare.

Signals derive from events mechanically:

* every event name is an **occurrence signal** (``drift.signal``
  counts per window);
* spans additionally feed ``<name>.dur`` with their virtual duration
  (``platform.observe.dur`` percentiles);
* configured numeric attributes become **value signals**
  (``platform.chunk.error``, ``serving.latency.cost``) — the
  monitored SLO series.

Only signals some rule watches are aggregated, so an attached monitor
costs a dict lookup per unwatched event. The monitor's own
``alert.*`` emissions are skipped on intake, which keeps the feedback
loop open.
"""

from __future__ import annotations

import json
import math
from collections import deque
from pathlib import Path
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ValidationError
from repro.obs import names
from repro.obs.incident import (
    HEALTH_SCHEMA,
    IncidentLog,
    health_digest,
)
from repro.obs.rules import AlertRule, RuleState
from repro.obs.sink import EventSink
from repro.obs.windows import SeriesWindows

#: Event-name prefixes the monitor never consumes (its own output,
#: plus the provenance ledger's growth points).
_SKIP_PREFIXES = ("monitor.", "alert.", "health.", "lineage.")

#: Signals whose incidents carry provenance evidence when a lineage
#: ledger is bound (see :meth:`HealthMonitor._lineage_evidence`).
_LINEAGE_SIGNAL_PREFIXES = ("serving.", "slo.")

#: Default numeric attributes promoted to value signals. Read-only:
#: the monitor is importable from sharded subsystems (REP011).
DEFAULT_VALUE_ATTRS: Mapping[str, str] = MappingProxyType(
    {
        names.PLATFORM_CHUNK: "error",
        names.SERVING_LATENCY: "cost",
        names.SLO_LATENCY: "cost",
    }
)


class MonitorConfig:
    """Tuning knobs for one :class:`HealthMonitor`.

    ``window`` is the tumbling-window width in virtual-cost units —
    the experiments' test-scale runs total ~0.25 cost units, so the
    default of 0.01 yields a few dozen windows per run.
    """

    __slots__ = (
        "window",
        "evidence_limit",
        "snapshot_every",
        "max_snapshots",
        "value_attrs",
    )

    def __init__(
        self,
        window: float = 0.01,
        evidence_limit: int = 8,
        snapshot_every: int = 1,
        max_snapshots: int = 512,
        value_attrs: Optional[Dict[str, str]] = None,
    ) -> None:
        if window <= 0.0:
            raise ValidationError(
                f"monitor window width must be > 0, got {window}"
            )
        if evidence_limit < 1:
            raise ValidationError(
                f"evidence limit must be >= 1, got {evidence_limit}"
            )
        if snapshot_every < 1:
            raise ValidationError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        if max_snapshots < 0:
            raise ValidationError(
                f"max_snapshots must be >= 0, got {max_snapshots}"
            )
        self.window = float(window)
        self.evidence_limit = evidence_limit
        self.snapshot_every = snapshot_every
        self.max_snapshots = max_snapshots
        self.value_attrs = dict(
            DEFAULT_VALUE_ATTRS if value_attrs is None else value_attrs
        )


def default_rules() -> Tuple[AlertRule, ...]:
    """The stock rule set wired to the platform's emission sites."""
    return (
        AlertRule(
            name="drift-detected",
            signal=names.DRIFT_SIGNAL,
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
            severity="critical",
            category="drift",
            description="the drift detector raised a drift signal",
        ),
        AlertRule(
            name="drift-warning",
            signal=names.DRIFT_WARNING,
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
            severity="warning",
            category="drift",
            description="the drift detector entered its warning zone",
        ),
        AlertRule(
            name="error-shift",
            signal=names.PLATFORM_CHUNK + ".error",
            kind="mean_shift",
            stat="mean",
            warmup=5,
            drift_k=0.5,
            drift_h=5.0,
            severity="warning",
            category="quality",
            description="CUSUM shift in the per-chunk prequential "
            "error mean",
        ),
        AlertRule(
            name="serving-latency-shift",
            signal=names.SERVING_LATENCY + ".cost",
            kind="mean_shift",
            stat="mean",
            warmup=5,
            drift_k=0.5,
            drift_h=5.0,
            severity="warning",
            category="latency",
            description="CUSUM shift in per-batch serving cost",
        ),
        AlertRule(
            name="rollout-rejected",
            signal=names.ROLLOUT_PREFIX + "reject",
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
            severity="warning",
            category="quality-gate",
            description="the quality gate rejected a candidate",
        ),
        AlertRule(
            name="rollout-rolled-back",
            signal=names.ROLLOUT_PREFIX + "rollback",
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
            severity="critical",
            category="quality-gate",
            description="a promoted candidate was rolled back",
        ),
        AlertRule(
            name="fault-injected",
            signal=names.RELIABILITY_FAULT,
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
            severity="warning",
            category="fault",
            description="a fault fired (injected or real)",
        ),
        AlertRule(
            name="retry-storm",
            signal=names.RELIABILITY_RETRY,
            kind="threshold",
            stat="count",
            op=">=",
            value=3.0,
            window=2,
            severity="warning",
            category="fault",
            description="3+ retries within two windows",
        ),
        AlertRule(
            name="retries-exhausted",
            signal=names.RELIABILITY_RETRIES_EXHAUSTED,
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
            severity="critical",
            category="fault",
            description="a retry budget ran out; the fault surfaced",
        ),
        AlertRule(
            name="crash-recovered",
            signal=names.RELIABILITY_RECOVERED,
            kind="threshold",
            stat="count",
            op=">=",
            value=1.0,
            severity="critical",
            category="crash",
            description="the run resumed from a checkpoint after a "
            "crash",
        ),
    )


class HealthMonitor(EventSink):
    """Streaming health monitoring over a live telemetry stream.

    Parameters
    ----------
    rules:
        Alert rules to evaluate; defaults to :func:`default_rules`.
        Rule names must be unique (they are the incident dedup keys).
    config:
        Window width and bookkeeping bounds.
    """

    def __init__(
        self,
        rules: Optional[Sequence[AlertRule]] = None,
        config: Optional[MonitorConfig] = None,
    ) -> None:
        self.config = config if config is not None else MonitorConfig()
        self.rules: Tuple[AlertRule, ...] = tuple(
            rules if rules is not None else default_rules()
        )
        seen = set()
        for rule in self.rules:
            if rule.name in seen:
                raise ValidationError(
                    f"duplicate alert rule name {rule.name!r}"
                )
            seen.add(rule.name)
        self.incidents = IncidentLog(self.rules)
        self._rule_states = [RuleState(rule) for rule in self.rules]
        #: signal -> series, for exactly the signals some rule watches.
        self._series: Dict[str, SeriesWindows] = {}
        #: signal -> recent sanitized events (incident evidence).
        self._recent: Dict[str, deque] = {}
        needs: Dict[str, Tuple[int, bool]] = {}
        for rule in self.rules:
            history, quantiles = needs.get(rule.signal, (1, False))
            needs[rule.signal] = (
                max(history, rule.window),
                quantiles or rule.needs_quantiles,
            )
        for signal, (history, quantiles) in needs.items():
            self._series[signal] = SeriesWindows(
                signal,
                self.config.window,
                history=history,
                track_quantiles=quantiles,
            )
            self._recent[signal] = deque(
                maxlen=self.config.evidence_limit
            )
        self._window_index: Optional[int] = None
        self.windows_closed = 0
        self.events_seen = 0
        self.samples = 0
        self.snapshots: List[Dict[str, object]] = []
        self._closed = False
        self._tracer = None
        self._metrics = None
        self._ledger = None

    # ------------------------------------------------------------------
    def bind(self, tracer=None, metrics=None, ledger=None) -> None:
        """Give the monitor instruments to announce transitions on.

        ``ledger`` (a :class:`~repro.obs.lineage.LineageLedger`) lets
        serving incidents carry provenance evidence: the live model
        version and the ledger digest at fire time. Only provided
        instruments are rebound.
        """
        if tracer is not None:
            self._tracer = tracer
        if metrics is not None:
            self._metrics = metrics
        if ledger is not None:
            self._ledger = ledger

    @property
    def watched_signals(self) -> Tuple[str, ...]:
        return tuple(sorted(self._series))

    # ------------------------------------------------------------------
    # EventSink interface — the live intake
    # ------------------------------------------------------------------
    def emit(self, event: Dict[str, object]) -> None:
        if self._closed:
            return
        kind = event.get("kind")
        name = event.get("name")
        if kind == "metrics" or not isinstance(name, str):
            return
        if name.startswith(_SKIP_PREFIXES):
            return
        self.events_seen += 1
        t = float(event.get("t") or 0.0)
        dur = float(event.get("dur") or 0.0)
        # Emission order is monotonic in the virtual clock: a span is
        # emitted when it *ends* (t + dur), a point at its t. Using
        # the emission time for window assignment keeps the stream
        # in-order without any lateness buffering.
        sample_time = t + dur if kind == "span" else t
        self._advance(sample_time)
        self._sample(name, 1.0, sample_time, event)
        if kind == "span":
            self._sample(name + ".dur", dur, sample_time, event)
        attr_key = self.config.value_attrs.get(name)
        if attr_key is not None:
            attrs = event.get("attrs")
            value = (
                attrs.get(attr_key) if isinstance(attrs, dict) else None
            )
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                self._sample(
                    f"{name}.{attr_key}", float(value), sample_time,
                    event,
                )

    def close(self) -> None:
        self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Seal the final (partial) window and evaluate it.

        Idempotent; called by :meth:`Telemetry.close` via the sink
        chain, so CLI runs never lose the tail window.
        """
        if self._closed:
            return
        if self._window_index is not None:
            self._close_window()
        self._closed = True
        if self._metrics is not None:
            self._metrics.gauge(names.MONITOR_EVENTS).set(
                self.events_seen
            )
            self._metrics.gauge(names.MONITOR_SAMPLES).set(self.samples)
            self._metrics.gauge(names.MONITOR_WINDOWS).set(
                self.windows_closed
            )
            self._metrics.gauge(names.MONITOR_INCIDENTS).set(
                len(self.incidents)
            )

    # ------------------------------------------------------------------
    # Window mechanics
    # ------------------------------------------------------------------
    def _advance(self, sample_time: float) -> None:
        index = int(math.floor(sample_time / self.config.window))
        if self._window_index is None:
            self._window_index = index
            return
        while index > self._window_index:
            self._close_window()

    def _close_window(self) -> None:
        index = self._window_index
        t_end = (index + 1) * self.config.window
        for series in self._series.values():
            series.close_window()
        self.windows_closed += 1
        for state in self._rule_states:
            self._evaluate_rule(state, t_end)
        if (
            self.windows_closed % self.config.snapshot_every == 0
            and len(self.snapshots) < self.config.max_snapshots
        ):
            self.snapshots.append(self._snapshot(index, t_end))
        self._window_index = index + 1

    def _snapshot(self, index: int, t_end: float) -> Dict[str, object]:
        signals = {}
        for name in sorted(self._series):
            series = self._series[name]
            if series.closed:
                signals[name] = series.closed[-1].to_dict()
        return {
            "window": index,
            "t_end": t_end,
            "signals": signals,
            "incidents_open": self.incidents.open_count,
        }

    def _sample(
        self,
        signal: str,
        value: float,
        sample_time: float,
        event: Dict[str, object],
    ) -> None:
        series = self._series.get(signal)
        if series is None:
            return
        series.observe(sample_time, value)
        self.samples += 1
        recent = self._recent.get(signal)
        if recent is not None:
            recent.append(_sanitize_event(event))

    # ------------------------------------------------------------------
    # Rule evaluation → incident lifecycle
    # ------------------------------------------------------------------
    def _evaluate_rule(self, state: RuleState, t_end: float) -> None:
        rule = state.rule
        series = self._series[rule.signal]
        view = series.view(rule.window)
        evaluation = state.evaluate(view, t_end, series.last_sample_t)
        incident = self.incidents.get_open(rule.name)
        if evaluation.breached:
            state.clear_streak = 0
            state.breach_streak += 1
            if incident is None:
                incident = self.incidents.open_incident(
                    rule, t_end, evaluation
                )
                incident.evidence = list(self._recent[rule.signal])
                self._announce(names.ALERT_PENDING, incident, t_end)
            else:
                incident.record_breach(evaluation)
            if (
                incident.state == "pending"
                and state.breach_streak >= rule.for_windows
            ):
                self.incidents.fire(incident, t_end)
                incident.evidence = list(self._recent[rule.signal])
                lineage = self._lineage_evidence(rule)
                if lineage is not None:
                    incident.evidence.append(lineage)
                self._announce(names.ALERT_FIRING, incident, t_end)
                if self._metrics is not None:
                    self._metrics.counter(names.ALERTS_FIRED).inc()
        else:
            state.breach_streak = 0
            if incident is not None:
                state.clear_streak += 1
                if state.clear_streak >= rule.clear_windows:
                    fired = incident.fired
                    self.incidents.resolve(incident, t_end)
                    state.clear_streak = 0
                    self._announce(
                        names.ALERT_RESOLVED, incident, t_end
                    )
                    if fired and self._metrics is not None:
                        self._metrics.counter(
                            names.ALERTS_RESOLVED
                        ).inc()

    def _lineage_evidence(self, rule) -> Optional[Dict[str, object]]:
        """Provenance snapshot appended to serving-incident evidence.

        When a ``serving.*``/``slo.*`` rule fires with a ledger bound,
        the incident is recorded as a lineage node implicating the
        live model version, and the evidence gains the version plus
        the ledger digest at fire time — enough to ``blame`` the
        model's training chunks afterwards.
        """
        if self._ledger is None or not rule.signal.startswith(
            _LINEAGE_SIGNAL_PREFIXES
        ):
            return None
        live = self._ledger.live_version()
        node = self._ledger.record_incident(
            rule.name, rule.signal, model=live
        )
        return {
            "kind": "lineage",
            "node": node,
            "live_version": live,
            "lineage_digest": self._ledger.digest(),
        }

    def _announce(self, event_name: str, incident, t_end: float) -> None:
        if self._tracer is None:
            return
        self._tracer.point(
            event_name,
            rule=incident.rule,
            incident=incident.id,
            severity=incident.severity,
            category=incident.category,
            window_end=t_end,
        )

    # ------------------------------------------------------------------
    # Health payload / export
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """The full, digest-stamped health payload (``health.json``)."""
        payload: Dict[str, object] = {
            "schema": HEALTH_SCHEMA,
            "clock": "virtual",
            "window": self.config.window,
            "windows_closed": self.windows_closed,
            "events": self.events_seen,
            "samples": self.samples,
            "fired": self.incidents.fired_count,
            "resolved": self.incidents.resolved_count,
            "rules": [rule.to_dict() for rule in self.rules],
            "incidents": self.incidents.to_list(),
            "snapshots": list(self.snapshots),
        }
        payload["digest"] = health_digest(payload)
        return payload

    def write_health(self, path: Union[str, Path]) -> Dict[str, object]:
        """Write ``health.json``; returns the payload.

        Serialization is canonical (sorted keys, fixed separators,
        trailing newline), so identical-seed runs produce
        byte-identical files.
        """
        payload = self.health()
        target = Path(path)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return payload

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-safe mutable state (windows, rules, incidents).

        Construction-time inputs (rules, config) are not part of the
        state — restore into a monitor built with the same arguments,
        exactly like every other checkpointable component.
        """
        return {
            "window_index": self._window_index,
            "windows_closed": self.windows_closed,
            "events_seen": self.events_seen,
            "samples": self.samples,
            "closed": self._closed,
            "series": {
                name: series.state_dict()
                for name, series in self._series.items()
            },
            "recent": {
                name: list(ring)
                for name, ring in self._recent.items()
            },
            "rule_states": [
                state.state_dict() for state in self._rule_states
            ],
            "incidents": self.incidents.state_dict(),
            "snapshots": list(self.snapshots),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        index = state.get("window_index")
        self._window_index = None if index is None else int(index)
        self.windows_closed = int(state["windows_closed"])
        self.events_seen = int(state["events_seen"])
        self.samples = int(state["samples"])
        self._closed = bool(state["closed"])
        for name, series_state in state["series"].items():
            series = self._series.get(name)
            if series is None:
                raise ValidationError(
                    f"monitor state watches unknown signal {name!r}; "
                    f"restore with the same rule set"
                )
            series.load_state_dict(series_state)
        for name, events in state["recent"].items():
            ring = self._recent.get(name)
            if ring is not None:
                ring.clear()
                ring.extend(events)
        saved_states = state["rule_states"]
        if len(saved_states) != len(self._rule_states):
            raise ValidationError(
                f"monitor state has {len(saved_states)} rule state(s) "
                f"for {len(self._rule_states)} rule(s); restore with "
                f"the same rule set"
            )
        for rule_state, saved in zip(self._rule_states, saved_states):
            rule_state.load_state_dict(saved)
        self.incidents.load_state_dict(state["incidents"])
        self.snapshots = list(state["snapshots"])

    def __repr__(self) -> str:
        return (
            f"HealthMonitor(rules={len(self.rules)}, "
            f"windows={self.windows_closed}, "
            f"incidents={len(self.incidents)})"
        )


def replay_trace(
    events,
    rules: Optional[Sequence[AlertRule]] = None,
    config: Optional[MonitorConfig] = None,
) -> HealthMonitor:
    """Run a monitor offline over recorded events (a JSONL trace).

    The offline replay of a trace produces the same timeline the live
    monitor would have produced during the run, because the monitor
    only ever sees the serialized event stream either way.
    """
    monitor = HealthMonitor(rules=rules, config=config)
    for event in events:
        monitor.emit(event)
    monitor.flush()
    return monitor


def _sanitize_event(event: Dict[str, object]) -> Dict[str, object]:
    """Evidence snapshot: drop the wall clock, keep the virtual facts."""
    return {
        "seq": event.get("seq"),
        "kind": event.get("kind"),
        "name": event.get("name"),
        "t": event.get("t"),
        "dur": event.get("dur"),
        "attrs": dict(event.get("attrs") or {}),
    }
