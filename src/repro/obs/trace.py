"""Span-based tracing over the platform's two clocks.

A :class:`Tracer` produces structured :class:`TraceEvent` records.
Spans measure both clocks at once:

* the **virtual clock** — cumulative cost units from the deployment's
  :class:`~repro.execution.cost.CostTracker`, the deterministic time
  base every experiment reports;
* the **wall clock** — real elapsed seconds, for sanity checks and
  hardware-level profiling.

Usage::

    with tracer.span("proactive_training", chunk=i) as span:
        outcome = run_training()
        span.set(rows=outcome.rows)

    tracer.point("scheduler.decision", chunk=i, fired=True)

Disabled tracing is a first-class mode: :class:`NullTracer` returns a
shared no-op span, so an un-instrumented run pays one attribute check
and one no-op call per span site (``benchmarks/bench_obs_overhead.py``
guards that this stays cheap).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs import names
from repro.obs.sink import EventSink

#: JSONL event schema, shared by every sink and the ``repro obs`` CLI:
#: ``seq``  — monotonically increasing event number within the trace;
#: ``kind`` — ``"span"`` | ``"point"`` | ``"metrics"``;
#: ``name`` — dotted event name (``engine.predict``, ``drift.signal``);
#: ``t``    — virtual-clock timestamp (cost units) at span start /
#:            point emission;
#: ``dur``  — virtual-clock duration of the span (0 for points);
#: ``wall_s`` — wall-clock duration in seconds (0 for points);
#: ``stack``  — names of the spans enclosing this event, outermost
#:              first (empty for top-level events); the cost-
#:              attribution profiler folds span streams into a tree
#:              along this field;
#: ``attrs``  — free-form attributes (chunk index, values scanned, …).
EVENT_FIELDS = (
    "seq", "kind", "name", "t", "dur", "wall_s", "stack", "attrs",
)


@dataclass
class TraceEvent:
    """One structured telemetry event (see :data:`EVENT_FIELDS`)."""

    seq: int
    kind: str
    name: str
    t: float
    dur: float = 0.0
    wall_s: float = 0.0
    stack: tuple = ()
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "t": self.t,
            "dur": self.dur,
            "wall_s": self.wall_s,
            "stack": list(self.stack),
            "attrs": self.attrs,
        }


class Span:
    """Context manager measuring one traced operation."""

    __slots__ = ("_tracer", "name", "attrs", "_t0", "_w0", "_stack")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self._w0 = 0.0
        self._stack: tuple = ()

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._stack = self._tracer.enter_span(self.name)
        self._t0 = self._tracer.clock()
        self._w0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        dur = self._tracer.clock() - self._t0
        wall_s = time.perf_counter() - self._w0
        self._tracer.exit_span()
        self._tracer.finish_span(
            self.name,
            self.attrs,
            started_at=self._t0,
            dur=dur,
            wall_s=wall_s,
            stack=self._stack,
        )


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Emits span and point events against a virtual clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current virtual time
        (typically the engine's ``total_cost``); defaults to a
        constant 0 until a real clock is bound.
    sink:
        Destination for serialized events.
    metrics:
        Optional registry; span durations additionally feed a
        streaming histogram named ``span.<name>`` so quantiles are
        available live, without replaying events.
    """

    enabled = True

    def __init__(
        self,
        sink: EventSink,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.sink = sink
        self.metrics = metrics
        self._seq = 0
        #: Names of the currently open spans, outermost first. Spans
        #: are context managers, so entries/exits pair LIFO and the
        #: stack mirrors the live nesting; each finished span records
        #: the ancestors it was opened under, which is what the
        #: cost-attribution profiler folds into a tree.
        self._stack: list = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a run's virtual clock."""
        self.clock = clock

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        """Open a span; use as a context manager."""
        return Span(self, name, attrs)

    def enter_span(self, name: str) -> tuple:
        """Push ``name`` onto the live stack; returns its ancestors."""
        ancestors = tuple(self._stack)
        self._stack.append(name)
        return ancestors

    def exit_span(self) -> None:
        """Pop the innermost open span (called by :class:`Span`)."""
        if self._stack:
            self._stack.pop()

    def point(self, name: str, **attrs: object) -> None:
        """Emit an instantaneous event."""
        self._emit(
            TraceEvent(
                seq=self._next_seq(),
                kind="point",
                name=name,
                t=self.clock(),
                stack=tuple(self._stack),
                attrs=attrs,
            )
        )

    def finish_span(
        self,
        name: str,
        attrs: Dict,
        started_at: float,
        dur: float,
        wall_s: float,
        stack: tuple = (),
    ) -> None:
        """Record a completed span (called by :class:`Span`)."""
        self._emit(
            TraceEvent(
                seq=self._next_seq(),
                kind="span",
                name=name,
                t=started_at,
                dur=dur,
                wall_s=wall_s,
                stack=stack,
                attrs=attrs,
            )
        )
        if self.metrics is not None:
            self.metrics.histogram(names.SPAN_PREFIX + name).add(dur)

    def emit_metrics(self, snapshot: Dict[str, object]) -> None:
        """Emit a ``metrics`` event carrying a registry snapshot."""
        self._emit(
            TraceEvent(
                seq=self._next_seq(),
                kind="metrics",
                name="metrics.snapshot",
                t=self.clock(),
                attrs=snapshot,
            )
        )

    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _emit(self, event: TraceEvent) -> None:
        self.sink.emit(event.to_dict())

    def __repr__(self) -> str:
        return f"Tracer(events={self._seq}, sink={self.sink!r})"


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    ``span`` returns a single shared no-op context manager, so a
    disabled span site costs one method call and the ``with`` protocol
    — no allocation, no clock reads.
    """

    enabled = False

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def enter_span(self, name: str) -> tuple:
        return ()

    def exit_span(self) -> None:
        pass

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def point(self, name: str, **attrs: object) -> None:
        pass

    def emit_metrics(self, snapshot: Dict[str, object]) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()
