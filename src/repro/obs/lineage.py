"""The provenance ledger — end-to-end data/model lineage.

:class:`LineageLedger` is an append-only, content-addressed record of
everything that flowed into every deployed model, stamped on the
run's virtual clock. The graph has five node kinds:

* ``chunk`` — one ingested raw chunk: its stream timestamp plus a
  SHA-256 content digest of the table;
* ``component`` — one pipeline-component *fingerprint* (code + config
  + fitted-statistics digests, see
  :mod:`repro.pipeline.fingerprint`); content-addressed, so a
  component that has not changed between trainings stays one node;
* ``training`` — one SGD burst: which chunk set fed it and with what
  sampling weights, under which component fingerprints;
* ``model`` — one registry version, linked to the training that
  produced it and to its parent version;
* ``incident`` — a monitor incident, linked to the model version
  that was live when the rule fired.

Edges (``fed``, ``used``, ``produced``, ``derived_from``,
``implicated``) carry virtual timestamps, so the whole graph is
byte-reproducible across same-seed runs and across checkpoint
recovery (the ledger rides the ``"lineage"`` checkpoint key).

Two queries make the graph useful operationally: :meth:`blame` walks
*backward* from a model version to the chunks that trained it
(aggregating sampling weights over the derivation chain), and
:meth:`trace` walks *forward* from a chunk to every model version and
incident downstream of it — the quarantine-by-provenance primitive of
ROADMAP item 5, over the same fingerprints ROADMAP item 3's
cache-aware re-materialization keys on.

This module sits in the obs layer: it never imports data/pipeline/
serving code. Recorders pass plain ids, digests, and numbers.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ValidationError
from repro.obs import names

#: Version stamp of the ``lineage.json`` payload / checkpoint state.
LINEAGE_SCHEMA = 1

#: Node kinds, in the order summaries render them.
NODE_KINDS = ("chunk", "component", "training", "model", "incident")

#: Edge kinds: chunk --fed--> training --produced--> model,
#: component --used--> training, parent --derived_from--> child,
#: model --implicated--> incident. All edges point *downstream* (in
#: the direction data flowed), so forward traces follow out-edges and
#: blame walks in-edges.
EDGE_KINDS = ("fed", "used", "produced", "derived_from", "implicated")


def lineage_digest(entries: Sequence[Dict[str, Any]]) -> str:
    """SHA-256 over the canonical JSON rendering of the entry log.

    Same contract as :func:`repro.obs.incident.health_digest`: sorted
    keys, compact separators, ``allow_nan=False`` so a stray NaN fails
    loudly instead of serializing unportably.
    """
    text = json.dumps(
        {"schema": LINEAGE_SCHEMA, "entries": list(entries)},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class LineageLedger:
    """Append-only provenance graph for one run (or one fleet).

    The ledger is attached to a :class:`~repro.obs.telemetry.Telemetry`
    bundle via :meth:`Telemetry.attach_ledger`; the platform, registry,
    and monitor then record into it through plain-data methods. Every
    append is stamped with the bundle's virtual clock and emits a
    ``lineage.node`` trace point, so the ledger's growth is itself
    observable.
    """

    def __init__(self) -> None:
        self._entries: List[Dict[str, Any]] = []
        #: node id -> index into the entry log.
        self._nodes: Dict[str, int] = {}
        #: node id -> indexes of out-edges / in-edges.
        self._out: Dict[str, List[int]] = {}
        self._in: Dict[str, List[int]] = {}
        #: registry name -> live model node id.
        self._live: Dict[str, str] = {}
        self._next_training = 0
        self._next_incident = 0
        self._tracer = None
        self._metrics = None
        self._clock = lambda: 0.0

    # ------------------------------------------------------------------
    def bind(self, tracer=None, metrics=None) -> None:
        """Bind the run's tracer/metrics (and its virtual clock)."""
        if tracer is not None:
            self._tracer = tracer
            self._clock = tracer.clock
        if metrics is not None:
            self._metrics = metrics

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def entries(self) -> List[Dict[str, Any]]:
        """The append-only entry log (do not mutate)."""
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node(self, node_id: str) -> Dict[str, Any]:
        """The node entry for ``node_id`` (KeyError when absent)."""
        return self._entries[self._nodes[node_id]]

    def nodes(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """All node entries, optionally filtered by kind, in seq order."""
        return [
            self._entries[index]
            for node_id, index in sorted(
                self._nodes.items(), key=lambda item: item[1]
            )
            if kind is None or self._entries[index]["kind"] == kind
        ]

    def counts(self) -> Dict[str, int]:
        """Node counts per kind plus the edge total."""
        result = {kind: 0 for kind in NODE_KINDS}
        edges = 0
        for entry in self._entries:
            if entry["e"] == "node":
                result[entry["kind"]] += 1
            elif entry["e"] == "edge":
                edges += 1
        result["edges"] = edges
        return result

    def digest(self) -> str:
        """Content digest of the whole ledger (see :func:`lineage_digest`)."""
        return lineage_digest(self._entries)

    def live_version(self, registry: Optional[str] = None) -> Optional[str]:
        """Live model node id for ``registry`` (or the sole registry)."""
        if registry is not None:
            return self._live.get(registry)
        if len(self._live) == 1:
            return next(iter(self._live.values()))
        return None

    # ------------------------------------------------------------------
    # Appends (all idempotence is by node id)
    # ------------------------------------------------------------------
    def _append(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        entry["seq"] = len(self._entries)
        self._entries.append(entry)
        index = entry["seq"]
        if entry["e"] == "node":
            self._nodes[entry["id"]] = index
            if self._metrics is not None:
                self._metrics.counter(names.LINEAGE_NODES).inc()
            if self._tracer is not None:
                self._tracer.point(
                    names.LINEAGE_NODE,
                    kind=entry["kind"],
                    id=entry["id"],
                )
        elif entry["e"] == "edge":
            self._out.setdefault(entry["src"], []).append(index)
            self._in.setdefault(entry["dst"], []).append(index)
            if self._metrics is not None:
                self._metrics.counter(names.LINEAGE_EDGES).inc()
        return entry

    def _node(
        self, kind: str, node_id: str, attrs: Dict[str, Any]
    ) -> str:
        self._append(
            {
                "e": "node",
                "kind": kind,
                "id": node_id,
                "t": self._clock(),
                "attrs": attrs,
            }
        )
        return node_id

    def _edge(
        self,
        kind: str,
        src: str,
        dst: str,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        entry: Dict[str, Any] = {
            "e": "edge",
            "kind": kind,
            "src": src,
            "dst": dst,
            "t": self._clock(),
        }
        if attrs:
            entry["attrs"] = attrs
        self._append(entry)

    @staticmethod
    def chunk_id(timestamp: int, scope: Optional[str] = None) -> str:
        """Node id of a chunk (scoped per tenant in a fleet)."""
        if scope:
            return f"chunk:{scope}:{timestamp}"
        return f"chunk:{timestamp}"

    def record_chunk(
        self,
        timestamp: int,
        digest: str,
        rows: int,
        scope: Optional[str] = None,
    ) -> str:
        """Record one ingested raw chunk; idempotent per id."""
        node_id = self.chunk_id(timestamp, scope)
        if node_id in self._nodes:
            return node_id
        return self._node(
            "chunk",
            node_id,
            {"timestamp": timestamp, "digest": digest, "rows": rows},
        )

    def record_component(self, fingerprint: Dict[str, Any]) -> str:
        """Record one component fingerprint; content-addressed.

        ``fingerprint`` is the dict produced by
        :func:`repro.pipeline.fingerprint.component_fingerprint` —
        its ``digest`` field becomes the node identity, so an
        unchanged component maps to the same node across trainings.
        """
        node_id = f"comp:{fingerprint['digest'][:12]}"
        if node_id in self._nodes:
            return node_id
        return self._node("component", node_id, dict(fingerprint))

    def record_training(
        self,
        chunks: Sequence[Tuple[str, float]],
        components: Sequence[str],
        rows: int,
        objective: float,
        scope: Optional[str] = None,
    ) -> str:
        """Record one SGD burst.

        ``chunks`` is ``[(chunk_node_id, weight), ...]`` — the weight
        is the chunk's fraction of the training batch's rows, the
        number blame reports aggregate. ``components`` are the
        fingerprint node ids active during the burst.
        """
        node_id = f"train:{self._next_training}"
        self._next_training += 1
        attrs: Dict[str, Any] = {"rows": rows, "objective": objective}
        if scope:
            attrs["scope"] = scope
        self._node("training", node_id, attrs)
        for chunk_node, weight in chunks:
            self._edge(
                "fed", chunk_node, node_id, {"weight": weight}
            )
        for component_node in components:
            self._edge("used", component_node, node_id)
        return node_id

    @staticmethod
    def model_id(registry: str, version: str) -> str:
        return f"model:{registry}:{version}"

    def record_model(
        self,
        registry: str,
        version: str,
        checksum: str,
        parent: Optional[str] = None,
        training: Optional[str] = None,
    ) -> str:
        """Record one registered model version.

        ``parent`` is the parent *version string* in the same
        registry; ``training`` is the producing training node id.
        """
        node_id = self.model_id(registry, version)
        if node_id in self._nodes:
            return node_id
        self._node(
            "model",
            node_id,
            {
                "registry": registry,
                "version": version,
                "checksum": checksum,
            },
        )
        if training is not None and training in self._nodes:
            self._edge("produced", training, node_id)
        if parent is not None:
            parent_node = self.model_id(registry, parent)
            if parent_node in self._nodes:
                self._edge("derived_from", parent_node, node_id)
        return node_id

    def record_transition(
        self, registry: str, version: str, event: str
    ) -> None:
        """Record a lifecycle transition (promote/rollback/reject/gc).

        Promotions and rollbacks update the live-version map the
        monitor reads when stamping incident evidence.
        """
        node_id = self.model_id(registry, version)
        self._append(
            {
                "e": "event",
                "kind": event,
                "id": node_id,
                "t": self._clock(),
            }
        )
        if event in ("promote", "rollback"):
            self._live[registry] = node_id

    def record_incident(
        self,
        rule: str,
        signal: str,
        model: Optional[str] = None,
    ) -> str:
        """Record a fired monitor incident, implicating ``model``."""
        node_id = f"incident:{self._next_incident}"
        self._next_incident += 1
        attrs: Dict[str, Any] = {"rule": rule, "signal": signal}
        self._node("incident", node_id, attrs)
        if model is not None and model in self._nodes:
            self._edge("implicated", model, node_id)
        return node_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve(self, ref: str) -> str:
        """Resolve a user-supplied node reference.

        Accepts a full node id, a bare version string (``v0003``), or
        a bare chunk timestamp (``17``). Ambiguous bare references
        (e.g. ``v0001`` when several registries hold one) raise with
        the candidate list.
        """
        if ref in self._nodes:
            return ref
        candidates = sorted(
            node_id
            for node_id in self._nodes
            if node_id.endswith(f":{ref}")
        )
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise ValidationError(
                f"no lineage node matches {ref!r}"
            )
        raise ValidationError(
            f"{ref!r} is ambiguous; one of: {', '.join(candidates)}"
        )

    def _in_edges(
        self, node_id: str, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        return [
            self._entries[index]
            for index in self._in.get(node_id, [])
            if kind is None or self._entries[index]["kind"] == kind
        ]

    def _out_edges(
        self, node_id: str, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        return [
            self._entries[index]
            for index in self._out.get(node_id, [])
            if kind is None or self._entries[index]["kind"] == kind
        ]

    def blame(self, version: str) -> Dict[str, Any]:
        """Which chunks (with what weights) trained ``version``?

        Walks the ``derived_from`` chain back to the root, collects
        every ``produced`` training event along it, and aggregates
        each contributing chunk's sampling weights. The result lists
        chunks by descending aggregate weight — the first entries are
        the data most responsible for the model.
        """
        model_node = self.resolve(version)
        entry = self.node(model_node)
        if entry["kind"] != "model":
            raise ValidationError(
                f"blame expects a model version, got {model_node!r}"
            )
        chain: List[str] = []
        cursor: Optional[str] = model_node
        while cursor is not None:
            chain.append(cursor)
            parents = self._in_edges(cursor, "derived_from")
            cursor = parents[0]["src"] if parents else None
        trainings: List[str] = []
        weights: Dict[str, float] = {}
        events: Dict[str, int] = {}
        components: Dict[str, int] = {}
        for model in chain:
            for produced in self._in_edges(model, "produced"):
                training = produced["src"]
                trainings.append(training)
                for fed in self._in_edges(training, "fed"):
                    chunk = fed["src"]
                    weight = fed.get("attrs", {}).get("weight", 0.0)
                    weights[chunk] = weights.get(chunk, 0.0) + weight
                    events[chunk] = events.get(chunk, 0) + 1
                for used in self._in_edges(training, "used"):
                    comp = used["src"]
                    components[comp] = components.get(comp, 0) + 1
        chunks = [
            {
                "chunk": chunk,
                "weight": weights[chunk],
                "events": events[chunk],
                "digest": self.node(chunk)["attrs"]["digest"],
            }
            for chunk in sorted(
                weights, key=lambda c: (-weights[c], c)
            )
        ]
        return {
            "version": model_node,
            "derivation": chain,
            "trainings": sorted(trainings),
            "components": sorted(components),
            "chunks": chunks,
        }

    def trace(self, chunk: str) -> Dict[str, Any]:
        """Everything downstream of ``chunk``: trainings, models,
        incidents — the quarantine-by-provenance query."""
        chunk_node = self.resolve(chunk)
        entry = self.node(chunk_node)
        if entry["kind"] != "chunk":
            raise ValidationError(
                f"trace expects a chunk, got {chunk_node!r}"
            )
        downstream: Dict[str, List[str]] = {
            "training": [],
            "model": [],
            "incident": [],
        }
        seen = {chunk_node}
        frontier = [chunk_node]
        while frontier:
            node_id = frontier.pop()
            for edge in self._out_edges(node_id):
                target = edge["dst"]
                if target in seen:
                    continue
                seen.add(target)
                kind = self.node(target)["kind"]
                if kind in downstream:
                    downstream[kind].append(target)
                frontier.append(target)
        return {
            "chunk": chunk_node,
            "digest": entry["attrs"]["digest"],
            "trainings": sorted(downstream["training"]),
            "models": sorted(downstream["model"]),
            "incidents": sorted(downstream["incident"]),
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        """The canonical ``lineage.json`` payload (digest-stamped)."""
        return {
            "schema": LINEAGE_SCHEMA,
            "digest": self.digest(),
            "counts": self.counts(),
            "live": dict(sorted(self._live.items())),
            "entries": list(self._entries),
        }

    def write(self, path: Union[str, Path]) -> Dict[str, Any]:
        """Write ``lineage.json``; returns the payload.

        Serialization is canonical (sorted keys, fixed separators,
        trailing newline), so identical-seed runs produce
        byte-identical files.
        """
        payload = self.payload()
        target = Path(path)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        if self._tracer is not None:
            self._tracer.point(
                names.LINEAGE_EXPORTED,
                entries=len(self._entries),
                digest=payload["digest"],
            )
        return payload

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe mutable state — the entry log is the whole truth;
        the node/edge indexes are rebuilt on load."""
        return {
            "schema": LINEAGE_SCHEMA,
            "entries": [dict(entry) for entry in self._entries],
            "next_training": self._next_training,
            "next_incident": self._next_incident,
            "live": dict(self._live),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        if state.get("schema") != LINEAGE_SCHEMA:
            raise ValidationError(
                f"lineage state schema {state.get('schema')!r} != "
                f"{LINEAGE_SCHEMA}"
            )
        self._entries = [dict(entry) for entry in state["entries"]]
        self._next_training = int(state["next_training"])
        self._next_incident = int(state["next_incident"])
        self._live = dict(state["live"])
        self._reindex()

    def _reindex(self) -> None:
        self._nodes = {}
        self._out = {}
        self._in = {}
        for index, entry in enumerate(self._entries):
            if entry["e"] == "node":
                self._nodes[entry["id"]] = index
            elif entry["e"] == "edge":
                self._out.setdefault(entry["src"], []).append(index)
                self._in.setdefault(entry["dst"], []).append(index)

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"LineageLedger(chunks={counts['chunk']}, "
            f"trainings={counts['training']}, "
            f"models={counts['model']}, edges={counts['edges']})"
        )


# ----------------------------------------------------------------------
# Rendering (CLI)
# ----------------------------------------------------------------------
def format_lineage(ledger: LineageLedger) -> str:
    """Render the ledger summary for ``repro obs lineage show``."""
    counts = ledger.counts()
    lines = ["provenance ledger"]
    for kind in NODE_KINDS:
        lines.append(f"  {kind + 's':<12} {counts[kind]}")
    lines.append(f"  {'edges':<12} {counts['edges']}")
    live = {
        registry: node
        for registry, node in sorted(ledger._live.items())
    }
    for registry, node in live.items():
        lines.append(f"  live[{registry}] = {node}")
    lines.append(f"  digest       {ledger.digest()[:16]}...")
    return "\n".join(lines)


def format_blame(report: Dict[str, Any], limit: int = 10) -> str:
    """Render a :meth:`LineageLedger.blame` report."""
    lines = [
        f"blame {report['version']}",
        f"  derivation: {' <- '.join(report['derivation'])}",
        f"  trainings:  {len(report['trainings'])}"
        f"  components: {len(report['components'])}",
        f"  contributing chunks ({len(report['chunks'])}):",
    ]
    for row in report["chunks"][:limit]:
        lines.append(
            f"    {row['chunk']:<18} weight={row['weight']:.4f} "
            f"events={row['events']} "
            f"digest={row['digest'][:12]}"
        )
    hidden = len(report["chunks"]) - limit
    if hidden > 0:
        lines.append(f"    ... {hidden} more")
    return "\n".join(lines)


def format_trace(report: Dict[str, Any]) -> str:
    """Render a :meth:`LineageLedger.trace` report."""
    lines = [
        f"trace {report['chunk']} "
        f"(digest={report['digest'][:12]})",
        f"  trainings: {', '.join(report['trainings']) or '-'}",
        f"  models:    {', '.join(report['models']) or '-'}",
        f"  incidents: {', '.join(report['incidents']) or '-'}",
    ]
    return "\n".join(lines)


def load_lineage(path: Union[str, Path]) -> LineageLedger:
    """Rebuild a ledger from an exported ``lineage.json``.

    Verifies the stamped digest against the entries, so a truncated
    or hand-edited export fails loudly.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != LINEAGE_SCHEMA:
        raise ValidationError(
            f"lineage schema {payload.get('schema')!r} != "
            f"{LINEAGE_SCHEMA}"
        )
    entries = payload.get("entries", [])
    stamped = payload.get("digest")
    actual = lineage_digest(entries)
    if stamped != actual:
        raise ValidationError(
            f"lineage digest mismatch: stamped {stamped!r}, "
            f"computed {actual!r}"
        )
    ledger = LineageLedger()
    trainings = sum(
        1
        for entry in entries
        if entry.get("e") == "node" and entry.get("kind") == "training"
    )
    incidents = sum(
        1
        for entry in entries
        if entry.get("e") == "node" and entry.get("kind") == "incident"
    )
    ledger.load_state_dict(
        {
            "schema": LINEAGE_SCHEMA,
            "entries": entries,
            "next_training": trainings,
            "next_incident": incidents,
            "live": payload.get("live", {}),
        }
    )
    return ledger
