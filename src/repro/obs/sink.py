"""Event sinks: where structured telemetry events go.

Every event is a flat dict (see :class:`repro.obs.trace.TraceEvent`
for the schema). Two concrete sinks cover the common cases:

* :class:`RingBufferSink` — bounded in-memory buffer, always attached
  so a finished run can be summarized without any file I/O;
* :class:`JsonlSink` — one JSON object per line, the interchange
  format the ``repro obs`` CLI consumes.

:class:`MultiSink` fans one event out to several sinks.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.exceptions import ValidationError

PathLike = Union[str, Path]
EventDict = Dict[str, object]


class EventSink:
    """Receives serialized telemetry events."""

    def emit(self, event: EventDict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class RingBufferSink(EventSink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValidationError(
                f"ring capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        #: Total events ever emitted (may exceed ``len(events)``).
        self.emitted = 0

    def emit(self, event: EventDict) -> None:
        self._events.append(event)
        self.emitted += 1

    @property
    def events(self) -> List[EventDict]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events that fell off the ring."""
        return self.emitted - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"RingBufferSink(capacity={self.capacity}, "
            f"buffered={len(self._events)}, emitted={self.emitted})"
        )


class JsonlSink(EventSink):
    """Append events to a JSONL file, one JSON object per line.

    The file is opened lazily on the first event so constructing a
    telemetry pipeline never touches the filesystem by itself.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle = None
        self.written = 0

    def emit(self, event: EventDict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
        json.dump(event, self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:
        return f"JsonlSink({str(self.path)!r}, written={self.written})"


class MultiSink(EventSink):
    """Fan events out to several sinks."""

    def __init__(self, sinks: Sequence[EventSink]) -> None:
        if not sinks:
            raise ValidationError("MultiSink needs at least one sink")
        self.sinks = list(sinks)

    def emit(self, event: EventDict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __repr__(self) -> str:
        return f"MultiSink({self.sinks!r})"


def iter_jsonl(path: PathLike) -> Iterator[EventDict]:
    """Stream events back from a JSONL trace file."""
    trace = Path(path)
    if not trace.exists():
        raise ValidationError(f"trace file {str(trace)!r} does not exist")
    with open(trace, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as error:
                raise ValidationError(
                    f"{trace}:{line_number}: invalid JSON event: {error}"
                ) from None


def load_jsonl(
    path: PathLike, limit: Optional[int] = None
) -> List[EventDict]:
    """Read a JSONL trace into memory (optionally only the last ``limit``)."""
    events = list(iter_jsonl(path))
    if limit is not None and limit >= 0:
        return events[len(events) - limit:] if limit else []
    return events
