"""Persisted benchmark baselines: the ``BENCH_<name>.json`` trajectory.

Every benchmark or perf-workload run condenses into one schema-
versioned :class:`BenchRecord` — headline metrics (each tagged with
the clock it was measured on), the profile digest of the traced run,
the git SHA, the environment fingerprint, and the seed/knobs needed to
reproduce the run from the JSON alone. Records append to a per-name
trajectory file, ``BENCH_<name>.json``, which the regression detector
(:mod:`repro.obs.perf`) gates fresh runs against and ``repro perf
report`` renders as the bench history of the repository.

Writes are atomic (the ``mkstemp`` + ``os.replace`` discipline of
:func:`repro.utils.fileio.atomic_write_bytes`): a benchmark process
killed mid-append can never leave a truncated trajectory behind.

Metric kinds
------------
``cost``
    Virtual-clock cost units — deterministic, gated by exact match.
``quality``
    Model-quality numbers (errors) — deterministic, gated by exact
    match.
``count``
    Event counts (chunks, retrainings) — deterministic, exact match.
``wall``
    Wall-clock seconds — noisy; gated by a median-of-K window with a
    relative budget.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.exceptions import ValidationError
from repro.obs import names
from repro.utils.fileio import atomic_write_bytes

PathLike = Union[str, Path]

#: Bump when the record layout changes incompatibly.
RECORD_SCHEMA = 1

#: Kinds measured on a deterministic clock (exact-match gating).
EXACT_KINDS = ("cost", "quality", "count")
#: Kinds measured on the wall clock (noise-aware gating).
NOISY_KINDS = ("wall",)
METRIC_KINDS = EXACT_KINDS + NOISY_KINDS


@dataclass(frozen=True)
class MetricValue:
    """One recorded metric: a number plus the clock it came from."""

    value: float
    kind: str = "cost"

    def __post_init__(self) -> None:
        if self.kind not in METRIC_KINDS:
            raise ValidationError(
                f"metric kind must be one of {METRIC_KINDS}, "
                f"got {self.kind!r}"
            )

    @property
    def exact(self) -> bool:
        return self.kind in EXACT_KINDS

    def to_dict(self) -> Dict[str, object]:
        return {"value": self.value, "kind": self.kind}


@dataclass
class BenchRecord:
    """One benchmark run, condensed for the trajectory file."""

    name: str
    metrics: Dict[str, MetricValue]
    seed: Optional[int] = None
    params: Dict[str, object] = field(default_factory=dict)
    profile_digest: Optional[str] = None
    git_sha: Optional[str] = None
    env: Dict[str, str] = field(default_factory=dict)
    created_unix: float = 0.0
    schema: int = RECORD_SCHEMA

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in "/\\ "):
            raise ValidationError(
                f"record name must be a bare identifier, got "
                f"{self.name!r}"
            )

    def metric(self, key: str) -> MetricValue:
        try:
            return self.metrics[key]
        except KeyError:
            raise ValidationError(
                f"record {self.name!r} has no metric {key!r}; "
                f"recorded metrics are {sorted(self.metrics)}"
            ) from None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "name": self.name,
            "created_unix": self.created_unix,
            "git_sha": self.git_sha,
            "env": dict(self.env),
            "seed": self.seed,
            "params": dict(self.params),
            "profile_digest": self.profile_digest,
            "metrics": {
                key: value.to_dict()
                for key, value in sorted(self.metrics.items())
            },
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "BenchRecord":
        schema = raw.get("schema")
        if schema != RECORD_SCHEMA:
            raise ValidationError(
                f"bench record schema {schema!r} is not the supported "
                f"schema {RECORD_SCHEMA}"
            )
        metrics_raw = raw.get("metrics")
        if not isinstance(metrics_raw, Mapping):
            raise ValidationError(
                "bench record has no 'metrics' mapping"
            )
        metrics = {
            str(key): MetricValue(
                value=float(entry["value"]),
                kind=str(entry.get("kind", "cost")),
            )
            for key, entry in metrics_raw.items()
        }
        return cls(
            name=str(raw.get("name", "")),
            metrics=metrics,
            seed=raw.get("seed"),
            params=dict(raw.get("params", {})),
            profile_digest=raw.get("profile_digest"),
            git_sha=raw.get("git_sha"),
            env=dict(raw.get("env", {})),
            created_unix=float(raw.get("created_unix", 0.0)),
        )


def make_record(
    name: str,
    metrics: Mapping[str, MetricValue],
    seed: Optional[int] = None,
    params: Optional[Mapping[str, object]] = None,
    profile_digest: Optional[str] = None,
    repo_root: Optional[PathLike] = None,
) -> BenchRecord:
    """Build a record, stamping git SHA + environment fingerprint."""
    return BenchRecord(
        name=name,
        metrics=dict(metrics),
        seed=seed,
        params=dict(params or {}),
        profile_digest=profile_digest,
        git_sha=current_git_sha(repo_root),
        env=environment_fingerprint(),
        created_unix=time.time(),
    )


def environment_fingerprint() -> Dict[str, str]:
    """What the numbers were measured on, for trajectory forensics."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "numpy": numpy.__version__,
    }


def current_git_sha(repo_root: Optional[PathLike] = None) -> Optional[str]:
    """HEAD's SHA, or ``None`` outside a git checkout (e.g. a sdist)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


class BaselineStore:
    """Directory of ``BENCH_<name>.json`` trajectory files.

    Each file holds every record ever appended for one bench name,
    oldest first. Appends rewrite the file atomically; a concurrent
    reader sees either the old or the new trajectory, never a torn
    one.
    """

    def __init__(self, root: PathLike, telemetry=None) -> None:
        self.root = Path(root)
        self.telemetry = telemetry

    def path_for(self, name: str) -> Path:
        return self.root / f"BENCH_{name}.json"

    def names(self) -> List[str]:
        """Bench names with a trajectory in this store, sorted."""
        if not self.root.is_dir():
            return []
        found = []
        for path in sorted(self.root.glob("BENCH_*.json")):
            found.append(path.stem[len("BENCH_"):])
        return found

    def load(self, name: str) -> List[BenchRecord]:
        """All records for ``name``, oldest first ([] when absent)."""
        path = self.path_for(name)
        if not path.exists():
            return []
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ValidationError(
                f"trajectory {path} is unreadable: {error}"
            ) from error
        if (
            not isinstance(raw, Mapping)
            or raw.get("schema") != RECORD_SCHEMA
            or not isinstance(raw.get("records"), list)
        ):
            raise ValidationError(
                f"trajectory {path} is not a schema-{RECORD_SCHEMA} "
                "BENCH trajectory"
            )
        return [BenchRecord.from_dict(entry) for entry in raw["records"]]

    def latest(self, name: str) -> Optional[BenchRecord]:
        records = self.load(name)
        return records[-1] if records else None

    def append(self, record: BenchRecord) -> Path:
        """Append ``record`` to its trajectory (atomic rewrite)."""
        records = self.load(record.name)
        payload = {
            "schema": RECORD_SCHEMA,
            "name": record.name,
            "records": [r.to_dict() for r in records]
            + [record.to_dict()],
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = atomic_write_bytes(
            self.path_for(record.name),
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
        )
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.tracer.point(
                names.PERF_RECORD,
                bench=record.name,
                metrics=len(record.metrics),
            )
            self.telemetry.metrics.counter(
                names.PERF_RECORDS_APPENDED
            ).inc()
        return path

    def __repr__(self) -> str:
        return f"BaselineStore({str(self.root)!r})"
