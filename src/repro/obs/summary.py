"""Trace summarization and rendering.

Consumes the JSONL event schema (:data:`repro.obs.trace.EVENT_FIELDS`)
— live from a :class:`~repro.obs.telemetry.Telemetry` ring buffer or
offline from a trace file — and produces the per-run summary the
``repro obs summary`` CLI prints: per-span-name counts and exact
p50/p95/p99 durations on the virtual clock, point-event counts, and
the final counter/gauge state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.obs.sink import EventDict, load_jsonl


@dataclass(frozen=True)
class SpanSummary:
    """Aggregate statistics for one span name."""

    name: str
    count: int
    total_dur: float
    p50: float
    p95: float
    p99: float
    max_dur: float
    total_wall_s: float


@dataclass
class TraceSummary:
    """Everything ``repro obs summary`` reports for one trace."""

    spans: List[SpanSummary] = field(default_factory=list)
    points: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: name -> {count, mean, min, max, p50, p95, p99} from the
    #: streaming histograms in the run's final metrics snapshot.
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    events: int = 0

    @property
    def total_span_dur(self) -> float:
        return sum(span.total_dur for span in self.spans)


def summarize_events(
    events: Iterable[EventDict],
    metrics_snapshot: Optional[Mapping[str, object]] = None,
) -> TraceSummary:
    """Aggregate a stream of events into a :class:`TraceSummary`.

    Percentiles are exact (computed over all span durations present in
    the stream). Counters and gauges come from ``metrics_snapshot``
    when given, else from the last ``metrics`` event in the stream —
    the snapshot a finished run appends via
    :meth:`~repro.obs.telemetry.Telemetry.flush_metrics`.
    """
    durations: Dict[str, List[float]] = {}
    walls: Dict[str, float] = {}
    points: Dict[str, int] = {}
    snapshot: Optional[Mapping[str, object]] = metrics_snapshot
    count = 0
    for event in events:
        count += 1
        kind = event.get("kind")
        name = str(event.get("name", "?"))
        if kind == "span":
            durations.setdefault(name, []).append(
                float(event.get("dur", 0.0))
            )
            walls[name] = walls.get(name, 0.0) + float(
                event.get("wall_s", 0.0)
            )
        elif kind == "point":
            points[name] = points.get(name, 0) + 1
        elif kind == "metrics" and metrics_snapshot is None:
            snapshot = event.get("attrs", {})  # last one wins
    spans = []
    for name in sorted(durations):
        values = np.asarray(durations[name], dtype=np.float64)
        spans.append(
            SpanSummary(
                name=name,
                count=int(values.size),
                total_dur=float(values.sum()),
                p50=float(np.percentile(values, 50)),
                p95=float(np.percentile(values, 95)),
                p99=float(np.percentile(values, 99)),
                max_dur=float(values.max()),
                total_wall_s=walls[name],
            )
        )
    spans.sort(key=lambda span: span.total_dur, reverse=True)
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    if snapshot:
        counters = dict(snapshot.get("counters", {}))
        gauges = dict(snapshot.get("gauges", {}))
        histograms = {
            name: dict(stats)
            for name, stats in snapshot.get("histograms", {}).items()
        }
    return TraceSummary(
        spans=spans,
        points=dict(sorted(points.items())),
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        events=count,
    )


def summarize_trace(path) -> TraceSummary:
    """Summarize a JSONL trace file."""
    return summarize_events(load_jsonl(path))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as the CLI's aligned text report."""
    lines: List[str] = [f"events: {summary.events}"]
    if summary.spans:
        lines.append("")
        lines.append("spans (virtual-clock durations, cost units):")
        rows = [
            (
                "name",
                "count",
                "total",
                "p50",
                "p95",
                "p99",
                "max",
                "wall_s",
            )
        ]
        for span in summary.spans:
            rows.append(
                (
                    span.name,
                    str(span.count),
                    f"{span.total_dur:.4f}",
                    f"{span.p50:.6f}",
                    f"{span.p95:.6f}",
                    f"{span.p99:.6f}",
                    f"{span.max_dur:.6f}",
                    f"{span.total_wall_s:.3f}",
                )
            )
        lines.extend(_align(rows))
    if summary.points:
        lines.append("")
        lines.append("point events:")
        for name, count in summary.points.items():
            lines.append(f"  {name:<28} {count}")
    if summary.counters:
        lines.append("")
        lines.append("counters:")
        for name, value in sorted(summary.counters.items()):
            lines.append(f"  {name:<28} {value:g}")
    if summary.gauges:
        lines.append("")
        lines.append("gauges:")
        for name, value in sorted(summary.gauges.items()):
            lines.append(f"  {name:<28} {value:g}")
    if summary.histograms:
        lines.append("")
        lines.append("histograms (streaming, approximate quantiles):")
        rows = [("name", "count", "mean", "p50", "p95", "p99", "max")]
        for name, stats in sorted(summary.histograms.items()):
            if not stats.get("count"):
                continue
            rows.append(
                (
                    name,
                    f"{stats.get('count', 0):g}",
                    f"{stats.get('mean', 0.0):.4f}",
                    f"{stats.get('p50', 0.0):.4f}",
                    f"{stats.get('p95', 0.0):.4f}",
                    f"{stats.get('p99', 0.0):.4f}",
                    f"{stats.get('max', 0.0):.4f}",
                )
            )
        if len(rows) > 1:
            lines.extend(_align(rows))
    return "\n".join(lines)


def format_tail(events: Sequence[EventDict], limit: int = 20) -> str:
    """Render the last ``limit`` events, one line each."""
    chosen = list(events)[-limit:] if limit else []
    lines = []
    for event in chosen:
        kind = event.get("kind", "?")
        name = event.get("name", "?")
        t = float(event.get("t", 0.0))
        dur = float(event.get("dur", 0.0))
        attrs = event.get("attrs", {})
        rendered_attrs = " ".join(
            f"{key}={value}" for key, value in sorted(attrs.items())
        ) if isinstance(attrs, dict) else str(attrs)
        if kind == "span":
            lines.append(
                f"[{t:12.4f}] span  {name:<28} dur={dur:.6f} "
                f"{rendered_attrs}".rstrip()
            )
        elif kind == "metrics":
            lines.append(f"[{t:12.4f}] metrics snapshot")
        else:
            lines.append(
                f"[{t:12.4f}] point {name:<28} {rendered_attrs}".rstrip()
            )
    return "\n".join(lines)


def _align(rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  "
            + "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append(
                "  " + "  ".join("-" * width for width in widths)
            )
    return lines
