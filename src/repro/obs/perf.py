"""Regression gating over persisted benchmark baselines.

The detector compares a fresh :class:`~repro.obs.baseline.BenchRecord`
against the committed trajectory for the same bench name, with
noise-aware tolerances per metric kind:

* **exact kinds** (``cost``/``quality``/``count``) are measured on the
  platform's deterministic virtual clock, so the gate is exact match
  against the latest baseline record — any drift is a determinism or
  performance event worth a verdict (``regression`` when worse,
  ``improvement`` when better; both are reported, only regressions
  gate);
* **wall** metrics are noisy, so the fresh value is compared against
  the median of the last *K* baseline records with a configurable
  relative budget — a single hot CI machine never trips the gate,
  a sustained slowdown does;
* profile digests (when both sides carry one) detect cost-*shape*
  changes that leave the totals intact; they report as ``changed`` and
  gate only when the policy says so.

``repro perf check`` maps a failing report to exit code 1 (mirroring
``repro lint``), which is what ``make bench-check`` and the CI
perf-smoke job gate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ValidationError
from repro.obs import names
from repro.obs.baseline import BenchRecord, MetricValue

#: Verdicts that fail the gate.
FAILING_VERDICTS = ("regression", "missing")


@dataclass(frozen=True)
class TolerancePolicy:
    """How much drift each metric kind is allowed.

    ``wall_budget`` is the relative slack for wall-clock metrics
    (0.5 = the fresh run may be up to 50% slower than the median of
    the comparison window). ``window`` is K of the median-of-K.
    ``gate_profile`` escalates a profile-digest change from a warning
    to a gate failure.
    """

    wall_budget: float = 0.5
    window: int = 5
    gate_profile: bool = False

    def __post_init__(self) -> None:
        if self.wall_budget < 0.0:
            raise ValidationError(
                f"wall budget must be >= 0, got {self.wall_budget}"
            )
        if self.window < 1:
            raise ValidationError(
                f"median window must be >= 1, got {self.window}"
            )


@dataclass(frozen=True)
class MetricCheck:
    """The verdict for one metric (or the profile digest)."""

    metric: str
    kind: str
    verdict: str
    fresh: Optional[float] = None
    baseline: Optional[float] = None
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.verdict in FAILING_VERDICTS


@dataclass
class RegressionReport:
    """Everything ``repro perf check`` reports for one bench name."""

    name: str
    checks: List[MetricCheck] = field(default_factory=list)
    baseline_records: int = 0

    @property
    def regressions(self) -> List[MetricCheck]:
        return [check for check in self.checks if check.failed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def exit_code(self) -> int:
        return 0 if self.ok else 1


def check_record(
    fresh: BenchRecord,
    history: Sequence[BenchRecord],
    policy: Optional[TolerancePolicy] = None,
    telemetry=None,
) -> RegressionReport:
    """Gate ``fresh`` against its baseline trajectory.

    ``history`` is the stored trajectory, oldest first (the fresh
    record must NOT already be part of it). An empty history yields an
    all-``new`` passing report — the first recorded run founds the
    baseline rather than failing it.
    """
    policy = policy if policy is not None else TolerancePolicy()
    report = RegressionReport(
        name=fresh.name, baseline_records=len(history)
    )
    if not history:
        for key, value in sorted(fresh.metrics.items()):
            report.checks.append(
                MetricCheck(
                    metric=key,
                    kind=value.kind,
                    verdict="new",
                    fresh=value.value,
                    detail="no baseline trajectory yet",
                )
            )
        _emit(telemetry, report)
        return report

    latest = history[-1]
    window = list(history)[-policy.window:]
    for key, value in sorted(fresh.metrics.items()):
        if value.exact:
            report.checks.append(_check_exact(key, value, latest))
        else:
            report.checks.append(
                _check_noisy(key, value, window, policy)
            )
    for key, value in sorted(latest.metrics.items()):
        if key not in fresh.metrics:
            report.checks.append(
                MetricCheck(
                    metric=key,
                    kind=value.kind,
                    verdict="missing",
                    baseline=value.value,
                    detail="metric present in the baseline but not in "
                    "the fresh run",
                )
            )
    report.checks.append(_check_digest(fresh, latest, policy))
    _emit(telemetry, report)
    return report


def _check_exact(
    key: str, value: MetricValue, latest: BenchRecord
) -> MetricCheck:
    base = latest.metrics.get(key)
    if base is None:
        return MetricCheck(
            metric=key,
            kind=value.kind,
            verdict="new",
            fresh=value.value,
            detail="metric not present in the baseline record",
        )
    if value.value == base.value:
        return MetricCheck(
            metric=key,
            kind=value.kind,
            verdict="ok",
            fresh=value.value,
            baseline=base.value,
        )
    worse = value.value > base.value
    if value.kind == "count":
        # A deterministic event count that moved at all means the run
        # did different work — always a gate failure.
        worse = True
    delta = value.value - base.value
    rel = delta / base.value if base.value else float("inf")
    return MetricCheck(
        metric=key,
        kind=value.kind,
        verdict="regression" if worse else "improvement",
        fresh=value.value,
        baseline=base.value,
        detail=f"exact-match gate: {delta:+.6g} ({rel:+.2%})",
    )


def _check_noisy(
    key: str,
    value: MetricValue,
    window: Sequence[BenchRecord],
    policy: TolerancePolicy,
) -> MetricCheck:
    samples = [
        record.metrics[key].value
        for record in window
        if key in record.metrics
    ]
    if not samples:
        return MetricCheck(
            metric=key,
            kind=value.kind,
            verdict="new",
            fresh=value.value,
            detail="metric not present in the comparison window",
        )
    center = median(samples)
    ceiling = center * (1.0 + policy.wall_budget)
    floor = center * (1.0 - policy.wall_budget)
    if value.value > ceiling:
        verdict = "regression"
    elif value.value < floor:
        verdict = "improvement"
    else:
        verdict = "ok"
    return MetricCheck(
        metric=key,
        kind=value.kind,
        verdict=verdict,
        fresh=value.value,
        baseline=center,
        detail=(
            f"median of last {len(samples)} = {center:.6g}, "
            f"budget ±{policy.wall_budget:.0%}"
        ),
    )


def _check_digest(
    fresh: BenchRecord, latest: BenchRecord, policy: TolerancePolicy
) -> MetricCheck:
    if fresh.profile_digest is None or latest.profile_digest is None:
        return MetricCheck(
            metric="profile_digest",
            kind="cost",
            verdict="ok",
            detail="no digest on one side; shape check skipped",
        )
    if fresh.profile_digest == latest.profile_digest:
        return MetricCheck(
            metric="profile_digest", kind="cost", verdict="ok"
        )
    return MetricCheck(
        metric="profile_digest",
        kind="cost",
        verdict="regression" if policy.gate_profile else "changed",
        detail=(
            f"cost shape changed: {latest.profile_digest[:12]}… → "
            f"{fresh.profile_digest[:12]}…"
        ),
    )


def _emit(telemetry, report: RegressionReport) -> None:
    if telemetry is None or not telemetry.enabled:
        return
    telemetry.tracer.point(
        names.PERF_CHECK,
        bench=report.name,
        checks=len(report.checks),
        regressions=len(report.regressions),
    )
    if report.regressions:
        telemetry.metrics.counter(names.PERF_REGRESSIONS).inc(
            len(report.regressions)
        )


# ----------------------------------------------------------------------
# Workloads: the CLI's record/check runner
# ----------------------------------------------------------------------
def workload_name(scenario_name: str, approach: str) -> str:
    """Canonical trajectory name for a CLI perf workload."""
    return f"run_{scenario_name.replace('-', '_')}_{approach}"


def run_workload(scenario, approach: str):
    """Run one traced deployment and condense it into a record.

    Returns ``(record, profile_root)``. The run is instrumented with
    an in-memory telemetry bundle; the record carries the virtual-cost
    headline metrics (exact-gated), the run's wall time (noise-gated),
    the per-counter event counts, and the profile digest of the folded
    span tree, so ``repro perf check`` can gate both the totals and
    the cost shape.
    """
    from repro.experiments.common import make_deployment
    from repro.obs.profile import build_profile, profile_digest
    from repro.obs.telemetry import Telemetry

    telemetry = Telemetry()
    deployment = make_deployment(scenario, approach, telemetry=telemetry)
    deployment.initial_fit(
        scenario.make_initial_data(),
        seed=scenario.seed,
        **scenario.initial_fit_kwargs,
    )
    result = deployment.run(scenario.make_stream())
    telemetry.flush_metrics()
    root = build_profile(telemetry.events)
    if telemetry.enabled:
        telemetry.tracer.point(
            names.PROFILE_BUILT, spans=root.count
        )
        telemetry.metrics.gauge(names.PROFILE_NODES).set(
            sum(1 for _ in root.walk()) - 1
        )
    metrics: Dict[str, MetricValue] = {
        "total_cost": MetricValue(result.total_cost, "cost"),
        "final_error": MetricValue(result.final_error, "quality"),
        "average_error": MetricValue(result.average_error, "quality"),
        "chunks": MetricValue(float(result.chunks_processed), "count"),
        "wall_s": MetricValue(result.wall_seconds, "wall"),
    }
    for counter, count in sorted(result.counters.items()):
        metrics[f"n_{counter}"] = MetricValue(float(count), "count")

    from repro.obs.baseline import make_record

    record = make_record(
        name=workload_name(scenario.name, approach),
        metrics=metrics,
        seed=scenario.seed,
        params={
            "scenario": scenario.name,
            "approach": approach,
            "num_chunks": scenario.num_chunks,
            "online_batch_rows": scenario.online_batch_rows,
        },
        profile_digest=profile_digest(root),
    )
    return record, root


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_report(report: RegressionReport) -> str:
    """Aligned text report for one gated bench name."""
    lines = [
        f"bench: {report.name} "
        f"(baseline records: {report.baseline_records})"
    ]
    rows = [("metric", "kind", "baseline", "fresh", "verdict", "detail")]
    for check in report.checks:
        rows.append(
            (
                check.metric,
                check.kind,
                _num(check.baseline),
                _num(check.fresh),
                check.verdict,
                check.detail,
            )
        )
    lines.extend(_align(rows))
    if report.ok:
        lines.append("verdict: OK — no regressions")
    else:
        failed = ", ".join(c.metric for c in report.regressions)
        lines.append(f"verdict: REGRESSION in {failed}")
    return "\n".join(lines)


def format_trajectory(name: str, records: Sequence[BenchRecord]) -> str:
    """One line per record: when, where, and the headline numbers."""
    lines = [f"trajectory: {name} ({len(records)} record(s))"]
    rows = [("#", "git", "seed", "metrics")]
    for index, record in enumerate(records):
        headline = ", ".join(
            f"{key}={value.value:g}"
            for key, value in sorted(record.metrics.items())
            if value.exact
        )
        rows.append(
            (
                str(index),
                (record.git_sha or "-")[:10],
                str(record.seed if record.seed is not None else "-"),
                headline or "-",
            )
        )
    lines.extend(_align(rows))
    return "\n".join(lines)


def _num(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.6g}"


def _align(rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  "
            + "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append(
                "  " + "  ".join("-" * width for width in widths)
            )
    return lines
