"""The telemetry bundle a deployment run carries.

:class:`Telemetry` wires the three observability primitives together —
a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.trace.Tracer`, and an event sink chain (an
in-memory ring buffer, plus an optional user sink such as a
:class:`~repro.obs.sink.JsonlSink`). One bundle instruments one run:
the execution engine binds its virtual clock at construction, and
every component reads instruments out of the shared registry.

The disabled singleton :data:`NULL_TELEMETRY` is what every component
holds by default; its tracer is the no-op :class:`NullTracer` and code
on hot paths guards metric writes with ``telemetry.enabled``, so the
default configuration stays byte-identical (and almost free) relative
to an un-instrumented build.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import EventSink, MultiSink, RingBufferSink
from repro.obs.trace import NULL_TRACER, Tracer


class Telemetry:
    """Metrics + tracer + sinks for one deployment run.

    Parameters
    ----------
    sink:
        Optional extra sink (e.g. a JSONL file); events always also
        land in the internal ring buffer.
    ring_capacity:
        Bound on the in-memory event buffer.
    enabled:
        ``False`` builds a disabled bundle (used for the shared
        :data:`NULL_TELEMETRY` singleton).
    """

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        ring_capacity: int = 65536,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.ring = RingBufferSink(ring_capacity)
        self._extra_sink = sink
        chain: EventSink = (
            MultiSink([self.ring, sink]) if sink is not None else self.ring
        )
        self.sink = chain
        self.tracer = (
            Tracer(chain, metrics=self.metrics) if enabled else NULL_TRACER
        )
        #: Attached :class:`~repro.obs.monitor.HealthMonitor`, if any.
        self.monitor = None
        #: Attached :class:`~repro.obs.lineage.LineageLedger`, if any.
        self.ledger = None

    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Bind the run's virtual clock (the engine's ``total_cost``)."""
        self.tracer.bind_clock(clock)

    def attach_monitor(self, monitor=None, *, rules=None, config=None):
        """Splice a :class:`~repro.obs.monitor.HealthMonitor` into the
        sink chain so it sees every event live.

        Pass a prebuilt ``monitor`` or let one be constructed from
        ``rules``/``config``. The monitor gets this bundle's tracer
        and metrics bound, so alert transitions show up in the event
        stream (``alert.firing`` points, ``alert.fired`` counters)
        next to the signals that caused them. Returns the monitor.
        """
        from repro.exceptions import ValidationError
        from repro.obs.monitor import HealthMonitor

        if not self.enabled:
            raise ValidationError(
                "cannot attach a monitor to disabled telemetry"
            )
        if self.monitor is not None:
            raise ValidationError(
                "this telemetry bundle already has a monitor attached"
            )
        if monitor is None:
            monitor = HealthMonitor(rules=rules, config=config)
        monitor.bind(tracer=self.tracer, metrics=self.metrics)
        if self.ledger is not None:
            monitor.bind(ledger=self.ledger)
        chain = MultiSink([self.sink, monitor])
        self.sink = chain
        self.tracer.sink = chain
        self.monitor = monitor
        return monitor

    def attach_ledger(self, ledger=None):
        """Attach a :class:`~repro.obs.lineage.LineageLedger`.

        The ledger is not a sink — platform components record into it
        directly — but it binds this bundle's tracer (for the virtual
        clock and ``lineage.node`` points) and metrics. Returns the
        ledger.
        """
        from repro.exceptions import ValidationError
        from repro.obs.lineage import LineageLedger

        if not self.enabled:
            raise ValidationError(
                "cannot attach a ledger to disabled telemetry"
            )
        if self.ledger is not None:
            raise ValidationError(
                "this telemetry bundle already has a ledger attached"
            )
        if ledger is None:
            ledger = LineageLedger()
        ledger.bind(tracer=self.tracer, metrics=self.metrics)
        if self.monitor is not None:
            self.monitor.bind(ledger=ledger)
        self.ledger = ledger
        return ledger

    @property
    def events(self) -> List[Dict[str, object]]:
        """Buffered events, oldest first."""
        return self.ring.events

    def flush_metrics(self) -> None:
        """Emit the current metrics snapshot as a ``metrics`` event.

        Called at the end of a run so JSONL traces are self-contained:
        offline consumers get final counter/gauge/histogram state
        without access to the in-process registry.
        """
        if self.enabled:
            self.tracer.emit_metrics(self.metrics.snapshot())

    def summary(self):
        """Summarize the buffered events (see :mod:`repro.obs.summary`)."""
        from repro.obs.summary import summarize_events

        return summarize_events(self.events, self.metrics.snapshot())

    def close(self) -> None:
        """Close the sink chain (flushes JSONL files).

        An attached monitor is flushed *first*, while the chain is
        still open — its final-window alert points must reach the
        other sinks before files close.
        """
        if self.monitor is not None:
            self.monitor.flush()
        self.sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Telemetry({state}, buffered={len(self.ring)})"


#: Shared disabled bundle; what components hold when no telemetry was
#: requested. Never written to — all writers check ``enabled`` first.
NULL_TELEMETRY = Telemetry(enabled=False)
