"""``repro.obs`` — structured telemetry for the deployment platform.

A cross-cutting observability layer with three primitives:

* :class:`MetricsRegistry` — counters, gauges, and streaming
  histograms (p50/p95/p99 without storing samples), cheap enough to
  leave attached to a production run;
* :class:`Tracer` — span-based event tracing on the platform's two
  clocks (deterministic cost units and wall seconds), with a no-op
  :class:`NullTracer` so disabled tracing costs one attribute check;
* sinks and exporters — an in-memory ring buffer, a JSONL file sink,
  and summary rendering (``repro obs summary`` / ``repro obs tail``);
* the performance observatory — a cost-attribution profiler folding
  span streams into a hierarchical profile tree
  (:func:`build_profile`), persisted benchmark baselines
  (:class:`BaselineStore` / ``BENCH_<name>.json`` trajectories), and
  a noise-aware regression gate (:func:`check_record`), surfaced as
  ``repro perf {profile,record,check,report}``;
* the live health monitor — a :class:`HealthMonitor` spliced into the
  sink chain (``telemetry.attach_monitor()``) aggregates the event
  stream into tumbling/sliding virtual-clock windows, evaluates
  declarative :class:`AlertRule` sets, manages the pending → firing →
  resolved incident lifecycle, and exports a deterministic
  ``health.json`` timeline, surfaced as ``repro obs
  {health,alerts}`` and ``--monitor`` on the experiment commands.

Enable telemetry on any deployment by passing a bundle::

    from repro.obs import JsonlSink, Telemetry

    telemetry = Telemetry(sink=JsonlSink("run.jsonl"))
    deployment = ContinuousDeployment(..., telemetry=telemetry)
    result = deployment.run(stream)
    print(format_summary(result.telemetry.summary()))
    telemetry.close()
"""

from repro.obs.baseline import (
    BaselineStore,
    BenchRecord,
    MetricValue,
    current_git_sha,
    environment_fingerprint,
    make_record,
)
from repro.obs.incident import (
    HEALTH_SCHEMA,
    Incident,
    IncidentLog,
    format_alerts,
    format_timeline,
    health_digest,
)
from repro.obs.lineage import (
    LINEAGE_SCHEMA,
    LineageLedger,
    format_blame,
    format_lineage,
    format_trace,
    lineage_digest,
    load_lineage,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.obs.monitor import (
    HealthMonitor,
    MonitorConfig,
    default_rules,
    replay_trace,
)
from repro.obs.perf import (
    MetricCheck,
    RegressionReport,
    TolerancePolicy,
    check_record,
    format_report,
    format_trajectory,
    run_workload,
)
from repro.obs.profile import (
    ProfileNode,
    build_profile,
    format_profile,
    profile_digest,
    profile_to_dict,
    profile_trace,
    subsystem_totals,
    to_collapsed,
)
from repro.obs.sink import (
    EventSink,
    JsonlSink,
    MultiSink,
    RingBufferSink,
    iter_jsonl,
    load_jsonl,
)
from repro.obs.summary import (
    SpanSummary,
    TraceSummary,
    format_summary,
    format_tail,
    summarize_events,
    summarize_trace,
)
from repro.obs.rules import AlertRule, Evaluation, RuleState
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import (
    EVENT_FIELDS,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
)
from repro.obs.windows import (
    SeriesWindows,
    SlidingView,
    WindowAggregate,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
    # tracing
    "EVENT_FIELDS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    # sinks
    "EventSink",
    "JsonlSink",
    "MultiSink",
    "RingBufferSink",
    "iter_jsonl",
    "load_jsonl",
    # bundle
    "NULL_TELEMETRY",
    "Telemetry",
    # summaries
    "SpanSummary",
    "TraceSummary",
    "format_summary",
    "format_tail",
    "summarize_events",
    "summarize_trace",
    # profiling
    "ProfileNode",
    "build_profile",
    "format_profile",
    "profile_digest",
    "profile_to_dict",
    "profile_trace",
    "subsystem_totals",
    "to_collapsed",
    # baselines
    "BaselineStore",
    "BenchRecord",
    "MetricValue",
    "current_git_sha",
    "environment_fingerprint",
    "make_record",
    # regression gating
    "MetricCheck",
    "RegressionReport",
    "TolerancePolicy",
    "check_record",
    "format_report",
    "format_trajectory",
    "run_workload",
    # health monitor
    "AlertRule",
    "Evaluation",
    "RuleState",
    "HEALTH_SCHEMA",
    "HealthMonitor",
    "Incident",
    "IncidentLog",
    "MonitorConfig",
    "SeriesWindows",
    "SlidingView",
    "WindowAggregate",
    "default_rules",
    "format_alerts",
    "format_timeline",
    "health_digest",
    "replay_trace",
    # provenance ledger
    "LINEAGE_SCHEMA",
    "LineageLedger",
    "format_blame",
    "format_lineage",
    "format_trace",
    "lineage_digest",
    "load_lineage",
]
