"""The telemetry name vocabulary — the single source of truth.

Every metric, span, and point event the platform emits is named here
as an importable constant, and reprolint's REP005 rule checks that
any name literal reaching a telemetry instrument either *is* one of
these constants or matches an entry of :data:`KNOWN_NAMES` /
:data:`KNOWN_PREFIXES`. Adding an event therefore means adding a
constant (one diff line reviewers can veto), not inventing a string
at a call site that dashboards and trace tooling will never learn
about.

Names follow the ``subsystem.event`` dotted convention: lowercase
``[a-z0-9_]`` segments joined by dots, at least two segments, the
first naming the owning subsystem (``engine``, ``cache``,
``scheduler``, ``platform``, ``serving``, ``registry``, ``rollout``,
``reliability``, ``drift``, ``sampler``, ``span``, ``perf``,
``profile``, ``monitor``, ``alert``, ``health``, ``traffic``,
``batch``, ``slo``, ``fleet``, ``lineage``).

Families whose tail is data-dependent (``registry.<event>``,
``rollout.<action>``, ``span.<span-name>``) are declared as prefixes
in :data:`KNOWN_PREFIXES`; call sites build them with the ``*_PREFIX``
constants so the literal part stays checkable.
"""

from __future__ import annotations

import re

#: The ``subsystem.event`` dotted convention (REP005's shape check).
NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

# -- execution engine ---------------------------------------------------
ENGINE_ONLINE_PASS = "engine.online_pass"
ENGINE_TRANSFORM_ONLY = "engine.transform_only"
ENGINE_SERVE_TRANSFORM = "engine.serve_transform"
ENGINE_TRAIN_STEP = "engine.train_step"
ENGINE_TRAIN_FULL = "engine.train_full"
ENGINE_PREDICT = "engine.predict"
ENGINE_READ_CHUNK = "engine.read_chunk"

# -- materialization cache / sampling -----------------------------------
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
CACHE_EVICTIONS = "cache.evictions"
CACHE_REMATERIALIZATIONS = "cache.rematerializations"
CACHE_MATERIALIZED_CHUNKS = "cache.materialized_chunks"
CACHE_MATERIALIZED_BYTES = "cache.materialized_bytes"
CACHE_SAMPLE = "cache.sample"
SAMPLER_CHUNK_AGE = "sampler.chunk_age"

# -- platform / scheduler -----------------------------------------------
PLATFORM_OBSERVE = "platform.observe"
PLATFORM_CHUNK = "platform.chunk"
PLATFORM_PROACTIVE_TRAINING = "platform.proactive_training"
PLATFORM_FULL_RETRAIN = "platform.full_retrain"
PLATFORM_REGISTER_CANDIDATE = "platform.register_candidate"
SCHEDULER_DECISION = "scheduler.decision"
SCHEDULER_FIRED = "scheduler.fired"
SCHEDULER_SKIPPED = "scheduler.skipped"
PROACTIVE_DURATION = "proactive.duration"

# -- drift detection ----------------------------------------------------
DRIFT_SIGNAL = "drift.signal"
DRIFT_WARNING = "drift.warning"
DRIFT_SIGNALS = "drift.signals"
DRIFT_WARNINGS = "drift.warnings"

# -- serving / registry / rollout ---------------------------------------
SERVING_ATTACH = "serving.attach"
SERVING_BATCHES = "serving.batches"
SERVING_ROWS = "serving.rows"
SERVING_CANARY_ROWS = "serving.canary_rows"
SERVING_SHADOW_ROWS = "serving.shadow_rows"
SERVING_LATENCY = "serving.latency"

#: ``registry.<event>`` — event ∈ register/promote/rollback/reject/gc…
REGISTRY_PREFIX = "registry."
#: ``rollout.<action>`` — action ∈ stage/promote/reject/rollback…
ROLLOUT_PREFIX = "rollout."
#: ``span.<span-name>`` — the tracer's per-span duration histograms.
SPAN_PREFIX = "span."

# -- traffic: open-loop load generation / admission control -------------
TRAFFIC_ARRIVALS = "traffic.arrivals"
TRAFFIC_ADMITTED = "traffic.admitted"
TRAFFIC_SHED = "traffic.shed"
TRAFFIC_COMPLETED = "traffic.completed"
TRAFFIC_ROWS = "traffic.rows"
TRAFFIC_USERS = "traffic.users"
TRAFFIC_QUEUE_DEPTH = "traffic.queue_depth"
TRAFFIC_TRAINING_CHUNKS = "traffic.training_chunks"

# -- micro-batching front end -------------------------------------------
BATCH_DISPATCHED = "batch.dispatched"
BATCH_ROWS = "batch.rows"
BATCH_SIZE = "batch.size"
BATCH_WAIT = "batch.wait"
BATCH_FLUSH_FULL = "batch.flush_full"
BATCH_FLUSH_WAIT = "batch.flush_wait"

# -- serving SLO surface ------------------------------------------------
SLO_LATENCY = "slo.latency"
SLO_QUEUE_DELAY = "slo.queue_delay"
SLO_SERVICE_TIME = "slo.service_time"
SLO_THROUGHPUT = "slo.throughput"
SLO_SHED_RATE = "slo.shed_rate"

# -- fleet orchestration ------------------------------------------------
FLEET_EPOCH = "fleet.epoch"
FLEET_TRAINING = "fleet.training"
FLEET_TRAININGS = "fleet.trainings"
FLEET_TENANT_CHUNK = "fleet.tenant_chunk"
FLEET_ACTIVE_TENANTS = "fleet.active_tenants"
FLEET_BALANCE = "fleet.balance"
FLEET_OVERDRAFT = "fleet.overdraft"
FLEET_OVERDRAFTS = "fleet.overdrafts"
FLEET_EVICTIONS = "fleet.evictions"
FLEET_RESCUES = "fleet.rescues"
FLEET_AGGREGATE_ERROR = "fleet.aggregate_error"
FLEET_RECOVERED = "fleet.recovered"

# -- performance observatory --------------------------------------------
PERF_RECORD = "perf.record"
PERF_RECORDS_APPENDED = "perf.records_appended"
PERF_CHECK = "perf.check"
PERF_REGRESSIONS = "perf.regressions"
PROFILE_BUILT = "profile.built"
PROFILE_NODES = "profile.nodes"

# -- reliability --------------------------------------------------------
RELIABILITY_CHECKPOINT_WRITTEN = "reliability.checkpoint_written"
RELIABILITY_CHECKPOINTS_WRITTEN = "reliability.checkpoints_written"
RELIABILITY_CHECKPOINT_CORRUPT = "reliability.checkpoint_corrupt"
RELIABILITY_RECOVERED = "reliability.recovered"
RELIABILITY_FAULT = "reliability.fault"
RELIABILITY_FAULTS_INJECTED = "reliability.faults_injected"
RELIABILITY_RETRY = "reliability.retry"
RELIABILITY_RETRIES = "reliability.retries"
RELIABILITY_RETRIES_EXHAUSTED = "reliability.retries_exhausted"

# -- provenance ledger --------------------------------------------------
LINEAGE_NODE = "lineage.node"
LINEAGE_NODES = "lineage.nodes"
LINEAGE_EDGES = "lineage.edges"
LINEAGE_EXPORTED = "lineage.exported"

# -- health monitor -----------------------------------------------------
MONITOR_EVENTS = "monitor.events"
MONITOR_SAMPLES = "monitor.samples"
MONITOR_WINDOWS = "monitor.windows"
MONITOR_INCIDENTS = "monitor.incidents"
ALERT_PENDING = "alert.pending"
ALERT_FIRING = "alert.firing"
ALERT_RESOLVED = "alert.resolved"
ALERTS_FIRED = "alert.fired"
ALERTS_RESOLVED = "alert.resolved_total"
HEALTH_EXPORTED = "health.exported"

#: Every fixed telemetry name the platform may emit.
KNOWN_NAMES = frozenset(
    value
    for key, value in list(globals().items())
    if key.isupper()
    and not key.endswith("_PREFIX")
    and isinstance(value, str)
)

#: Families with data-dependent tails; a literal ``prefix + tail`` is
#: valid when the prefix matches and the whole name fits the pattern.
KNOWN_PREFIXES = (REGISTRY_PREFIX, ROLLOUT_PREFIX, SPAN_PREFIX)


def is_known_name(name: str) -> bool:
    """True when ``name`` is in-vocabulary (exact or prefix family)."""
    if not NAME_PATTERN.match(name):
        return False
    if name in KNOWN_NAMES:
        return True
    return any(name.startswith(prefix) for prefix in KNOWN_PREFIXES)
