"""Incident lifecycle and deterministic health timelines.

A breached rule opens an :class:`Incident` (state ``pending``); after
``for_windows`` consecutive breached window closes it **fires**, and
after ``clear_windows`` clean closes it **resolves**. At most one
open incident exists per rule name (the dedup key) — a re-breach
after resolution opens a fresh incident, so the timeline is an
ordered, append-only record of everything the monitor noticed.

Each incident carries evidence: sanitized snapshots of the most
recent events on its signal (wall-clock fields stripped), captured
when the incident opens and refreshed when it fires. That makes a
``health.json`` self-contained — a crash shows up with the
``reliability.fault`` / ``reliability.recovered`` events that caused
it attached.

:func:`health_digest` hashes the canonical JSON form of a health
payload (same contract as the profile digest): two identical-seed
runs must produce byte-identical timelines, so the digest doubles as
a determinism check.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ValidationError
from repro.obs.rules import SEVERITIES, AlertRule, Evaluation

#: Schema version stamped into every health payload.
HEALTH_SCHEMA = 1

#: Lifecycle states, in order.
STATES = ("pending", "firing", "resolved")


class Incident:
    """One alert occurrence, from first breach to resolution."""

    __slots__ = (
        "id",
        "rule",
        "signal",
        "category",
        "severity",
        "state",
        "opened_at",
        "fired_at",
        "resolved_at",
        "windows_breached",
        "peak_value",
        "detail",
        "evidence",
    )

    def __init__(self, incident_id: int, rule: AlertRule) -> None:
        self.id = incident_id
        self.rule = rule.name
        self.signal = rule.signal
        self.category = rule.category
        self.severity = rule.severity
        self.state = "pending"
        self.opened_at = 0.0
        self.fired_at: Optional[float] = None
        self.resolved_at: Optional[float] = None
        self.windows_breached = 0
        self.peak_value: Optional[float] = None
        self.detail = ""
        self.evidence: List[Dict[str, object]] = []

    @property
    def open(self) -> bool:
        return self.state != "resolved"

    @property
    def fired(self) -> bool:
        return self.fired_at is not None

    def record_breach(self, evaluation: Evaluation) -> None:
        self.windows_breached += 1
        self.detail = evaluation.detail
        value = evaluation.value
        if value is not None and (
            self.peak_value is None or abs(value) > abs(self.peak_value)
        ):
            self.peak_value = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "rule": self.rule,
            "signal": self.signal,
            "category": self.category,
            "severity": self.severity,
            "state": self.state,
            "opened_at": self.opened_at,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "windows_breached": self.windows_breached,
            "peak_value": self.peak_value,
            "detail": self.detail,
            "evidence": self.evidence,
        }

    def state_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "opened_at": self.opened_at,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "windows_breached": self.windows_breached,
            "peak_value": self.peak_value,
            "detail": self.detail,
            "evidence": list(self.evidence),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.state = str(state["state"])
        self.opened_at = float(state["opened_at"])
        fired = state.get("fired_at")
        self.fired_at = None if fired is None else float(fired)
        resolved = state.get("resolved_at")
        self.resolved_at = None if resolved is None else float(resolved)
        self.windows_breached = int(state["windows_breached"])
        peak = state.get("peak_value")
        self.peak_value = None if peak is None else float(peak)
        self.detail = str(state["detail"])
        self.evidence = list(state["evidence"])

    def __repr__(self) -> str:
        return (
            f"Incident(#{self.id} {self.rule} {self.state} "
            f"opened_at={self.opened_at:g})"
        )


class IncidentLog:
    """Ordered incident record with per-rule dedup.

    The log owns lifecycle transitions; the monitor feeds it one
    breached/clean verdict per rule per window close.
    """

    def __init__(self, rules: Sequence[AlertRule]) -> None:
        self._rules = {rule.name: rule for rule in rules}
        self.incidents: List[Incident] = []
        self._open: Dict[str, Incident] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    def open_incident(
        self, rule: AlertRule, t: float, evaluation: Evaluation
    ) -> Incident:
        if rule.name in self._open:
            raise ValidationError(
                f"rule {rule.name!r} already has an open incident"
            )
        incident = Incident(self._next_id, rule)
        self._next_id += 1
        incident.opened_at = t
        incident.record_breach(evaluation)
        self.incidents.append(incident)
        self._open[rule.name] = incident
        return incident

    def get_open(self, rule_name: str) -> Optional[Incident]:
        return self._open.get(rule_name)

    def fire(self, incident: Incident, t: float) -> None:
        incident.state = "firing"
        incident.fired_at = t

    def resolve(self, incident: Incident, t: float) -> None:
        incident.state = "resolved"
        incident.resolved_at = t
        self._open.pop(incident.rule, None)

    # ------------------------------------------------------------------
    @property
    def fired_count(self) -> int:
        return sum(1 for i in self.incidents if i.fired)

    @property
    def resolved_count(self) -> int:
        return sum(
            1 for i in self.incidents if i.fired and not i.open
        )

    @property
    def open_count(self) -> int:
        return len(self._open)

    def to_list(self) -> List[Dict[str, object]]:
        return [incident.to_dict() for incident in self.incidents]

    def state_dict(self) -> Dict[str, object]:
        return {
            "next_id": self._next_id,
            "incidents": [
                {
                    "id": incident.id,
                    "rule": incident.rule,
                    "data": incident.state_dict(),
                }
                for incident in self.incidents
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._next_id = int(state["next_id"])
        self.incidents = []
        self._open = {}
        for entry in state["incidents"]:
            rule = self._rules.get(str(entry["rule"]))
            if rule is None:
                raise ValidationError(
                    f"incident state references unknown rule "
                    f"{entry['rule']!r}; restore with the same rule set"
                )
            incident = Incident(int(entry["id"]), rule)
            incident.load_state_dict(entry["data"])
            self.incidents.append(incident)
            if incident.open:
                self._open[incident.rule] = incident

    def __len__(self) -> int:
        return len(self.incidents)


# ----------------------------------------------------------------------
# Digest + rendering
# ----------------------------------------------------------------------
def health_digest(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form of a health payload.

    The ``digest`` key itself is excluded; floats serialize via
    :func:`json.dumps` (shortest-repr), so byte-identical payloads —
    and only those — share a digest. Same contract as the profile
    digest.
    """
    body = {k: v for k, v in payload.items() if k != "digest"}
    canonical = json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fmt_t(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.4f}"


def format_timeline(payload: Dict[str, object]) -> str:
    """Render a health payload as the ``repro obs health`` report."""
    lines = [
        f"health timeline (schema {payload.get('schema')}, "
        f"window {payload.get('window'):g} cost units, "
        f"{payload.get('windows_closed')} closed)",
        f"digest: {payload.get('digest')}",
        f"events={payload.get('events')} "
        f"samples={payload.get('samples')} "
        f"incidents={len(payload.get('incidents', []))} "
        f"(fired={payload.get('fired')}, "
        f"resolved={payload.get('resolved')})",
    ]
    incidents = payload.get("incidents", [])
    if not incidents:
        lines.append("no incidents — all signals within budget")
        return "\n".join(lines)
    rows = [
        (
            "#", "severity", "state", "rule", "opened", "fired",
            "resolved", "detail",
        )
    ]
    for incident in incidents:
        rows.append(
            (
                str(incident["id"]),
                str(incident["severity"]),
                str(incident["state"]),
                str(incident["rule"]),
                _fmt_t(incident["opened_at"]),
                _fmt_t(incident["fired_at"]),
                _fmt_t(incident["resolved_at"]),
                str(incident["detail"]),
            )
        )
    lines.extend(_align(rows))
    return "\n".join(lines)


def format_alerts(payload: Dict[str, object]) -> str:
    """Render the rule table + firing counts (``repro obs alerts``)."""
    rules = payload.get("rules", [])
    incidents = payload.get("incidents", [])
    fired_by_rule: Dict[str, int] = {}
    open_by_rule: Dict[str, str] = {}
    for incident in incidents:
        rule_name = str(incident["rule"])
        if incident["fired_at"] is not None:
            fired_by_rule[rule_name] = (
                fired_by_rule.get(rule_name, 0) + 1
            )
        if incident["state"] != "resolved":
            open_by_rule[rule_name] = str(incident["state"])
    lines = [f"alert rules ({len(rules)}):"]
    rows = [
        ("rule", "severity", "kind", "signal", "condition", "fired",
         "now")
    ]
    ordered = sorted(
        rules,
        key=lambda r: (
            -SEVERITIES.index(str(r["severity"])),
            str(r["name"]),
        ),
    )
    for rule in ordered:
        if rule["kind"] == "absence":
            condition = f"silent > {rule['stale_after']:g}"
        elif rule["kind"] == "mean_shift":
            condition = (
                f"CUSUM({rule['stat']}) > {rule['drift_h']:g}σ"
            )
        else:
            condition = (
                f"{rule['stat']}[{rule['window']}w] {rule['op']} "
                f"{rule['value']:g}"
            )
            if rule["kind"] == "rate_of_change":
                condition = "Δ" + condition
        rows.append(
            (
                str(rule["name"]),
                str(rule["severity"]),
                str(rule["kind"]),
                str(rule["signal"]),
                condition,
                str(fired_by_rule.get(rule["name"], 0)),
                open_by_rule.get(rule["name"], "ok"),
            )
        )
    lines.extend(_align(rows))
    return "\n".join(lines)


def _align(rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  "
            + "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append(
                "  " + "  ".join("-" * width for width in widths)
            )
    return lines
