"""Windowed aggregation over telemetry signals.

The health monitor chops the virtual-clock axis into fixed-width
**tumbling windows** (window ``k`` covers ``[k*width, (k+1)*width)``
cost units). Each watched signal keeps one :class:`WindowAggregate`
for the open window plus a bounded deque of closed ones
(:class:`SeriesWindows`); a **sliding view** over the last *K* closed
windows (:class:`SlidingView`) is what alert rules evaluate.

Aggregates are count/sum/min/max/last plus an optional
:class:`~repro.obs.metrics.StreamingHistogram` for quantile stats —
everything is mergeable, so a sliding stat never re-observes samples.
All timestamps are virtual (cost units); nothing here reads a wall
clock, which is what makes monitor output byte-reproducible.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ValidationError
from repro.obs.metrics import StreamingHistogram

#: Stats a rule may ask of a sliding view.
STATS = (
    "count", "sum", "mean", "min", "max", "last", "rate",
    "p50", "p95", "p99",
)


class WindowAggregate:
    """Aggregates of one signal within one tumbling window."""

    __slots__ = ("count", "total", "min", "max", "last", "hist")

    def __init__(self, track_quantiles: bool = False) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last: Optional[float] = None
        self.hist: Optional[StreamingHistogram] = (
            StreamingHistogram("window") if track_quantiles else None
        )

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value
        if self.hist is not None:
            self.hist.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready stats for health snapshots."""
        stats: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "last": self.last,
        }
        if self.hist is not None and self.count:
            stats.update(self.hist.percentiles())
        return stats

    def state_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "last": self.last,
            "hist": (
                self.hist.state_dict() if self.hist is not None else None
            ),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.count = int(state["count"])
        self.total = float(state["total"])
        saved_min = state.get("min")
        saved_max = state.get("max")
        self.min = math.inf if saved_min is None else float(saved_min)
        self.max = -math.inf if saved_max is None else float(saved_max)
        last = state.get("last")
        self.last = None if last is None else float(last)
        hist_state = state.get("hist")
        if hist_state is not None:
            self.hist = StreamingHistogram("window")
            self.hist.load_state_dict(hist_state)
        else:
            self.hist = None


class SlidingView:
    """Read-only stats over the last *K* closed windows of a signal."""

    __slots__ = ("_windows", "_width")

    def __init__(
        self, windows: Sequence[WindowAggregate], width: float
    ) -> None:
        self._windows = list(windows)
        self._width = width

    @property
    def windows(self) -> List[WindowAggregate]:
        return list(self._windows)

    def stat(self, name: str) -> Optional[float]:
        """The requested stat, or ``None`` when there is no data.

        ``count``/``sum``/``rate`` are always defined (0 over empty
        windows); value stats (``mean``/``min``/``max``/``last``/
        quantiles) are ``None`` until at least one sample landed in
        the view — rules treat ``None`` as "cannot breach".
        """
        if name not in STATS:
            raise ValidationError(
                f"unknown window stat {name!r}; expected one of {STATS}"
            )
        count = sum(w.count for w in self._windows)
        if name == "count":
            return float(count)
        if name == "rate":
            span = len(self._windows) * self._width
            return count / span if span > 0 else 0.0
        if name == "sum":
            return float(sum(w.total for w in self._windows))
        if not count:
            return None
        if name == "mean":
            return sum(w.total for w in self._windows) / count
        if name == "min":
            return min(w.min for w in self._windows if w.count)
        if name == "max":
            return max(w.max for w in self._windows if w.count)
        if name == "last":
            for window in reversed(self._windows):
                if window.last is not None:
                    return window.last
            return None
        merged = StreamingHistogram("view")
        for window in self._windows:
            if window.hist is not None:
                merged.merge(window.hist)
        if not merged.count:
            return None
        quantile = {"p50": 0.50, "p95": 0.95, "p99": 0.99}[name]
        return merged.quantile(quantile)


class SeriesWindows:
    """Tumbling-window history of one watched signal.

    ``history`` bounds how many closed windows are retained — it must
    cover the widest sliding view any rule on this signal asks for.
    """

    def __init__(
        self,
        name: str,
        width: float,
        history: int = 4,
        track_quantiles: bool = False,
    ) -> None:
        if width <= 0:
            raise ValidationError(
                f"window width must be > 0, got {width}"
            )
        if history < 1:
            raise ValidationError(
                f"window history must be >= 1, got {history}"
            )
        self.name = name
        self.width = width
        self.history = history
        self.track_quantiles = track_quantiles
        self.current = WindowAggregate(track_quantiles)
        self.closed: deque = deque(maxlen=history)
        #: Virtual timestamp of the newest sample ever (absence rules).
        self.last_sample_t: Optional[float] = None

    def observe(self, t: float, value: float) -> None:
        self.current.add(value)
        if self.last_sample_t is None or t > self.last_sample_t:
            self.last_sample_t = t

    def close_window(self) -> WindowAggregate:
        """Seal the open window and start a fresh one."""
        sealed = self.current
        self.closed.append(sealed)
        self.current = WindowAggregate(self.track_quantiles)
        return sealed

    def view(self, windows: int) -> SlidingView:
        """Sliding view over the last ``windows`` closed windows."""
        if windows < 1:
            raise ValidationError(
                f"sliding view needs >= 1 window, got {windows}"
            )
        tail = list(self.closed)[-windows:]
        return SlidingView(tail, self.width)

    def state_dict(self) -> Dict[str, object]:
        return {
            "current": self.current.state_dict(),
            "closed": [w.state_dict() for w in self.closed],
            "last_sample_t": self.last_sample_t,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.current = WindowAggregate(self.track_quantiles)
        self.current.load_state_dict(state["current"])
        self.closed = deque(maxlen=self.history)
        for window_state in state["closed"]:
            window = WindowAggregate(self.track_quantiles)
            window.load_state_dict(window_state)
            self.closed.append(window)
        last = state.get("last_sample_t")
        self.last_sample_t = None if last is None else float(last)

    def __repr__(self) -> str:
        return (
            f"SeriesWindows({self.name!r}, width={self.width}, "
            f"closed={len(self.closed)}, open={self.current.count})"
        )
