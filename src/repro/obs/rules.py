"""Declarative alert rules over windowed telemetry signals.

An :class:`AlertRule` is data, not code: signal name, detector kind,
window stat, comparison, and lifecycle thresholds. Four detector
kinds cover the monitoring needs of a continuous-deployment run:

* ``threshold`` — compare a sliding-window stat against a constant
  (``drift.signal count >= 1``, ``reliability.retry count >= 3``);
* ``rate_of_change`` — compare the stat's delta between consecutive
  window closes (cost blow-ups, error-curve jumps);
* ``absence`` — fire when a signal that has been seen goes silent for
  more than ``stale_after`` cost units (stalled stream, dead loop);
* ``mean_shift`` — a two-sided CUSUM over per-window means in the
  style of Rombouts & Wilms' forecast monitoring: the first
  ``warmup`` non-empty windows establish a reference mean/σ, then
  the standardized cumulative sums ``S+ = max(0, S+ + z - k)`` /
  ``S- = max(0, S- - z - k)`` accumulate and the rule breaches when
  either exceeds ``h``. When the signal returns to the reference
  level the sums decay by ``k`` per window, so the alert resolves
  without manual reset.

Breaches feed the incident lifecycle: ``for_windows`` consecutive
breached closes move an incident pending → firing, ``clear_windows``
clean closes resolve it (see :mod:`repro.obs.incident`).

Everything evaluates on closed windows of the virtual clock, so rule
outcomes are byte-reproducible across identical-seed runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ValidationError
from repro.obs.windows import STATS, SlidingView

#: Detector kinds a rule may use.
KINDS = ("threshold", "rate_of_change", "absence", "mean_shift")

#: Comparison operators for threshold / rate_of_change rules.
OPS = (">", ">=", "<", "<=")

#: Severities, mildest first (render order in timelines).
SEVERITIES = ("info", "warning", "critical")

#: Floor on the reference σ so a constant warmup signal cannot divide
#: the CUSUM standardization by zero.
_MIN_SIGMA = 1e-12


def _compare(value: float, op: str, threshold: float) -> bool:
    if op == ">":
        return value > threshold
    if op == ">=":
        return value >= threshold
    if op == "<":
        return value < threshold
    return value <= threshold


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert rule (see the module docstring)."""

    name: str
    signal: str
    kind: str = "threshold"
    stat: str = "count"
    op: str = ">="
    value: float = 1.0
    #: Sliding view width, in closed windows.
    window: int = 1
    #: Consecutive breached closes before pending becomes firing.
    for_windows: int = 1
    #: Consecutive clean closes before an incident resolves.
    clear_windows: int = 1
    #: ``absence`` only: silence budget in virtual-cost units.
    stale_after: float = 0.0
    #: ``mean_shift`` only: non-empty windows forming the reference.
    warmup: int = 5
    #: ``mean_shift`` only: CUSUM slack per window, in reference σ.
    drift_k: float = 0.5
    #: ``mean_shift`` only: CUSUM decision threshold, in reference σ.
    drift_h: float = 5.0
    severity: str = "warning"
    category: str = "health"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("alert rule needs a non-empty name")
        if not self.signal:
            raise ValidationError(
                f"rule {self.name!r} needs a signal to watch"
            )
        if self.kind not in KINDS:
            raise ValidationError(
                f"rule {self.name!r}: kind must be one of {KINDS}, "
                f"got {self.kind!r}"
            )
        if self.stat not in STATS:
            raise ValidationError(
                f"rule {self.name!r}: stat must be one of {STATS}, "
                f"got {self.stat!r}"
            )
        if self.op not in OPS:
            raise ValidationError(
                f"rule {self.name!r}: op must be one of {OPS}, "
                f"got {self.op!r}"
            )
        if self.severity not in SEVERITIES:
            raise ValidationError(
                f"rule {self.name!r}: severity must be one of "
                f"{SEVERITIES}, got {self.severity!r}"
            )
        if self.window < 1 or self.for_windows < 1 or self.clear_windows < 1:
            raise ValidationError(
                f"rule {self.name!r}: window/for_windows/clear_windows "
                f"must all be >= 1"
            )
        if self.kind == "absence" and self.stale_after <= 0.0:
            raise ValidationError(
                f"rule {self.name!r}: absence rules need stale_after > 0"
            )
        if self.kind == "mean_shift" and (
            self.warmup < 2 or self.drift_h <= 0.0 or self.drift_k < 0.0
        ):
            raise ValidationError(
                f"rule {self.name!r}: mean_shift needs warmup >= 2, "
                f"drift_h > 0, drift_k >= 0"
            )

    @property
    def needs_quantiles(self) -> bool:
        return self.stat in ("p50", "p95", "p99")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready declaration (the ``health.json`` rules table)."""
        return {
            "name": self.name,
            "signal": self.signal,
            "kind": self.kind,
            "stat": self.stat,
            "op": self.op,
            "value": self.value,
            "window": self.window,
            "for_windows": self.for_windows,
            "clear_windows": self.clear_windows,
            "stale_after": self.stale_after,
            "warmup": self.warmup,
            "drift_k": self.drift_k,
            "drift_h": self.drift_h,
            "severity": self.severity,
            "category": self.category,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "AlertRule":
        """Build a rule from a JSON declaration (unknown keys fail)."""
        if not isinstance(raw, dict):
            raise ValidationError(
                f"alert rule declaration must be an object, got {raw!r}"
            )
        known = {
            "name", "signal", "kind", "stat", "op", "value", "window",
            "for_windows", "clear_windows", "stale_after", "warmup",
            "drift_k", "drift_h", "severity", "category", "description",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValidationError(
                f"alert rule has unknown field(s): "
                f"{', '.join(sorted(unknown))}"
            )
        return cls(**raw)


@dataclass
class Evaluation:
    """Outcome of evaluating one rule at one window close."""

    breached: bool
    #: The measured quantity (stat, delta, silence, or CUSUM score).
    value: Optional[float] = None
    detail: str = ""


@dataclass
class RuleState:
    """Mutable evaluation state of one rule (checkpointable)."""

    rule: AlertRule
    breach_streak: int = 0
    clear_streak: int = 0
    #: ``rate_of_change``: the stat at the previous window close.
    prev_stat: Optional[float] = None
    #: ``mean_shift`` reference (Welford accumulators over warmup).
    ref_count: int = 0
    ref_mean: float = 0.0
    ref_m2: float = 0.0
    cusum_pos: float = 0.0
    cusum_neg: float = 0.0
    evaluations: int = field(default=0)

    def evaluate(
        self,
        view: SlidingView,
        t_end: float,
        last_sample_t: Optional[float],
    ) -> Evaluation:
        """Evaluate the rule against a just-closed window's view."""
        self.evaluations += 1
        rule = self.rule
        if rule.kind == "threshold":
            return self._evaluate_threshold(view)
        if rule.kind == "rate_of_change":
            return self._evaluate_rate_of_change(view)
        if rule.kind == "absence":
            return self._evaluate_absence(t_end, last_sample_t)
        return self._evaluate_mean_shift(view)

    # ------------------------------------------------------------------
    def _evaluate_threshold(self, view: SlidingView) -> Evaluation:
        rule = self.rule
        measured = view.stat(rule.stat)
        if measured is None:
            return Evaluation(False, None, "no samples in view")
        breached = _compare(measured, rule.op, rule.value)
        return Evaluation(
            breached,
            measured,
            f"{rule.stat}({rule.signal}) = {measured:g} "
            f"{rule.op} {rule.value:g}",
        )

    def _evaluate_rate_of_change(self, view: SlidingView) -> Evaluation:
        rule = self.rule
        measured = view.stat(rule.stat)
        if measured is None:
            return Evaluation(False, None, "no samples in view")
        previous = self.prev_stat
        self.prev_stat = measured
        if previous is None:
            return Evaluation(False, None, "first observation")
        delta = measured - previous
        breached = _compare(delta, rule.op, rule.value)
        return Evaluation(
            breached,
            delta,
            f"Δ{rule.stat}({rule.signal}) = {delta:+g} "
            f"{rule.op} {rule.value:g}",
        )

    def _evaluate_absence(
        self, t_end: float, last_sample_t: Optional[float]
    ) -> Evaluation:
        rule = self.rule
        if last_sample_t is None:
            return Evaluation(False, None, "signal never seen")
        silence = t_end - last_sample_t
        breached = silence > rule.stale_after
        return Evaluation(
            breached,
            silence,
            f"{rule.signal} silent for {silence:g} of "
            f"{rule.stale_after:g} cost units",
        )

    def _evaluate_mean_shift(self, view: SlidingView) -> Evaluation:
        rule = self.rule
        measured = view.stat(rule.stat)
        if measured is None:
            return Evaluation(False, None, "no samples in view")
        if self.ref_count < rule.warmup:
            self.ref_count += 1
            delta = measured - self.ref_mean
            self.ref_mean += delta / self.ref_count
            self.ref_m2 += delta * (measured - self.ref_mean)
            return Evaluation(
                False,
                None,
                f"warmup {self.ref_count}/{rule.warmup}",
            )
        sigma = max(
            math.sqrt(self.ref_m2 / (self.ref_count - 1)), _MIN_SIGMA
        )
        z = (measured - self.ref_mean) / sigma
        self.cusum_pos = max(0.0, self.cusum_pos + z - rule.drift_k)
        self.cusum_neg = max(0.0, self.cusum_neg - z - rule.drift_k)
        score = max(self.cusum_pos, self.cusum_neg)
        return Evaluation(
            score > rule.drift_h,
            score,
            f"CUSUM({rule.signal}.{rule.stat}) = {score:.3f} "
            f"(h={rule.drift_h:g}, ref={self.ref_mean:.4g}±{sigma:.4g})",
        )

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "breach_streak": self.breach_streak,
            "clear_streak": self.clear_streak,
            "prev_stat": self.prev_stat,
            "ref_count": self.ref_count,
            "ref_mean": self.ref_mean,
            "ref_m2": self.ref_m2,
            "cusum_pos": self.cusum_pos,
            "cusum_neg": self.cusum_neg,
            "evaluations": self.evaluations,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.breach_streak = int(state["breach_streak"])
        self.clear_streak = int(state["clear_streak"])
        prev = state.get("prev_stat")
        self.prev_stat = None if prev is None else float(prev)
        self.ref_count = int(state["ref_count"])
        self.ref_mean = float(state["ref_mean"])
        self.ref_m2 = float(state["ref_m2"])
        self.cusum_pos = float(state["cusum_pos"])
        self.cusum_neg = float(state["cusum_neg"])
        self.evaluations = int(state["evaluations"])
