"""Always-on metrics primitives for the deployment platform.

A :class:`MetricsRegistry` hands out three instrument kinds:

* :class:`Counter` — monotonically increasing totals (cache hits,
  evictions, scheduler decisions);
* :class:`Gauge` — last-written values (materialized chunk count,
  materialized bytes);
* :class:`StreamingHistogram` — quantile estimates (p50/p95/p99)
  without storing samples, via geometric bucketing. Relative error is
  bounded by the bucket growth factor (~5% with the default base),
  which is plenty for telemetry; exact percentiles over full traces
  are available offline through :mod:`repro.obs.summary`.

Everything here is plain-Python and allocation-light so that leaving
the registry attached to a deployment costs close to nothing.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.exceptions import ValidationError

#: Geometric bucket growth factor: each bucket's upper bound is
#: ``base`` times its lower bound, bounding quantile error to ~base-1.
_DEFAULT_BASE = 1.1


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value:g})"


class Gauge:
    """A last-written value (may go up or down)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value:g})"


class StreamingHistogram:
    """Quantile sketch over a stream, without storing samples.

    Non-positive observations land in a dedicated zero bucket; positive
    ones in geometric buckets ``[base**i, base**(i+1))``. A quantile is
    answered by walking the cumulative bucket counts and reporting the
    geometric midpoint of the containing bucket, clamped to the
    observed min/max so tail quantiles never overshoot the data.
    """

    __slots__ = (
        "name",
        "_base",
        "_log_base",
        "_buckets",
        "_zero_count",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(self, name: str, base: float = _DEFAULT_BASE) -> None:
        if base <= 1.0:
            raise ValidationError(
                f"histogram base must be > 1, got {base}"
            )
        self.name = name
        self._base = base
        self._log_base = math.log(base)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._zero_count += 1
            return
        index = math.floor(math.log(value) / self._log_base)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) of the stream."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        # 1-based rank of the requested quantile.
        rank = max(1, math.ceil(q * self.count))
        seen = self._zero_count
        if rank <= seen:
            return min(0.0, self.min)
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank <= seen:
                midpoint = self._base ** (index + 0.5)
                return min(max(midpoint, self.min), self.max)
        return self.max

    def percentiles(self) -> Dict[str, float]:
        """The standard telemetry trio."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another sketch's samples into this one.

        Both sketches must share the same bucket base; merging is how
        the health monitor combines per-window sketches into a sliding
        view without re-observing samples.
        """
        if other._base != self._base:
            raise ValidationError(
                f"cannot merge histograms with bases {self._base} "
                f"and {other._base}"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zero_count += other._zero_count
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max

    def state_dict(self) -> Dict[str, object]:
        """Full sketch state (unlike the lossy snapshot percentiles).

        The dump is strict-JSON safe: bucket indices are a sorted
        ``[index, count]`` list (JSON objects cannot carry int keys)
        and the min/max of an empty sketch are ``None`` rather than
        the non-JSON infinities — a ``json.dumps``/``loads`` round
        trip restores the sketch bit-identically.
        """
        return {
            "base": self._base,
            "buckets": [
                [index, self._buckets[index]]
                for index in sorted(self._buckets)
            ],
            "zero_count": self._zero_count,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore sketch state captured by :meth:`state_dict`.

        Accepts both the list-of-pairs bucket encoding and the legacy
        ``{index: count}`` mapping from pre-JSON-safe checkpoints.
        """
        self._base = float(state["base"])
        self._log_base = math.log(self._base)
        buckets = state["buckets"]
        if isinstance(buckets, dict):
            self._buckets = {
                int(k): int(v) for k, v in buckets.items()
            }
        else:
            self._buckets = {
                int(index): int(count) for index, count in buckets
            }
        self._zero_count = int(state["zero_count"])
        self.count = int(state["count"])
        self.total = float(state["total"])
        saved_min = state.get("min")
        saved_max = state.get("max")
        self.min = math.inf if saved_min is None else float(saved_min)
        self.max = -math.inf if saved_max is None else float(saved_max)

    def __repr__(self) -> str:
        return (
            f"StreamingHistogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:g})"
        )


class MetricsRegistry:
    """Get-or-create store for counters, gauges, and histograms.

    Instruments are identified by name; re-requesting a name returns
    the same instrument, so instrumentation sites never need to share
    references explicitly.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, base: Optional[float] = None
    ) -> StreamingHistogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = StreamingHistogram(
                name, base if base is not None else _DEFAULT_BASE
            )
        return instrument

    def observe(self, name: str, value: float) -> None:
        """Shorthand for ``histogram(name).add(value)``."""
        self.histogram(name).add(value)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready dump of every instrument's current state."""
        histograms = {}
        for name, hist in sorted(self._histograms.items()):
            histograms[name] = {
                "count": hist.count,
                "mean": hist.mean,
                "min": hist.min if hist.count else 0.0,
                "max": hist.max if hist.count else 0.0,
                **hist.percentiles(),
            }
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": histograms,
        }

    def state_dict(self) -> Dict[str, Dict[str, object]]:
        """Lossless dump of every instrument (cf. the lossy
        :meth:`snapshot`), for checkpoint/recovery: a registry restored
        from this state produces byte-identical snapshots."""
        return {
            "counters": {
                name: counter.value
                for name, counter in self._counters.items()
            },
            "gauges": {
                name: gauge.value for name, gauge in self._gauges.items()
            },
            "histograms": {
                name: hist.state_dict()
                for name, hist in self._histograms.items()
            },
        }

    def load_state_dict(
        self, state: Dict[str, Dict[str, object]]
    ) -> None:
        """Replace all instrument state with a :meth:`state_dict` dump."""
        self.reset()
        for name, value in state["counters"].items():
            self.counter(name).value = float(value)
        for name, value in state["gauges"].items():
            self.gauge(name).set(value)
        for name, hist_state in state["histograms"].items():
            self.histogram(name).load_state_dict(hist_state)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
