"""Deterministic deployment-cost accounting.

The paper measures deployment cost as the total time spent in data
preprocessing, model training, and prediction (§5.1). On the authors'
Spark cluster this is wall-clock time; here a :class:`CostModel`
assigns fixed cost units to every unit of work, so experiment results
are machine-independent and deterministic:

* per value parsed/transformed by a pipeline component,
* per value scanned for statistics recomputation,
* per value used in a gradient computation,
* per value scored at prediction time,
* per value read from (simulated) disk, plus a per-chunk seek —
  this is what makes re-materialization and the NoOptimization
  configuration expensive, exactly as in §5.4.

A :class:`CostTracker` accumulates charges by category and label. The
default constants are calibrated so the headline ratios of the paper
(periodical ≈ 6–15× continuous; NoOptimization ≈ 2–3× optimized) arise
from the same mechanisms the paper describes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class CostModel:
    """Cost-unit prices for each kind of work.

    Unit: abstract "cost seconds". Relative magnitudes are what matter;
    defaults make one value-touch of transform work the numeraire.
    """

    transform_cost_per_value: float = 1e-6
    statistics_cost_per_value: float = 1e-6
    training_cost_per_value: float = 1.5e-7
    prediction_cost_per_value: float = 5e-7
    disk_read_cost_per_value: float = 2e-6
    disk_seek_cost_per_chunk: float = 1e-3

    def __post_init__(self) -> None:
        for name in (
            "transform_cost_per_value",
            "statistics_cost_per_value",
            "training_cost_per_value",
            "prediction_cost_per_value",
            "disk_read_cost_per_value",
            "disk_seek_cost_per_chunk",
        ):
            check_non_negative(getattr(self, name), name)


@dataclass
class CostBreakdown:
    """Immutable snapshot of a tracker's totals."""

    by_category: Dict[str, float] = field(default_factory=dict)
    by_label: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.by_category.values())


class CostTracker:
    """Accumulates deployment cost charges.

    Categories follow the paper's cost decomposition:
    ``preprocessing`` (pipeline transforms), ``statistics``
    (statistics scans), ``training`` (gradient work), ``prediction``
    (query answering), and ``disk_io`` (chunk reads for
    re-materialization or raw access).
    """

    CATEGORIES = (
        "preprocessing",
        "statistics",
        "training",
        "prediction",
        "disk_io",
    )

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model if model is not None else CostModel()
        self._by_category: Dict[str, float] = defaultdict(float)
        self._by_label: Dict[str, float] = defaultdict(float)

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge_transform(self, values: int, label: str) -> None:
        """Pipeline transform scan over ``values`` cell values."""
        self._charge(
            "preprocessing",
            label,
            values * self.model.transform_cost_per_value,
        )

    def charge_statistics(self, values: int, label: str) -> None:
        """Statistics (re)computation scan over ``values`` values."""
        self._charge(
            "statistics",
            label,
            values * self.model.statistics_cost_per_value,
        )

    def charge_training(self, values: int, label: str) -> None:
        """Gradient computation over a mini-batch of ``values`` values."""
        self._charge(
            "training",
            label,
            values * self.model.training_cost_per_value,
        )

    def charge_prediction(self, values: int, label: str) -> None:
        """Model scoring over ``values`` values."""
        self._charge(
            "prediction",
            label,
            values * self.model.prediction_cost_per_value,
        )

    def charge_disk_read(
        self, values: int, chunks: int, label: str
    ) -> None:
        """Simulated disk read: per-value transfer plus per-chunk seek."""
        amount = (
            values * self.model.disk_read_cost_per_value
            + chunks * self.model.disk_seek_cost_per_chunk
        )
        self._charge("disk_io", label, amount)

    def _charge(self, category: str, label: str, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative charge: {amount}")
        self._by_category[category] += amount
        self._by_label[label] += amount

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def total(self) -> float:
        """Total cost units accumulated so far (the virtual clock)."""
        return sum(self._by_category.values())

    def category(self, name: str) -> float:
        """Total for one category (0 when never charged)."""
        return self._by_category.get(name, 0.0)

    def breakdown(self) -> CostBreakdown:
        """Snapshot of both decompositions."""
        return CostBreakdown(
            by_category=dict(self._by_category),
            by_label=dict(self._by_label),
        )

    def reset(self) -> None:
        self._by_category.clear()
        self._by_label.clear()

    def state_dict(self) -> Dict[str, Dict[str, float]]:
        """Accumulated totals, restorable via :meth:`load_state_dict`.

        The tracker's totals *are* the deployment's virtual clock, so
        checkpoint/recovery must restore them exactly for resumed cost
        curves to be byte-identical.
        """
        return {
            "by_category": dict(self._by_category),
            "by_label": dict(self._by_label),
        }

    def load_state_dict(
        self, state: Dict[str, Dict[str, float]]
    ) -> None:
        """Restore totals captured by :meth:`state_dict`."""
        self._by_category = defaultdict(float, state["by_category"])
        self._by_label = defaultdict(float, state["by_label"])

    def __repr__(self) -> str:
        return f"CostTracker(total={self.total():.4f})"
