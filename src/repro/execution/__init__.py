"""Execution engine substrate.

The paper prototypes on Apache Spark; here a local, deterministic
engine executes pipeline transforms and SGD training while charging a
:class:`~repro.execution.cost.CostModel` for every value touched. The
resulting cost-unit "virtual clock" reproduces the *shape* of the
paper's deployment-cost plots without a cluster.
"""

from repro.execution.cost import CostBreakdown, CostModel, CostTracker
from repro.execution.engine import LocalExecutionEngine

__all__ = [
    "CostModel",
    "CostTracker",
    "CostBreakdown",
    "LocalExecutionEngine",
]
