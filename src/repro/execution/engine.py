"""Local execution engine.

The paper's architecture (§4.5) delegates "the actual data
transformation and model training" to an execution engine (Spark in
the prototype). :class:`LocalExecutionEngine` plays that role here:
every pipeline transform, statistics update, gradient step, and
prediction flows through it so that cost-model charges and wall-clock
timers are applied uniformly, whichever deployment approach is
running.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.execution.cost import CostModel, CostTracker
from repro.ml.models.base import LinearSGDModel, Matrix
from repro.ml.sgd import SGDTrainer, TrainingResult
from repro.pipeline.component import Batch, Features
from repro.pipeline.pipeline import Pipeline
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer


class LocalExecutionEngine:
    """Runs pipeline and training work with uniform cost accounting.

    Parameters
    ----------
    cost_model:
        Prices for the deterministic cost tracker; defaults apply.
    """

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.tracker = CostTracker(cost_model)
        self.wall = Timer()

    # ------------------------------------------------------------------
    # Pipeline execution
    # ------------------------------------------------------------------
    def online_pass(self, pipeline: Pipeline, batch: Batch) -> Features:
        """Online path: update statistics then transform (training data)."""
        with self.wall:
            return pipeline.update_transform_to_features(
                batch, self.tracker
            )

    def transform_only(self, pipeline: Pipeline, batch: Batch) -> Features:
        """Serving / re-materialization path (no statistics writes)."""
        with self.wall:
            return pipeline.transform_to_features(batch, self.tracker)

    def serve_transform(self, pipeline: Pipeline, batch: Batch) -> Batch:
        """Transform a prediction-query batch (may stop mid-pipeline
        for pipelines whose terminal stage needs labels)."""
        with self.wall:
            return pipeline.transform(batch, self.tracker)

    # ------------------------------------------------------------------
    # Training execution
    # ------------------------------------------------------------------
    def train_step(
        self,
        trainer: SGDTrainer,
        features: Matrix,
        targets: np.ndarray,
    ) -> float:
        """One SGD iteration (online update or proactive training)."""
        with self.wall:
            return trainer.step(features, targets, self.tracker)

    def train_full(
        self,
        trainer: SGDTrainer,
        features: Matrix,
        targets: np.ndarray,
        batch_size: Optional[int] = None,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        seed: SeedLike = None,
    ) -> TrainingResult:
        """A complete (re)training run — the periodical baseline."""
        with self.wall:
            return trainer.train(
                features,
                targets,
                batch_size=batch_size,
                max_iterations=max_iterations,
                tolerance=tolerance,
                seed=seed,
                tracker=self.tracker,
            )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self, model: LinearSGDModel, features: Matrix
    ) -> np.ndarray:
        """Score a batch, charging prediction cost."""
        with self.wall:
            predictions = model.predict(features)
        values = (
            int(features.nnz)
            if hasattr(features, "nnz")
            else int(np.asarray(features).size)
        )
        self.tracker.charge_prediction(values, "predict")
        return predictions

    # ------------------------------------------------------------------
    # Simulated storage I/O
    # ------------------------------------------------------------------
    def read_chunk(self, values: int, label: str) -> None:
        """Charge a simulated disk read of one chunk of ``values``."""
        self.tracker.charge_disk_read(values, chunks=1, label=label)

    def total_cost(self) -> float:
        """Virtual-clock total in cost units."""
        return self.tracker.total()

    def __repr__(self) -> str:
        return (
            f"LocalExecutionEngine(cost={self.total_cost():.4f}, "
            f"wall={self.wall.elapsed:.3f}s)"
        )
