"""Local execution engine.

The paper's architecture (§4.5) delegates "the actual data
transformation and model training" to an execution engine (Spark in
the prototype). :class:`LocalExecutionEngine` plays that role here:
every pipeline transform, statistics update, gradient step, and
prediction flows through it so that cost-model charges and wall-clock
timers are applied uniformly, whichever deployment approach is
running.

When a :class:`~repro.obs.telemetry.Telemetry` bundle is attached,
every operation additionally becomes a traced span carrying the
values-scanned count; the disabled default costs a single attribute
check per call (``self._obs is None``), guarded by
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.execution.cost import CostModel, CostTracker
from repro.ml.models.base import LinearSGDModel, Matrix
from repro.ml.sgd import SGDTrainer, TrainingResult
from repro.obs import names
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.pipeline.component import Batch, Features, PipelineComponent
from repro.pipeline.pipeline import Pipeline
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer


def _matrix_values(features: Matrix) -> int:
    """Value count of a feature matrix (nnz for sparse, size dense)."""
    if sp.issparse(features):
        return int(features.nnz)
    return int(np.asarray(features).size)


class LocalExecutionEngine:
    """Runs pipeline and training work with uniform cost accounting.

    Parameters
    ----------
    cost_model:
        Prices for the deterministic cost tracker; defaults apply.
    telemetry:
        Optional observability bundle; when enabled, the engine binds
        the run's virtual clock to it and emits one span per
        executed operation.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.tracker = CostTracker(cost_model)
        self.wall = Timer()
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        #: Fast-path guard: ``None`` when telemetry is disabled.
        self._obs = self.telemetry if self.telemetry.enabled else None
        if self._obs is not None:
            self._obs.bind_clock(self.total_cost)

    # ------------------------------------------------------------------
    # Pipeline execution
    # ------------------------------------------------------------------
    def online_pass(self, pipeline: Pipeline, batch: Batch) -> Features:
        """Online path: update statistics then transform (training data)."""
        if self._obs is None:
            with self.wall:
                return pipeline.update_transform_to_features(
                    batch, self.tracker
                )
        with self._obs.tracer.span(
            names.ENGINE_ONLINE_PASS,
            values=PipelineComponent.batch_num_values(batch),
        ):
            with self.wall:
                return pipeline.update_transform_to_features(
                    batch, self.tracker
                )

    def transform_only(self, pipeline: Pipeline, batch: Batch) -> Features:
        """Serving / re-materialization path (no statistics writes)."""
        if self._obs is None:
            with self.wall:
                return pipeline.transform_to_features(batch, self.tracker)
        with self._obs.tracer.span(
            names.ENGINE_TRANSFORM_ONLY,
            values=PipelineComponent.batch_num_values(batch),
        ):
            with self.wall:
                return pipeline.transform_to_features(batch, self.tracker)

    def serve_transform(self, pipeline: Pipeline, batch: Batch) -> Batch:
        """Transform a prediction-query batch (may stop mid-pipeline
        for pipelines whose terminal stage needs labels)."""
        if self._obs is None:
            with self.wall:
                return pipeline.transform(batch, self.tracker)
        with self._obs.tracer.span(
            names.ENGINE_SERVE_TRANSFORM,
            values=PipelineComponent.batch_num_values(batch),
        ):
            with self.wall:
                return pipeline.transform(batch, self.tracker)

    # ------------------------------------------------------------------
    # Training execution
    # ------------------------------------------------------------------
    def train_step(
        self,
        trainer: SGDTrainer,
        features: Matrix,
        targets: np.ndarray,
    ) -> float:
        """One SGD iteration (online update or proactive training)."""
        if self._obs is None:
            with self.wall:
                return trainer.step(features, targets, self.tracker)
        with self._obs.tracer.span(
            names.ENGINE_TRAIN_STEP, values=_matrix_values(features)
        ):
            with self.wall:
                return trainer.step(features, targets, self.tracker)

    def train_full(
        self,
        trainer: SGDTrainer,
        features: Matrix,
        targets: np.ndarray,
        batch_size: Optional[int] = None,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        seed: SeedLike = None,
    ) -> TrainingResult:
        """A complete (re)training run — the periodical baseline."""
        if self._obs is None:
            with self.wall:
                return trainer.train(
                    features,
                    targets,
                    batch_size=batch_size,
                    max_iterations=max_iterations,
                    tolerance=tolerance,
                    seed=seed,
                    tracker=self.tracker,
                )
        with self._obs.tracer.span(
            names.ENGINE_TRAIN_FULL, values=_matrix_values(features)
        ) as span:
            with self.wall:
                result = trainer.train(
                    features,
                    targets,
                    batch_size=batch_size,
                    max_iterations=max_iterations,
                    tolerance=tolerance,
                    seed=seed,
                    tracker=self.tracker,
                )
            span.set(
                iterations=result.iterations, converged=result.converged
            )
            return result

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self, model: LinearSGDModel, features: Matrix
    ) -> np.ndarray:
        """Score a batch, charging prediction cost.

        The charge happens inside the timed block, like every other
        engine operation, so wall-clock and cost accounting stay
        aligned (see ``tests/execution/test_engine.py``).
        """
        values = _matrix_values(features)
        if self._obs is None:
            with self.wall:
                predictions = model.predict(features)
                self.tracker.charge_prediction(values, "predict")
            return predictions
        with self._obs.tracer.span(names.ENGINE_PREDICT, values=values):
            with self.wall:
                predictions = model.predict(features)
                self.tracker.charge_prediction(values, "predict")
        return predictions

    def predict_batch(self, model, matrices) -> "list[np.ndarray]":
        """Score many feature blocks with one vectorized kernel.

        The micro-batched serving path: a single ``model.predict``
        over the stacked blocks, one prediction charge for the total
        value count, and per-block results that are bit-identical to
        per-block :meth:`predict` calls (row-independent kernels; see
        :mod:`repro.ml.batch`).
        """
        from repro.ml.batch import predict_batch

        values = sum(_matrix_values(m) for m in matrices)
        if self._obs is None:
            with self.wall:
                predictions = predict_batch(model, matrices)
                self.tracker.charge_prediction(values, "predict")
            return predictions
        with self._obs.tracer.span(
            names.ENGINE_PREDICT, values=values, blocks=len(matrices)
        ):
            with self.wall:
                predictions = predict_batch(model, matrices)
                self.tracker.charge_prediction(values, "predict")
        return predictions

    # ------------------------------------------------------------------
    # Simulated storage I/O
    # ------------------------------------------------------------------
    def read_chunk(self, values: int, label: str) -> None:
        """Charge a simulated disk read of one chunk of ``values``."""
        self.tracker.charge_disk_read(values, chunks=1, label=label)
        if self._obs is not None:
            self._obs.tracer.point(
                names.ENGINE_READ_CHUNK, values=values, label=label
            )

    def total_cost(self) -> float:
        """Virtual-clock total in cost units."""
        return self.tracker.total()

    def reset(self) -> None:
        """Zero both accounting clocks (cost tracker and wall timer).

        Lets a caller reuse one engine across runs without carrying
        charges over — the counterpart of :meth:`CostTracker.reset`
        that previously left the wall clock running its old total.
        """
        self.tracker.reset()
        self.wall.reset()

    def __repr__(self) -> str:
        return (
            f"LocalExecutionEngine(cost={self.total_cost():.4f}, "
            f"wall={self.wall.elapsed:.3f}s)"
        )
