"""CSV I/O for dense tabular streams (NYC-Taxi-style extracts).

A header row names the columns; values parse as floats where possible
and stay strings otherwise (a column is typed by its first data row,
consistently for the whole file). Rows stream out as chunked
:class:`~repro.data.table.Table` objects ready for the Taxi pipeline.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.data.table import Table
from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int

PathLike = Union[str, Path]


def iter_csv_chunks(
    path: PathLike,
    rows_per_chunk: int,
    columns: Optional[Sequence[str]] = None,
) -> Iterator[Table]:
    """Stream a headered CSV file as chunked tables.

    Parameters
    ----------
    path:
        CSV file with a header row.
    rows_per_chunk:
        Chunk height; the last chunk may be short.
    columns:
        Optional subset (and order) of columns to keep; all must
        exist in the header.
    """
    check_positive_int(rows_per_chunk, "rows_per_chunk")
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return
        header = [name.strip() for name in header]
        if columns is not None:
            missing = set(columns) - set(header)
            if missing:
                raise ValidationError(
                    f"columns {sorted(missing)} not in header {header}"
                )
            keep = [header.index(name) for name in columns]
            names = list(columns)
        else:
            keep = list(range(len(header)))
            names = header

        buffer: List[List[str]] = []
        for row in reader:
            if not row:
                continue
            if len(row) != len(header):
                raise ValidationError(
                    f"row has {len(row)} fields, header has "
                    f"{len(header)}: {row!r}"
                )
            buffer.append([row[i] for i in keep])
            if len(buffer) == rows_per_chunk:
                yield _rows_table(names, buffer)
                buffer = []
        if buffer:
            yield _rows_table(names, buffer)


def read_csv(
    path: PathLike, columns: Optional[Sequence[str]] = None
) -> Table:
    """Read a whole CSV file into one table."""
    chunks = list(iter_csv_chunks(path, 2**30, columns))
    if not chunks:
        return Table()
    return Table.concat(chunks)


def write_csv(path: PathLike, table: Table) -> Path:
    """Write a table as a headered CSV file."""
    path = Path(path)
    names = table.column_names
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        arrays = [table.column(name) for name in names]
        for row_index in range(table.num_rows):
            writer.writerow(
                [array[row_index] for array in arrays]
            )
    return path


def _rows_table(names: List[str], rows: List[List[str]]) -> Table:
    columns = {}
    for position, name in enumerate(names):
        raw = [row[position] for row in rows]
        columns[name] = _type_column(raw)
    return Table(columns)


def _type_column(raw: List[str]) -> np.ndarray:
    """Float column when the first value parses as float, else object.

    Empty fields in a float column become NaN (missing values for the
    imputer); in a string column they stay empty strings. The float
    probe additionally requires a digit in the value: ``float()``
    accepts words like ``"inf"`` or ``"nan"``, but a column whose
    first value is such a bare word is a text column (a numeric CSV
    writer emits digits).
    """
    first = next((value for value in raw if value != ""), "")
    is_float = any(c.isdigit() for c in first)
    if is_float:
        try:
            float(first)
        except ValueError:
            is_float = False
    if is_float:
        values = np.empty(len(raw), dtype=np.float64)
        for position, value in enumerate(raw):
            if value == "":
                values[position] = np.nan
                continue
            try:
                values[position] = float(value)
            except ValueError:
                raise ValidationError(
                    f"non-numeric value {value!r} in a numeric column"
                ) from None
        return values
    array = np.empty(len(raw), dtype=object)
    for position, value in enumerate(raw):
        array[position] = value
    return array
