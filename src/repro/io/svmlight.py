"""svmlight-format I/O.

The URL dataset ships as svmlight files (``label index:value ...``).
These helpers stream such files as chunked tables whose single
``line`` column feeds the URL pipeline's
:class:`~repro.pipeline.components.parser.SvmLightParser` unchanged —
the parser owns validation, so the reader stays a dumb chunker.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Union

import numpy as np

from repro.data.table import Table
from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int

PathLike = Union[str, Path]


def iter_svmlight_chunks(
    path: PathLike,
    rows_per_chunk: int,
    line_column: str = "line",
) -> Iterator[Table]:
    """Stream an svmlight file as chunked single-column tables.

    Blank lines and ``#`` comment lines are skipped. The last chunk
    may be short; an empty file yields nothing.
    """
    check_positive_int(rows_per_chunk, "rows_per_chunk")
    buffer: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            buffer.append(line)
            if len(buffer) == rows_per_chunk:
                yield _lines_table(buffer, line_column)
                buffer = []
    if buffer:
        yield _lines_table(buffer, line_column)


def read_svmlight(
    path: PathLike, line_column: str = "line"
) -> Table:
    """Read a whole svmlight file into one table of raw lines."""
    chunks = list(iter_svmlight_chunks(path, 2**30, line_column))
    if not chunks:
        return Table({line_column: np.array([], dtype=object)})
    return chunks[0]


def write_svmlight(
    path: PathLike,
    labels: Sequence[float],
    rows: Sequence[Dict[int, float]],
) -> Path:
    """Write labels + sparse rows as an svmlight file.

    Feature indices are emitted in ascending order; NaN values are
    written as ``nan`` (the parser round-trips them).
    """
    labels = list(labels)
    rows = list(rows)
    if len(labels) != len(rows):
        raise ValidationError(
            f"{len(labels)} labels but {len(rows)} rows"
        )
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for label, row in zip(labels, rows):
            handle.write(_format_line(float(label), row))
            handle.write("\n")
    return path


def _format_line(label: float, row: Dict[int, float]) -> str:
    tokens = [_format_number(label)]
    for index in sorted(row):
        value = row[index]
        if int(index) < 0:
            raise ValidationError(
                f"feature index must be >= 0, got {index}"
            )
        tokens.append(f"{int(index)}:{_format_number(value)}")
    return " ".join(tokens)


def _format_number(value: float) -> str:
    if math.isnan(value):
        return "nan"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _lines_table(lines: List[str], line_column: str) -> Table:
    array = np.empty(len(lines), dtype=object)
    for position, line in enumerate(lines):
        array[position] = line
    return Table({line_column: array})
