"""File I/O: load real datasets into chunked deployment streams.

The experiments run on synthetic stand-ins, but the deployment
machinery is format-agnostic: these readers turn files into the same
chunked :class:`~repro.data.table.Table` streams the generators
produce, so the actual URL dataset (svmlight format) or NYC-Taxi
extracts (CSV) plug straight into the pipelines when available.
"""

from repro.io.csvio import iter_csv_chunks, read_csv, write_csv
from repro.io.svmlight import (
    iter_svmlight_chunks,
    read_svmlight,
    write_svmlight,
)

__all__ = [
    "iter_svmlight_chunks",
    "read_svmlight",
    "write_svmlight",
    "iter_csv_chunks",
    "read_csv",
    "write_csv",
]
