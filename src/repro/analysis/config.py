"""Lint configuration: which rules run where.

The shipped :func:`default_config` encodes the project policy — the
vocabulary and pairing rules run everywhere under ``src/``, while the
path-scoped rules (wall-clock, bare-except, mutable-default) are
enabled only for the subsystems whose contracts they protect. A JSON
config file with the same fields can override any of it (see
:func:`load_config`); malformed configuration raises
:class:`~repro.analysis.base.ConfigError`, which the CLI maps to
exit code 2.

Path patterns are :mod:`fnmatch`-style globs matched against the
repo-relative posix path; ``*`` crosses directory separators, so
``src/repro/core/*`` covers the whole subtree.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.base import ConfigError
from repro.analysis.rulepack import RULES_BY_ID

#: Rules that run on every linted file unless a policy disables them.
#: REP009/REP011/REP012/REP014 are whole-program rules (DESIGN.md
#: §14): they run in the program pass and anchor findings at
#: definition sites, but are scoped by the same per-path machinery.
GLOBAL_RULES = (
    "REP001",
    "REP003",
    "REP004",
    "REP005",
    "REP006",
    "REP009",
    "REP011",
    "REP012",
    "REP013",
    "REP014",
)


@dataclass(frozen=True)
class PathPolicy:
    """Enable/disable adjustments for paths matching ``pattern``.

    Policies apply in declaration order on top of the global ``select``
    set, so later policies win on overlap.
    """

    pattern: str
    enable: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()

    def matches(self, relpath: str) -> bool:
        return fnmatch(relpath, self.pattern)


@dataclass(frozen=True)
class LintConfig:
    """Everything one lint run needs besides the file list."""

    roots: Tuple[str, ...] = ("src",)
    select: Tuple[str, ...] = GLOBAL_RULES
    per_path: Tuple[PathPolicy, ...] = ()
    exclude: Tuple[str, ...] = ("*__pycache__*",)
    baseline: Optional[str] = "reprolint-baseline.json"

    def __post_init__(self) -> None:
        for rule_id in self.select:
            _require_known(rule_id)
        for policy in self.per_path:
            for rule_id in policy.enable + policy.disable:
                _require_known(rule_id)

    def rules_for_path(self, relpath: str) -> Tuple[str, ...]:
        """Rule ids enabled for ``relpath``, in stable id order."""
        active = set(self.select)
        for policy in self.per_path:
            if policy.matches(relpath):
                active.update(policy.enable)
                active.difference_update(policy.disable)
        return tuple(sorted(active))

    def is_excluded(self, relpath: str) -> bool:
        return any(fnmatch(relpath, pattern) for pattern in self.exclude)


def _require_known(rule_id: str) -> None:
    from repro.analysis.progrules import PROGRAM_RULES_BY_ID

    if rule_id not in RULES_BY_ID and rule_id not in PROGRAM_RULES_BY_ID:
        known = sorted(set(RULES_BY_ID) | set(PROGRAM_RULES_BY_ID))
        raise ConfigError(
            f"unknown rule id {rule_id!r}; known rules are "
            f"{', '.join(known)}"
        )


def default_config() -> LintConfig:
    """The committed project policy (what CI runs)."""
    return LintConfig(
        roots=("src",),
        select=GLOBAL_RULES,
        per_path=(
            # Virtual-clock discipline: the cost model, engine, and
            # scheduler paths. The dual-clock tracer (obs/) and the
            # benchmark timer (utils/timer.py) legitimately read wall
            # time and stay outside these patterns.
            PathPolicy("src/repro/core/*", enable=("REP002",)),
            PathPolicy("src/repro/execution/*", enable=("REP002",)),
            # No swallowed exceptions where recovery correctness lives.
            PathPolicy("src/repro/core/*", enable=("REP007",)),
            PathPolicy("src/repro/reliability/*", enable=("REP007",)),
            PathPolicy("src/repro/serving/*", enable=("REP007",)),
            # Numeric hygiene in the model/optimizer and engine code.
            PathPolicy("src/repro/ml/*", enable=("REP008",)),
            PathPolicy("src/repro/execution/*", enable=("REP008",)),
            # The one sanctioned RNG construction site.
            PathPolicy("src/repro/utils/rng.py", disable=("REP001",)),
            # Deterministic iteration where replay/recovery byte-
            # identity is on the line: the engine, the data plane,
            # the ML kernels, and every subsystem that replays.
            PathPolicy("src/repro/core/*", enable=("REP010",)),
            PathPolicy("src/repro/execution/*", enable=("REP010",)),
            PathPolicy("src/repro/ml/*", enable=("REP010",)),
            PathPolicy("src/repro/data/*", enable=("REP010",)),
            PathPolicy("src/repro/fleet/*", enable=("REP010",)),
            PathPolicy("src/repro/reliability/*", enable=("REP010",)),
            PathPolicy("src/repro/traffic/*", enable=("REP010",)),
            # Sanctioned wall-clock readers: the dual-clock tracer
            # and the bench timer. Disabling REP013 here both spares
            # their own defs and marks them as sanctioned chain
            # endpoints for everyone else (progrules.py).
            PathPolicy("src/repro/obs/*", disable=("REP013",)),
            PathPolicy("src/repro/utils/timer.py", disable=("REP013",)),
        ),
        exclude=("*__pycache__*",),
        baseline="reprolint-baseline.json",
    )


def _str_tuple(raw: object, label: str) -> Tuple[str, ...]:
    if not isinstance(raw, list) or not all(
        isinstance(item, str) for item in raw
    ):
        raise ConfigError(f"config field {label!r} must be a list of strings")
    return tuple(raw)


def load_config(path: Path) -> LintConfig:
    """Parse a JSON config file into a :class:`LintConfig`.

    Unknown fields, non-JSON content, bad types, and unknown rule ids
    all raise :class:`ConfigError` — a broken config must never be
    mistaken for a clean run.
    """
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigError(f"cannot read config {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ConfigError(f"config {path} is not valid JSON: {error}") from error
    if not isinstance(raw, dict):
        raise ConfigError(f"config {path} must be a JSON object")
    known = {"roots", "select", "per_path", "exclude", "baseline"}
    unknown = set(raw) - known
    if unknown:
        raise ConfigError(
            f"config {path} has unknown field(s): "
            f"{', '.join(sorted(unknown))}"
        )
    defaults = default_config()
    policies: List[PathPolicy] = []
    for entry in raw.get("per_path", []):
        if not isinstance(entry, dict) or "pattern" not in entry:
            raise ConfigError(
                "each per_path entry must be an object with a 'pattern'"
            )
        extra = set(entry) - {"pattern", "enable", "disable"}
        if extra:
            raise ConfigError(
                f"per_path entry has unknown field(s): "
                f"{', '.join(sorted(extra))}"
            )
        policies.append(
            PathPolicy(
                pattern=str(entry["pattern"]),
                enable=_str_tuple(entry.get("enable", []), "enable"),
                disable=_str_tuple(entry.get("disable", []), "disable"),
            )
        )
    return LintConfig(
        roots=(
            _str_tuple(raw["roots"], "roots")
            if "roots" in raw
            else defaults.roots
        ),
        select=(
            _str_tuple(raw["select"], "select")
            if "select" in raw
            else defaults.select
        ),
        per_path=tuple(policies) if "per_path" in raw else defaults.per_path,
        exclude=(
            _str_tuple(raw["exclude"], "exclude")
            if "exclude" in raw
            else defaults.exclude
        ),
        baseline=(
            raw["baseline"]
            if "baseline" in raw and (
                raw["baseline"] is None or isinstance(raw["baseline"], str)
            )
            else defaults.baseline
            if "baseline" not in raw
            else _bad_baseline(path)
        ),
    )


def _bad_baseline(path: Path) -> None:
    raise ConfigError(
        f"config {path}: 'baseline' must be a string path or null"
    )
