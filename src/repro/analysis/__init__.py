"""reprolint — the platform's AST-based invariant linter.

Mechanically enforces the determinism, checkpoint, and telemetry
contracts the deployment platform's guarantees rest on (DESIGN.md
§9). Run it via ``repro lint``, ``make lint``, or programmatically::

    from pathlib import Path
    from repro.analysis import run_lint

    result = run_lint(Path("."))
    assert result.clean, [f.render() for f in result.findings]
"""

from repro.analysis.base import (
    ConfigError,
    Finding,
    ParsedModule,
    Reporter,
    Rule,
    walk_rules,
)
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import (
    GLOBAL_RULES,
    LintConfig,
    PathPolicy,
    default_config,
    load_config,
)
from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    LintResult,
    iter_source_files,
    lint_file,
    lint_module,
    run_lint,
    run_program_rules,
)
from repro.analysis.program import ProgramModel
from repro.analysis.progrules import (
    PROGRAM_RULES,
    PROGRAM_RULES_BY_ID,
    ProgramReporter,
    ProgramRule,
    program_rules_for,
)
from repro.analysis.report import format_json, format_rules, format_text
from repro.analysis.rulepack import ALL_RULES, RULES_BY_ID, rules_for

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "ConfigError",
    "Finding",
    "GLOBAL_RULES",
    "LintConfig",
    "LintResult",
    "PARSE_ERROR_RULE",
    "PROGRAM_RULES",
    "PROGRAM_RULES_BY_ID",
    "ParsedModule",
    "PathPolicy",
    "ProgramModel",
    "ProgramReporter",
    "ProgramRule",
    "Reporter",
    "Rule",
    "RULES_BY_ID",
    "default_config",
    "format_json",
    "format_rules",
    "format_text",
    "iter_source_files",
    "lint_file",
    "lint_module",
    "load_baseline",
    "load_config",
    "program_rules_for",
    "rules_for",
    "run_lint",
    "run_program_rules",
    "walk_rules",
    "write_baseline",
]
