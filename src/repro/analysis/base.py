"""Core types of the reprolint framework.

reprolint is a small visitor-based AST linter that mechanically
enforces the platform's determinism, checkpoint, and telemetry
contracts (see ``DESIGN.md`` §9). The moving parts:

* :class:`Rule` — the plugin protocol. A rule declares an id, a
  one-line invariant, and ``visit_<NodeType>`` handler methods; the
  engine parses each file once and dispatches every AST node to every
  enabled rule's matching handler in a single walk.
* :class:`ParsedModule` — one parsed source file plus the metadata
  rules need (source lines, inline suppressions, repo-relative path).
* :class:`Finding` — one violation, carrying a content-based
  fingerprint so baseline entries survive unrelated line drift.

Inline suppression uses ``# repro: noqa[REP001]`` (or a blanket
``# repro: noqa``) on the offending line; the engine drops matching
findings and reports how many were suppressed.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

#: ``# repro: noqa`` or ``# repro: noqa[REP001,REP005]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


class ConfigError(Exception):
    """A broken lint configuration or baseline (CLI exit code 2)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based, as ast reports it
    message: str
    snippet: str = ""  # stripped source line, for fingerprinting

    def fingerprint(self) -> str:
        """Content-based identity for baseline matching.

        Hashes the rule, path, and the *text* of the offending line —
        not its number — so entries survive edits elsewhere in the
        file but go stale when the flagged code itself changes.
        """
        payload = f"{self.rule_id}|{self.path}|{self.snippet}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} {self.message}"
        )


def _parse_suppressions(
    source: str,
) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number -> suppressed rule ids (``None`` = all rules).

    Uses the tokenizer-free line scan on purpose: suppression comments
    are line-scoped, and a regex over raw lines also catches comments
    inside multi-line expressions where the token stream would need
    logical-line bookkeeping.
    """
    table: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            ids = frozenset(
                part.strip().upper()
                for part in rules.split(",")
                if part.strip()
            )
            table[lineno] = ids or None
    return table


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: Path
    relpath: str  # posix, relative to the lint root
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    suppressions: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict
    )

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "ParsedModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            suppressions=_parse_suppressions(source),
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        if lineno not in self.suppressions:
            return False
        ids = self.suppressions[lineno]
        return ids is None or rule_id in ids


class Reporter:
    """The callback a rule uses to emit findings for one module."""

    def __init__(self, rule_id: str, module: ParsedModule) -> None:
        self.rule_id = rule_id
        self.module = module
        self.findings: List[Finding] = []
        self.suppressed: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        finding = Finding(
            rule_id=self.rule_id,
            path=self.module.relpath,
            line=line,
            col=col,
            message=message,
            snippet=self.module.line_text(line),
        )
        if self.module.is_suppressed(self.rule_id, line):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)


class Rule:
    """Base class of the rule plugin protocol.

    Subclasses set the class attributes and implement any of:

    * ``visit_<NodeType>(node, module, report)`` — called for every
      matching node during the engine's single shared walk;
    * ``begin_module(module, report)`` / ``end_module(module,
      report)`` — bracketing hooks for per-file state.

    ``report(node, message)`` records a finding at ``node``'s
    location (suppressions are applied by the framework).
    """

    #: Stable identifier, e.g. ``"REP001"``.
    rule_id: str = ""
    #: Short human name, e.g. ``"raw-rng"``.
    name: str = ""
    #: One-line statement of the invariant the rule protects.
    description: str = ""

    def begin_module(self, module: ParsedModule, report) -> None:
        """Hook: called before the walk of each file."""

    def end_module(self, module: ParsedModule, report) -> None:
        """Hook: called after the walk of each file."""

    def handlers(self) -> Dict[str, object]:
        """Map AST node-type name -> bound ``visit_*`` method."""
        table: Dict[str, object] = {}
        for attr in dir(self):
            if attr.startswith("visit_"):
                table[attr[len("visit_"):]] = getattr(self, attr)
        return table


def walk_rules(
    module: ParsedModule, rules: Tuple[Rule, ...]
) -> Iterator[Reporter]:
    """Run ``rules`` over ``module`` in one shared AST walk.

    Every rule gets its own :class:`Reporter`; handlers for the same
    node type run in rule order. Yields the reporters (findings plus
    suppression tallies) when the walk completes.
    """
    reporters = {rule.rule_id: Reporter(rule.rule_id, module) for rule in rules}
    dispatch: Dict[str, List[Tuple[Rule, object]]] = {}
    for rule in rules:
        rule.begin_module(module, reporters[rule.rule_id].report)
        for node_type, handler in rule.handlers().items():
            dispatch.setdefault(node_type, []).append((rule, handler))
    for node in ast.walk(module.tree):
        for rule, handler in dispatch.get(type(node).__name__, ()):
            handler(node, module, reporters[rule.rule_id].report)
    for rule in rules:
        rule.end_module(module, reporters[rule.rule_id].report)
    yield from reporters.values()
